//===- fuzz/Ops.cpp - The fuzzer's JNI operation inventory ---------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Ops.h"

#include "support/Format.h"

#include <set>
#include <thread>

using namespace jinn;
using namespace jinn::fuzz;
using jni::FnId;
using spec::Direction;

// The shipped machine names (spec Name fields, used as coverage keys).
static const char EnvM[] = "JNIEnv* state";
static const char ExcM[] = "Exception state";
static const char CritM[] = "Critical-section state";
static const char FixedM[] = "Fixed typing";
static const char EntityM[] = "Entity-specific typing";
static const char AccessM[] = "Access control";
static const char NullM[] = "Nullness";
static const char PinM[] = "Pinned or copied string or array";
static const char MonM[] = "Monitor";
static const char GlobM[] = "Global or weak global reference";
static const char LocalM[] = "Local reference";
static const char FrameM[] = "Local-frame nesting";
static const char MonBalM[] = "Monitor balance";
static const char CritNestM[] = "Critical-section nesting";

namespace {

std::vector<FuzzOp> buildJniOps() {
  std::vector<FuzzOp> Ops;

  //===--------------------------------------------------------------------===
  // Clean operations
  //===--------------------------------------------------------------------===

  {
    FuzzOp Op;
    Op.Name = "ensure_capacity";
    Op.Focus = LocalM;
    Op.Edges = {{LocalM, 3, FnId::EnsureLocalCapacity, Direction::ReturnJavaToC}};
    Op.Ready = [](const ExecState &S) { return !S.Capacity; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->EnsureLocalCapacity(S.Env, 4096);
      S.Capacity = true;
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "env_probe";
    Op.Focus = EnvM;
    Op.Edges = {{EnvM, 0, FnId::GetVersion, Direction::CallCToJava}};
    Op.Ready = [](const ExecState &) { return true; };
    Op.Apply = [](ExecState &S) { S.Env->functions->GetVersion(S.Env); };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "slot_array";
    Op.Focus = LocalM;
    Op.CreatesLocal = true;
    Op.Edges = {{LocalM, 1, FnId::NewIntArray, Direction::ReturnJavaToC}};
    Op.Ready = [](const ExecState &S) { return !S.Arr && S.Frames == 0; };
    Op.Apply = [](ExecState &S) {
      S.Arr = S.Env->functions->NewIntArray(S.Env, 8);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "slot_string";
    Op.Focus = LocalM;
    Op.CreatesLocal = true;
    Op.Edges = {{LocalM, 1, FnId::NewStringUTF, Direction::ReturnJavaToC}};
    Op.Ready = [](const ExecState &S) { return !S.Str && S.Frames == 0; };
    Op.Apply = [](ExecState &S) {
      S.Str = S.Env->functions->NewStringUTF(S.Env, "jinn-fuzz");
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "local_new";
    Op.Focus = LocalM;
    Op.CreatesLocal = true;
    Op.Edges = {{LocalM, 1, FnId::NewStringUTF, Direction::ReturnJavaToC}};
    Op.Ready = [](const ExecState &) { return true; };
    Op.Apply = [](ExecState &S) {
      jobject O = S.Env->functions->NewStringUTF(S.Env, "transient");
      if (O)
        S.Locals.push_back({O, S.Frames});
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "local_delete";
    Op.Focus = LocalM;
    Op.ExcSafe = true; // DeleteLocalRef is exception-oblivious
    Op.Edges = {{LocalM, 6, FnId::DeleteLocalRef, Direction::CallCToJava}};
    Op.Ready = [](const ExecState &S) { return !S.Locals.empty(); };
    Op.Apply = [](ExecState &S) {
      jobject O = S.Locals.back().first;
      S.Locals.pop_back();
      S.Env->functions->DeleteLocalRef(S.Env, O);
      S.DeadLocal = O;
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "frame_push";
    Op.Focus = LocalM;
    Op.Closer = "frame_pop";
    Op.Edges = {{LocalM, 2, FnId::PushLocalFrame, Direction::ReturnJavaToC},
                {FrameM, 0, FnId::PushLocalFrame, Direction::ReturnJavaToC}};
    Op.Ready = [](const ExecState &S) { return S.Frames < 3; };
    Op.Apply = [](ExecState &S) {
      if (S.Env->functions->PushLocalFrame(S.Env, 16) == JNI_OK)
        ++S.Frames;
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "frame_pop";
    Op.Focus = LocalM;
    Op.Edges = {{LocalM, 7, FnId::PopLocalFrame, Direction::CallCToJava},
                {FrameM, 1, FnId::PopLocalFrame, Direction::ReturnJavaToC}};
    Op.Ready = [](const ExecState &S) { return S.Frames > 0; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->PopLocalFrame(S.Env, nullptr);
      for (size_t I = 0; I < S.Locals.size();) {
        if (S.Locals[I].second == S.Frames) {
          S.DeadLocal = S.Locals[I].first;
          S.Locals.erase(S.Locals.begin() + static_cast<long>(I));
        } else {
          ++I;
        }
      }
      --S.Frames;
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "frame_nest";
    Op.Focus = FrameM;
    Op.Edges = {{FrameM, 0, FnId::PushLocalFrame, Direction::ReturnJavaToC},
                {FrameM, 1, FnId::PopLocalFrame, Direction::ReturnJavaToC},
                {LocalM, 2, FnId::PushLocalFrame, Direction::ReturnJavaToC},
                {LocalM, 7, FnId::PopLocalFrame, Direction::CallCToJava}};
    Op.Ready = [](const ExecState &S) { return S.Frames == 0; };
    Op.Apply = [](ExecState &S) {
      // A balanced nest, self-contained: no tracked locals are created, so
      // the pops leave the executor's shadow state untouched.
      if (S.Env->functions->PushLocalFrame(S.Env, 8) != JNI_OK)
        return;
      if (S.Env->functions->PushLocalFrame(S.Env, 8) == JNI_OK)
        S.Env->functions->PopLocalFrame(S.Env, nullptr);
      S.Env->functions->PopLocalFrame(S.Env, nullptr);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "monitor_reenter";
    Op.Focus = MonBalM;
    Op.Setup = {"slot_array"};
    Op.Edges = {{MonBalM, 0, FnId::MonitorEnter, Direction::ReturnJavaToC},
                {MonBalM, 1, FnId::MonitorExit, Direction::ReturnJavaToC},
                {MonM, 0, FnId::MonitorEnter, Direction::ReturnJavaToC},
                {MonM, 1, FnId::MonitorExit, Direction::ReturnJavaToC}};
    Op.Ready = [](const ExecState &S) { return S.Arr && !S.MonitorHeld; };
    Op.Apply = [](ExecState &S) {
      // Recursive entry on the same object is legal JNI; the balance
      // machine's counter must track the full depth, not a held bit.
      if (S.Env->functions->MonitorEnter(S.Env, S.Arr) != JNI_OK)
        return;
      if (S.Env->functions->MonitorEnter(S.Env, S.Arr) == JNI_OK)
        S.Env->functions->MonitorExit(S.Env, S.Arr);
      S.Env->functions->MonitorExit(S.Env, S.Arr);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "str_use";
    Op.Focus = FixedM;
    Op.Setup = {"slot_string"};
    Op.Edges = {{FixedM, 0, FnId::GetStringUTFLength, Direction::CallCToJava},
                {NullM, 0, FnId::GetStringUTFLength, Direction::CallCToJava}};
    Op.Ready = [](const ExecState &S) { return S.Str != nullptr; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->GetStringUTFLength(S.Env, S.Str);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "global_new";
    Op.Focus = GlobM;
    Op.Setup = {"slot_string"};
    Op.Closer = "global_delete";
    Op.Edges = {{GlobM, 0, FnId::NewGlobalRef, Direction::ReturnJavaToC}};
    Op.Ready = [](const ExecState &S) { return !S.Global && S.Str; };
    Op.Apply = [](ExecState &S) {
      S.Global = S.Env->functions->NewGlobalRef(S.Env, S.Str);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "global_delete";
    Op.Focus = GlobM;
    Op.ExcSafe = true;
    Op.Edges = {{GlobM, 1, FnId::DeleteGlobalRef, Direction::CallCToJava}};
    Op.Ready = [](const ExecState &S) { return S.Global != nullptr; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->DeleteGlobalRef(S.Env, S.Global);
      S.DeadGlobal = S.Global;
      S.Global = nullptr;
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "pin_acquire";
    Op.Focus = PinM;
    Op.Setup = {"slot_array"};
    Op.Closer = "pin_release";
    Op.Edges = {{PinM, 0, FnId::GetIntArrayElements, Direction::ReturnJavaToC}};
    Op.Ready = [](const ExecState &S) { return S.Arr && !S.Pin; };
    Op.Apply = [](ExecState &S) {
      S.Pin = S.Env->functions->GetIntArrayElements(S.Env, S.Arr, nullptr);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "pin_release";
    Op.Focus = PinM;
    Op.ExcSafe = true;
    Op.Edges = {
        {PinM, 1, FnId::ReleaseIntArrayElements, Direction::CallCToJava}};
    Op.Ready = [](const ExecState &S) { return S.Arr && S.Pin; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->ReleaseIntArrayElements(S.Env, S.Arr, S.Pin, 0);
      S.DeadPin = S.Pin;
      S.Pin = nullptr;
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "critical_enter";
    Op.Focus = CritM;
    Op.Setup = {"slot_array"};
    Op.Closer = "critical_exit";
    Op.PairClosely = true;
    Op.Edges = {{CritM, 0, FnId::GetPrimitiveArrayCritical,
                 Direction::ReturnJavaToC},
                {PinM, 0, FnId::GetPrimitiveArrayCritical,
                 Direction::ReturnJavaToC},
                {CritNestM, 0, FnId::GetPrimitiveArrayCritical,
                 Direction::ReturnJavaToC}};
    Op.Ready = [](const ExecState &S) {
      return S.Arr && !S.Crit && !S.InCritical;
    };
    Op.Apply = [](ExecState &S) {
      S.Crit =
          S.Env->functions->GetPrimitiveArrayCritical(S.Env, S.Arr, nullptr);
      if (S.Crit)
        S.InCritical = true;
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "critical_exit";
    Op.Focus = CritM;
    Op.CriticalSafe = true;
    Op.ExcSafe = true;
    Op.Edges = {{CritM, 1, FnId::ReleasePrimitiveArrayCritical,
                 Direction::CallCToJava},
                {PinM, 1, FnId::ReleasePrimitiveArrayCritical,
                 Direction::CallCToJava},
                {CritNestM, 1, FnId::ReleasePrimitiveArrayCritical,
                 Direction::ReturnJavaToC}};
    Op.Ready = [](const ExecState &S) { return S.InCritical && S.Crit; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->ReleasePrimitiveArrayCritical(S.Env, S.Arr, S.Crit,
                                                      0);
      S.Crit = nullptr;
      S.InCritical = false;
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "monitor_enter";
    Op.Focus = MonM;
    Op.Setup = {"slot_array"};
    Op.Closer = "monitor_exit";
    Op.Edges = {{MonM, 0, FnId::MonitorEnter, Direction::ReturnJavaToC},
                {MonBalM, 0, FnId::MonitorEnter, Direction::ReturnJavaToC}};
    Op.Ready = [](const ExecState &S) { return S.Arr && !S.MonitorHeld; };
    Op.Apply = [](ExecState &S) {
      if (S.Env->functions->MonitorEnter(S.Env, S.Arr) == JNI_OK)
        S.MonitorHeld = true;
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "monitor_exit";
    Op.Focus = MonM;
    Op.ExcSafe = true; // MonitorExit is exception-oblivious
    Op.Edges = {{MonM, 1, FnId::MonitorExit, Direction::ReturnJavaToC},
                {MonBalM, 1, FnId::MonitorExit, Direction::ReturnJavaToC}};
    Op.Ready = [](const ExecState &S) { return S.Arr && S.MonitorHeld; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->MonitorExit(S.Env, S.Arr);
      S.MonitorHeld = false;
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "exc_throw";
    Op.Focus = ExcM;
    Op.Closer = "exc_clear";
    Op.PairClosely = true;
    Op.CreatesLocal = true;
    Op.Edges = {{LocalM, 1, FnId::FindClass, Direction::ReturnJavaToC}};
    Op.Ready = [](const ExecState &S) { return !S.ExcPending; };
    Op.Apply = [](ExecState &S) {
      jclass RE =
          S.Env->functions->FindClass(S.Env, "java/lang/RuntimeException");
      if (RE)
        S.Env->functions->ThrowNew(S.Env, RE, "fuzz probe");
      S.ExcPending = true;
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "exc_clear";
    Op.Focus = ExcM;
    Op.ExcSafe = true;
    Op.Ready = [](const ExecState &S) { return S.ExcPending; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->ExceptionClear(S.Env);
      S.ExcPending = false;
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "entity_mid";
    Op.Focus = EntityM;
    Op.CreatesLocal = true;
    Op.Edges = {{EntityM, 0, FnId::GetStaticMethodID, Direction::ReturnJavaToC},
                {LocalM, 1, FnId::FindClass, Direction::ReturnJavaToC}};
    Op.Ready = [](const ExecState &S) {
      return S.Frames == 0 && !S.HelperMid;
    };
    Op.Apply = [](ExecState &S) {
      if (!S.HelperCls)
        S.HelperCls = S.Env->functions->FindClass(S.Env, "FuzzHelper");
      if (S.HelperCls)
        S.HelperMid = S.Env->functions->GetStaticMethodID(S.Env, S.HelperCls,
                                                          "ping", "()V");
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "entity_call";
    Op.Focus = EntityM;
    Op.Setup = {"entity_mid"};
    Op.Edges = {
        {EntityM, 1, FnId::CallStaticVoidMethodA, Direction::CallCToJava}};
    Op.Ready = [](const ExecState &S) { return S.HelperCls && S.HelperMid; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->CallStaticVoidMethodA(S.Env, S.HelperCls, S.HelperMid,
                                              nullptr);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "field_fid";
    Op.Focus = AccessM;
    Op.Setup = {"entity_mid"};
    Op.Edges = {{AccessM, 0, FnId::GetStaticFieldID, Direction::ReturnJavaToC},
                {EntityM, 0, FnId::GetStaticFieldID, Direction::ReturnJavaToC}};
    Op.Ready = [](const ExecState &S) { return S.HelperCls && !S.HelperFid; };
    Op.Apply = [](ExecState &S) {
      S.HelperFid = S.Env->functions->GetStaticFieldID(S.Env, S.HelperCls,
                                                       "count", "I");
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "field_set";
    Op.Focus = AccessM;
    Op.Setup = {"field_fid"};
    Op.Edges = {{AccessM, 1, FnId::SetStaticIntField, Direction::CallCToJava},
                {EntityM, 1, FnId::SetStaticIntField, Direction::CallCToJava}};
    Op.Ready = [](const ExecState &S) { return S.HelperCls && S.HelperFid; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->SetStaticIntField(S.Env, S.HelperCls, S.HelperFid, 7);
    };
    Ops.push_back(std::move(Op));
  }

  //===--------------------------------------------------------------------===
  // Bug operations (always emitted last in a sequence: a violation pends
  // jinn.JNIAssertionFailure and aborts the faulting call)
  //===--------------------------------------------------------------------===

  {
    FuzzOp Op;
    Op.Name = "bug_env_mismatch";
    Op.Focus = EnvM;
    Op.Kind = OpKind::Bug;
    Op.XcheckDetects = true;
    Op.Edges = {{EnvM, 0, FnId::FindClass, Direction::CallCToJava}};
    Op.Expect = {EnvM, "was used while executing on thread", "FindClass",
                 false};
    Op.Ready = [](const ExecState &) { return true; };
    Op.Apply = [](ExecState &S) {
      jvm::JThread &Worker = S.World.Vm.attachThread("fuzz-worker");
      JNIEnv *WorkerEnv = S.World.Rt.envFor(Worker);
      WorkerEnv->functions->FindClass(WorkerEnv, "java/lang/String");
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_exc_pending";
    Op.Focus = ExcM;
    Op.Kind = OpKind::Bug;
    Op.XcheckDetects = true;
    Op.ExcSafe = true; // the whole point is to run while pending
    Op.Setup = {"exc_throw"};
    Op.Edges = {{ExcM, 2, FnId::FindClass, Direction::CallCToJava}};
    Op.Expect = {ExcM, "An exception is pending", "FindClass", false};
    Op.Ready = [](const ExecState &S) { return S.ExcPending; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->FindClass(S.Env, "java/lang/String");
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_critical";
    Op.Focus = CritM;
    Op.Kind = OpKind::Bug;
    Op.XcheckDetects = true;
    Op.CriticalSafe = true;
    Op.Setup = {"critical_enter"};
    Op.Edges = {{CritM, 2, FnId::FindClass, Direction::CallCToJava},
                {CritM, 1, FnId::ReleasePrimitiveArrayCritical,
                 Direction::CallCToJava},
                {PinM, 1, FnId::ReleasePrimitiveArrayCritical,
                 Direction::CallCToJava}};
    Op.Expect = {CritM, "A JNI call was made inside a JNI critical section",
                 "FindClass", false};
    Op.Ready = [](const ExecState &S) { return S.InCritical && S.Crit; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->FindClass(S.Env, "java/lang/String");
      // Close the region: the release is critical-allowed and
      // exception-oblivious, so it is legal even after the violation, and
      // it keeps the end-of-run pin-leak check out of the verdict.
      S.Env->functions->ReleasePrimitiveArrayCritical(S.Env, S.Arr, S.Crit,
                                                      0);
      S.Crit = nullptr;
      S.InCritical = false;
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_fixed_type";
    Op.Focus = FixedM;
    Op.Kind = OpKind::Bug;
    Op.XcheckDetects = true;
    Op.Setup = {"slot_string"};
    Op.Edges = {{FixedM, 0, FnId::GetMethodID, Direction::CallCToJava}};
    Op.Expect = {FixedM, "is not assignable to the", "GetMethodID", false};
    Op.Ready = [](const ExecState &S) { return S.Str != nullptr; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->GetMethodID(S.Env,
                                    reinterpret_cast<jclass>(S.Str),
                                    "toString", "()Ljava/lang/String;");
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_entity_type";
    Op.Focus = EntityM;
    Op.Kind = OpKind::Bug;
    Op.CreatesLocal = true;
    Op.Edges = {
        {EntityM, 1, FnId::CallStaticVoidMethodA, Direction::CallCToJava},
        {EntityM, 0, FnId::GetStaticMethodID, Direction::ReturnJavaToC},
        {LocalM, 1, FnId::FindClass, Direction::ReturnJavaToC}};
    Op.Expect = {EntityM, "does not declare the static",
                 "CallStaticVoidMethodA", false};
    Op.Ready = [](const ExecState &) { return true; };
    Op.Apply = [](ExecState &S) {
      jclass Widget = S.Env->functions->FindClass(S.Env, "fuzz/Widget");
      if (!Widget)
        return;
      jmethodID Mid = S.Env->functions->GetStaticMethodID(S.Env, Widget,
                                                          "handler", "()V");
      if (Mid)
        S.Env->functions->CallStaticVoidMethodA(S.Env, Widget, Mid, nullptr);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_final_field";
    Op.Focus = AccessM;
    Op.Kind = OpKind::Bug;
    Op.CreatesLocal = true;
    Op.Edges = {{AccessM, 1, FnId::SetStaticIntField, Direction::CallCToJava},
                {AccessM, 0, FnId::GetStaticFieldID, Direction::ReturnJavaToC},
                {EntityM, 1, FnId::SetStaticIntField, Direction::CallCToJava},
                {EntityM, 0, FnId::GetStaticFieldID, Direction::ReturnJavaToC},
                {LocalM, 1, FnId::FindClass, Direction::ReturnJavaToC}};
    Op.Expect = {AccessM, "assignment to final field", "SetStaticIntField",
                 false};
    Op.Ready = [](const ExecState &) { return true; };
    Op.Apply = [](ExecState &S) {
      jclass Cls = S.Env->functions->FindClass(S.Env, "FuzzHelper");
      if (!Cls)
        return;
      jfieldID Fid =
          S.Env->functions->GetStaticFieldID(S.Env, Cls, "LIMIT", "I");
      if (Fid)
        S.Env->functions->SetStaticIntField(S.Env, Cls, Fid, 42);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_null_arg";
    Op.Focus = NullM;
    Op.Kind = OpKind::Bug;
    Op.Edges = {{NullM, 0, FnId::GetStringUTFChars, Direction::CallCToJava}};
    Op.Expect = {NullM, "must not be null", "GetStringUTFChars", false};
    Op.Ready = [](const ExecState &) { return true; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->GetStringUTFChars(S.Env, nullptr, nullptr);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_pin_double_free";
    Op.Focus = PinM;
    Op.Kind = OpKind::Bug;
    Op.ExcSafe = true;
    Op.Setup = {"slot_array", "pin_acquire", "pin_release"};
    Op.Edges = {
        {PinM, 1, FnId::ReleaseIntArrayElements, Direction::CallCToJava}};
    Op.Expect = {PinM, "double free", "ReleaseIntArrayElements", false};
    Op.Ready = [](const ExecState &S) { return S.Arr && S.DeadPin; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->ReleaseIntArrayElements(S.Env, S.Arr, S.DeadPin, 0);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_pin_leak";
    Op.Focus = PinM;
    Op.Kind = OpKind::Bug;
    Op.Setup = {"slot_array"};
    Op.Edges = {{PinM, 0, FnId::GetIntArrayElements, Direction::ReturnJavaToC}};
    Op.Expect = {PinM, "never released (leak)", "<program termination>", true};
    Op.Ready = [](const ExecState &S) { return S.Arr && !S.Pin; };
    Op.Apply = [](ExecState &S) {
      // Deliberately discarded: the buffer is never released.
      S.Env->functions->GetIntArrayElements(S.Env, S.Arr, nullptr);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_monitor_leak";
    Op.Focus = MonM;
    Op.Kind = OpKind::Bug;
    Op.Setup = {"slot_array"};
    Op.Edges = {{MonM, 0, FnId::MonitorEnter, Direction::ReturnJavaToC}};
    Op.Expect = {MonM, "still held through JNI", "<program termination>",
                 true};
    Op.Ready = [](const ExecState &S) { return S.Arr && !S.MonitorHeld; };
    Op.Apply = [](ExecState &S) {
      // MonitorHeld deliberately not set: nothing will exit the monitor.
      S.Env->functions->MonitorEnter(S.Env, S.Arr);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_global_dangling";
    Op.Focus = GlobM;
    Op.Kind = OpKind::Bug;
    Op.XcheckDetects = true;
    Op.Setup = {"slot_string", "global_new", "global_delete"};
    Op.Edges = {{GlobM, 2, FnId::GetStringUTFLength, Direction::CallCToJava}};
    Op.Expect = {GlobM, "dangling global reference (deleted earlier)",
                 "GetStringUTFLength", false};
    Op.Ready = [](const ExecState &S) { return S.DeadGlobal != nullptr; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->GetStringUTFLength(
          S.Env, static_cast<jstring>(S.DeadGlobal));
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_global_double_free";
    Op.Focus = GlobM;
    Op.Kind = OpKind::Bug;
    Op.XcheckDetects = true;
    Op.ExcSafe = true;
    Op.Setup = {"slot_string", "global_new", "global_delete"};
    Op.Edges = {{GlobM, 1, FnId::DeleteGlobalRef, Direction::CallCToJava}};
    Op.Expect = {GlobM, "deleted twice (double free / dangling)",
                 "DeleteGlobalRef", false};
    Op.Ready = [](const ExecState &S) { return S.DeadGlobal != nullptr; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->DeleteGlobalRef(S.Env, S.DeadGlobal);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_global_leak";
    Op.Focus = GlobM;
    Op.Kind = OpKind::Bug;
    Op.Setup = {"slot_string"};
    Op.Edges = {{GlobM, 0, FnId::NewGlobalRef, Direction::ReturnJavaToC}};
    Op.Expect = {GlobM, "never deleted (leak)", "<program termination>", true};
    Op.Ready = [](const ExecState &S) { return S.Str && !S.Global; };
    Op.Apply = [](ExecState &S) {
      // Deliberately discarded: the global reference is never deleted.
      S.Env->functions->NewGlobalRef(S.Env, S.Str);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_global_native_return";
    Op.Focus = GlobM;
    Op.Kind = OpKind::Bug;
    Op.CreatesLocal = true;
    Op.Edges = {
        {GlobM, 3, FnId::Count, Direction::ReturnCToJava},
        {EntityM, 0, FnId::GetStaticMethodID, Direction::ReturnJavaToC},
        {LocalM, 1, FnId::FindClass, Direction::ReturnJavaToC}};
    Op.Expect = {GlobM, "a native method returned a dangling global reference",
                 "", false};
    Op.Ready = [](const ExecState &) { return true; };
    Op.Apply = [](ExecState &S) {
      jclass Cls = S.Env->functions->FindClass(S.Env, "FuzzGlobalSupplier");
      if (!Cls)
        return;
      jmethodID Mid = S.Env->functions->GetStaticMethodID(
          S.Env, Cls, "get", "()Ljava/lang/Object;");
      if (Mid)
        S.Env->functions->CallStaticObjectMethodA(S.Env, Cls, Mid, nullptr);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_local_dangling";
    Op.Focus = LocalM;
    Op.Kind = OpKind::Bug;
    Op.XcheckDetects = true;
    Op.Setup = {"local_new", "local_delete"};
    Op.Edges = {{LocalM, 4, FnId::GetStringUTFLength, Direction::CallCToJava}};
    Op.Expect = {LocalM, "is a dangling local reference", "GetStringUTFLength",
                 false};
    Op.Ready = [](const ExecState &S) { return S.DeadLocal != nullptr; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->GetStringUTFLength(
          S.Env, static_cast<jstring>(S.DeadLocal));
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_local_popped_use";
    Op.Focus = LocalM;
    Op.Kind = OpKind::Bug;
    Op.XcheckDetects = true;
    Op.Setup = {"frame_push", "local_new", "frame_pop"};
    Op.Edges = {{LocalM, 4, FnId::GetStringUTFLength, Direction::CallCToJava}};
    Op.Expect = {LocalM, "is a dangling local reference", "GetStringUTFLength",
                 false};
    Op.Ready = [](const ExecState &S) { return S.DeadLocal != nullptr; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->GetStringUTFLength(
          S.Env, static_cast<jstring>(S.DeadLocal));
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_local_double_free";
    Op.Focus = LocalM;
    Op.Kind = OpKind::Bug;
    Op.XcheckDetects = true;
    Op.ExcSafe = true;
    Op.Setup = {"local_new", "local_delete"};
    Op.Edges = {{LocalM, 6, FnId::DeleteLocalRef, Direction::CallCToJava}};
    Op.Expect = {LocalM, "DeleteLocalRef of a dead local reference",
                 "DeleteLocalRef", false};
    Op.Ready = [](const ExecState &S) { return S.DeadLocal != nullptr; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->DeleteLocalRef(S.Env, S.DeadLocal);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_id_confusion";
    Op.Focus = LocalM;
    Op.Kind = OpKind::Bug;
    Op.XcheckDetects = true;
    Op.Setup = {"entity_mid"};
    Op.Edges = {{LocalM, 4, FnId::IsSameObject, Direction::CallCToJava}};
    Op.Expect = {LocalM, "is not a JNI reference", "IsSameObject", false};
    Op.Ready = [](const ExecState &S) { return S.HelperMid != nullptr; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->IsSameObject(
          S.Env, reinterpret_cast<jobject>(S.HelperMid), nullptr);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_local_overflow";
    Op.Focus = LocalM;
    Op.Kind = OpKind::Bug;
    Op.DefaultCapacityOnly = true;
    Op.CreatesLocal = true;
    Op.Edges = {{LocalM, 1, FnId::NewStringUTF, Direction::ReturnJavaToC}};
    Op.Expect = {LocalM, "local reference overflow", "NewStringUTF", false};
    Op.Ready = [](const ExecState &S) { return !S.Capacity && S.Frames == 0; };
    Op.Apply = [](ExecState &S) {
      for (int I = 0; I < 24; ++I) {
        S.Env->functions->NewStringUTF(S.Env, "overflow");
        // The violation pends jinn.JNIAssertionFailure; stop before the
        // exception machine piles a second report onto the next call.
        if (S.Env->functions->ExceptionCheck(S.Env))
          break;
      }
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_frame_leak";
    Op.Focus = LocalM;
    Op.Kind = OpKind::Bug;
    Op.Edges = {{LocalM, 2, FnId::PushLocalFrame, Direction::ReturnJavaToC},
                {LocalM, 8, FnId::Count, Direction::ReturnCToJava}};
    Op.Expect = {LocalM, "never popped (leak)", "", false};
    Op.Ready = [](const ExecState &S) { return S.Frames == 0; };
    Op.Apply = [](ExecState &S) {
      // Frames deliberately not incremented: nothing will pop this frame,
      // and the native-return release transition reports the leak.
      S.Env->functions->PushLocalFrame(S.Env, 16);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_pop_unbalanced";
    Op.Focus = FrameM;
    Op.Kind = OpKind::Bug;
    Op.Edges = {{FrameM, 2, FnId::PopLocalFrame, Direction::CallCToJava},
                {LocalM, 7, FnId::PopLocalFrame, Direction::CallCToJava}};
    Op.Expect = {FrameM, "PopLocalFrame without a matching PushLocalFrame",
                 "PopLocalFrame", false};
    Op.Ready = [](const ExecState &S) { return S.Frames == 0; };
    Op.Apply = [](ExecState &S) {
      S.Env->functions->PopLocalFrame(S.Env, nullptr);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_monitor_exit_unmatched";
    Op.Focus = MonBalM;
    Op.Kind = OpKind::Bug;
    Op.ExcSafe = true; // MonitorExit is exception-oblivious
    Op.Setup = {"slot_array"};
    Op.Edges = {{MonBalM, 2, FnId::MonitorExit, Direction::CallCToJava}};
    Op.Expect = {MonBalM, "MonitorExit without a matching JNI MonitorEnter",
                 "MonitorExit", false};
    Op.Ready = [](const ExecState &S) { return S.Arr && !S.MonitorHeld; };
    Op.Apply = [](ExecState &S) {
      // The thread holds no JNI-entered monitor: the balance machine
      // aborts the exit before the VM can raise its own
      // IllegalMonitorStateException.
      S.Env->functions->MonitorExit(S.Env, S.Arr);
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_critical_nested";
    Op.Focus = CritNestM;
    Op.Kind = OpKind::Bug;
    Op.CriticalSafe = true;
    Op.Setup = {"critical_enter"};
    Op.Edges = {{CritNestM, 2, FnId::GetPrimitiveArrayCritical,
                 Direction::CallCToJava},
                {CritM, 1, FnId::ReleasePrimitiveArrayCritical,
                 Direction::CallCToJava},
                {PinM, 1, FnId::ReleasePrimitiveArrayCritical,
                 Direction::CallCToJava},
                {CritNestM, 1, FnId::ReleasePrimitiveArrayCritical,
                 Direction::ReturnJavaToC}};
    Op.Expect = {CritNestM,
                 "A critical section was opened inside an open critical "
                 "section",
                 "GetPrimitiveArrayCritical", false};
    Op.Ready = [](const ExecState &S) { return S.InCritical && S.Crit; };
    Op.Apply = [](ExecState &S) {
      // BUG: a second critical acquisition inside the open region. Jinn
      // aborts it, so no inner pin exists; closing the outer region is
      // legal (release is critical-allowed and exception-oblivious) and
      // keeps the pin-leak check out of the verdict.
      S.Env->functions->GetPrimitiveArrayCritical(S.Env, S.Arr, nullptr);
      S.Env->functions->ReleasePrimitiveArrayCritical(S.Env, S.Arr, S.Crit,
                                                      0);
      S.Crit = nullptr;
      S.InCritical = false;
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_cross_thread_local";
    Op.Focus = LocalM;
    Op.Kind = OpKind::Bug;
    Op.XcheckDetects = true;
    Op.Setup = {"slot_string"};
    Op.Edges = {{LocalM, 4, FnId::GetStringUTFLength, Direction::CallCToJava}};
    Op.Expect = {LocalM, "is a local reference that belongs to thread",
                 "GetStringUTFLength", false};
    Op.Ready = [](const ExecState &S) { return S.Str != nullptr; };
    Op.Apply = [](ExecState &S) {
      JavaVM *Jvm = S.World.Rt.javaVm();
      jstring Foreign = S.Str;
      std::thread Worker([Jvm, Foreign] {
        JNIEnv *WorkerEnv = nullptr;
        if (Jvm->functions->AttachCurrentThread(Jvm, &WorkerEnv, nullptr) !=
            JNI_OK)
          return;
        WorkerEnv->functions->GetStringUTFLength(WorkerEnv, Foreign);
        WorkerEnv->functions->ExceptionClear(WorkerEnv);
        Jvm->functions->DetachCurrentThread(Jvm);
      });
      Worker.join();
    };
    Ops.push_back(std::move(Op));
  }
  {
    FuzzOp Op;
    Op.Name = "bug_local_native_return";
    Op.Focus = LocalM;
    Op.Kind = OpKind::Bug;
    Op.CreatesLocal = true;
    Op.Edges = {
        {LocalM, 5, FnId::Count, Direction::ReturnCToJava},
        {EntityM, 0, FnId::GetStaticMethodID, Direction::ReturnJavaToC},
        {LocalM, 1, FnId::FindClass, Direction::ReturnJavaToC}};
    Op.Expect = {LocalM, "is a dangling local reference", "", false};
    Op.Ready = [](const ExecState &) { return true; };
    Op.Apply = [](ExecState &S) {
      jclass Cls = S.Env->functions->FindClass(S.Env, "FuzzLocalSupplier");
      if (!Cls)
        return;
      jmethodID Mid = S.Env->functions->GetStaticMethodID(
          S.Env, Cls, "get", "()Ljava/lang/Object;");
      if (Mid)
        S.Env->functions->CallStaticObjectMethodA(S.Env, Cls, Mid, nullptr);
    };
    Ops.push_back(std::move(Op));
  }

  return Ops;
}

} // namespace

const std::vector<FuzzOp> &jinn::fuzz::jniOps() {
  static const std::vector<FuzzOp> Ops = buildJniOps();
  return Ops;
}

const FuzzOp *jinn::fuzz::findJniOp(const std::string &Name) {
  for (const FuzzOp &Op : jniOps())
    if (Name == Op.Name)
      return &Op;
  return nullptr;
}

const std::vector<EdgeRef> &jinn::fuzz::implicitJniEdges() {
  static const std::vector<EdgeRef> Edges = {
      {LocalM, 0, FnId::Count, Direction::CallJavaToC},
      {LocalM, 8, FnId::Count, Direction::ReturnCToJava},
  };
  return Edges;
}

void jinn::fuzz::prepareJniWorld(scenarios::ScenarioWorld &World) {
  if (!World.Vm.findClass("FuzzHelper")) {
    jvm::ClassDef Def;
    Def.Name = "FuzzHelper";
    Def.field("count", "I", /*IsStatic=*/true);
    Def.field("LIMIT", "I", /*IsStatic=*/true, /*IsFinal=*/true);
    Def.method(
        "ping", "()V",
        [](jvm::Vm &, jvm::JThread &, const jvm::Value &,
           const std::vector<jvm::Value> &) {
          return jvm::Value::makeVoid();
        },
        /*IsStatic=*/true, "FuzzHelper.java:3");
    World.Vm.defineClass(Def);
  }
  if (!World.Vm.findClass("fuzz/Base")) {
    jvm::ClassDef Base;
    Base.Name = "fuzz/Base";
    Base.method(
        "handler", "()V",
        [](jvm::Vm &, jvm::JThread &, const jvm::Value &,
           const std::vector<jvm::Value> &) {
          return jvm::Value::makeVoid();
        },
        /*IsStatic=*/true, "Base.java:10");
    World.Vm.defineClass(Base);
  }
  if (!World.Vm.findClass("fuzz/Widget")) {
    jvm::ClassDef Sub;
    Sub.Name = "fuzz/Widget";
    Sub.Super = "fuzz/Base";
    World.Vm.defineClass(Sub);
  }
  World.defineRefSupplier("FuzzLocalSupplier", [](JNIEnv *Env) -> jobject {
    jstring S = Env->functions->NewStringUTF(Env, "escapee");
    Env->functions->DeleteLocalRef(Env, S);
    return S; // BUG: deleted before it escapes as the return value
  });
  World.defineRefSupplier("FuzzGlobalSupplier", [](JNIEnv *Env) -> jobject {
    jstring S = Env->functions->NewStringUTF(Env, "anchor");
    jobject G = Env->functions->NewGlobalRef(Env, S);
    Env->functions->DeleteGlobalRef(Env, G);
    return G; // BUG: deleted before it escapes as the return value
  });
}

std::vector<std::string>
jinn::fuzz::validateJniOps(const std::vector<analysis::MachineModel> &Models) {
  std::vector<std::string> Issues;
  auto modelFor =
      [&Models](const std::string &Name) -> const analysis::MachineModel * {
    for (const analysis::MachineModel &M : Models)
      if (M.Name == Name)
        return &M;
    return nullptr;
  };

  auto checkEdge = [&](const char *OpName, const EdgeRef &Edge,
                       const analysis::TransitionModel **OutT) {
    *OutT = nullptr;
    const analysis::MachineModel *Model = modelFor(Edge.Machine);
    if (!Model) {
      Issues.push_back(formatString("%s: unknown machine \"%s\"", OpName,
                                    Edge.Machine));
      return;
    }
    if (Edge.Index >= Model->Transitions.size()) {
      Issues.push_back(
          formatString("%s: %s transition %zu out of range (machine has %zu)",
                       OpName, Edge.Machine, Edge.Index,
                       Model->Transitions.size()));
      return;
    }
    const analysis::TransitionModel &T = Model->Transitions[Edge.Index];
    *OutT = &T;
    bool Matched = false;
    for (const analysis::TriggerModel &Trigger : T.Triggers) {
      if (Trigger.Dir != Edge.Dir)
        continue;
      if (Edge.Fn == FnId::Count)
        Matched |= Trigger.NativeSide;
      else
        Matched |= !Trigger.NativeSide &&
                   Trigger.Matches.test(static_cast<size_t>(Edge.Fn));
    }
    if (!Matched)
      Issues.push_back(formatString(
          "%s: %s transition %zu has no trigger matching %s in the "
          "declared direction",
          OpName, Edge.Machine, Edge.Index,
          Edge.Fn == FnId::Count ? "<native boundary>"
                                 : jni::fnName(Edge.Fn)));
  };

  std::set<std::string> Names;
  for (const FuzzOp &Op : jniOps()) {
    if (!Names.insert(Op.Name).second)
      Issues.push_back(formatString("duplicate op name \"%s\"", Op.Name));
    if (!Op.Ready || !Op.Apply)
      Issues.push_back(formatString("%s: missing Ready or Apply", Op.Name));

    bool ClaimsErrorEdge = false;
    for (const EdgeRef &Edge : Op.Edges) {
      const analysis::TransitionModel *T = nullptr;
      checkEdge(Op.Name, Edge, &T);
      if (!T)
        continue;
      bool ErrorTarget = T->To.rfind("Error", 0) == 0;
      ClaimsErrorEdge |= ErrorTarget;
      if (Op.Kind == OpKind::Clean && ErrorTarget)
        Issues.push_back(formatString(
            "%s: clean op claims error-target edge %s/%zu (-> %s)", Op.Name,
            Edge.Machine, Edge.Index, T->To.c_str()));
      if (Op.Kind == OpKind::Bug && ErrorTarget &&
          Op.Expect.Machine != Edge.Machine)
        Issues.push_back(formatString(
            "%s: error edge belongs to %s but the expectation names \"%s\"",
            Op.Name, Edge.Machine, Op.Expect.Machine.c_str()));
    }
    (void)ClaimsErrorEdge;

    if (Op.Kind == OpKind::Bug) {
      if (!modelFor(Op.Expect.Machine))
        Issues.push_back(
            formatString("%s: expectation names unknown machine \"%s\"",
                         Op.Name, Op.Expect.Machine.c_str()));
      if (Op.Expect.MessagePart.empty())
        Issues.push_back(
            formatString("%s: bug op with empty MessagePart", Op.Name));
    } else if (!Op.Expect.Machine.empty()) {
      Issues.push_back(
          formatString("%s: clean op carries an expectation", Op.Name));
    }

    for (const char *Dep : Op.Setup) {
      const FuzzOp *Resolved = findJniOp(Dep);
      if (!Resolved || Resolved->Kind != OpKind::Clean)
        Issues.push_back(formatString("%s: setup op \"%s\" unknown or not "
                                      "clean",
                                      Op.Name, Dep));
    }
    if (Op.Closer) {
      const FuzzOp *Resolved = findJniOp(Op.Closer);
      if (!Resolved || Resolved->Kind != OpKind::Clean)
        Issues.push_back(formatString("%s: closer op \"%s\" unknown or not "
                                      "clean",
                                      Op.Name, Op.Closer));
    }
  }

  for (const EdgeRef &Edge : implicitJniEdges()) {
    const analysis::TransitionModel *T = nullptr;
    checkEdge("<implicit>", Edge, &T);
  }
  return Issues;
}
