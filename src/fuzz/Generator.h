//===- fuzz/Generator.h - Deterministic spec-guided sequence generator ---===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates FFI call sequences in two flavors. Clean paths walk a focus
/// machine's non-error transitions (plus a random mix of the other
/// machines' legal idioms) and must provoke zero reports. Bug paths end
/// exactly one transition into an error state: a random clean prefix, the
/// bug op's declared setup chain, then the bug op itself — last, because a
/// violation pends jinn.JNIAssertionFailure and aborts the faulting call.
///
/// Every sequence is a pure function of (seed, focus-or-bug, index): the
/// generator derives one splitmix64 stream per (purpose, index) pair via
/// SplitMix64::split, so any sequence of any campaign can be regenerated
/// in isolation.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_FUZZ_GENERATOR_H
#define JINN_FUZZ_GENERATOR_H

#include "fuzz/Ops.h"

#include <string>
#include <vector>

namespace jinn::fuzz {

/// One generated call sequence; op names resolve against the domain's op
/// inventory ("jni" -> jniOps(), "py" -> pyOps()) at execution time.
struct Sequence {
  std::string Domain = "jni";
  std::vector<std::string> OpNames;

  /// The bug op the sequence ends in; nullptr for clean paths (JNI domain).
  const FuzzOp *bugOp() const;
};

class Generator {
public:
  explicit Generator(uint64_t Seed) : Seed(Seed) {}

  uint64_t seed() const { return Seed; }

  /// Clean path biased (~50%) toward \p FocusMachine's ops. Starts with
  /// ensure_capacity, ends by closing open resources in LIFO order.
  Sequence cleanJniSequence(const std::string &FocusMachine,
                            uint64_t Index) const;

  /// Bug path for \p BugOpName: random clean prefix (closed before the
  /// setup chain so only the bug op's violation can fire), setup ops, bug
  /// op last. DefaultCapacityOnly bugs get no prefix and no
  /// ensure_capacity — they need the un-ensured native frame.
  Sequence bugJniSequence(const std::string &BugOpName, uint64_t Index) const;

private:
  uint64_t Seed;
};

} // namespace jinn::fuzz

#endif // JINN_FUZZ_GENERATOR_H
