//===- fuzz/Generator.cpp - Deterministic spec-guided sequence generator -===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Generator.h"

#include "support/Rng.h"

using namespace jinn;
using namespace jinn::fuzz;

const FuzzOp *Sequence::bugOp() const {
  const FuzzOp *Bug = nullptr;
  for (const std::string &Name : OpNames)
    if (const FuzzOp *Op = findJniOp(Name))
      if (Op->Kind == OpKind::Bug)
        Bug = Op;
  return Bug;
}

namespace {

uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ULL;
  for (char C : S) {
    H ^= static_cast<uint8_t>(C);
    H *= 1099511628211ULL;
  }
  return H;
}

/// Emits \p Op preceded by its setup chain (depth-first). Repeat emissions
/// are harmless: ops are Ready-gated into no-ops once satisfied.
void emitWithSetup(const FuzzOp &Op, std::vector<std::string> &Out) {
  for (const char *Dep : Op.Setup)
    if (const FuzzOp *D = findJniOp(Dep))
      emitWithSetup(*D, Out);
  Out.push_back(Op.Name);
}

/// Emits a clean op and accounts for its residue: PairClosely ops get
/// their closer immediately (critical sections and pending exceptions
/// deaden every other op), others stack the closer for LIFO cleanup.
void emitClean(const FuzzOp &Op, std::vector<std::string> &Out,
               std::vector<const char *> &Residue) {
  emitWithSetup(Op, Out);
  if (!Op.Closer)
    return;
  if (Op.PairClosely)
    Out.push_back(Op.Closer);
  else
    Residue.push_back(Op.Closer);
}

void closeResidue(std::vector<const char *> &Residue,
                  std::vector<std::string> &Out) {
  for (auto It = Residue.rbegin(); It != Residue.rend(); ++It)
    Out.push_back(*It);
  Residue.clear();
}

const FuzzOp *pickClean(SplitMix64 &Rng, const std::string &Focus) {
  std::vector<const FuzzOp *> Clean, Focused;
  for (const FuzzOp &Op : jniOps()) {
    if (Op.Kind != OpKind::Clean)
      continue;
    Clean.push_back(&Op);
    if (Focus == Op.Focus)
      Focused.push_back(&Op);
  }
  if (!Focused.empty() && Rng.chance(1, 2))
    return Focused[Rng.nextBelow(Focused.size())];
  return Clean[Rng.nextBelow(Clean.size())];
}

} // namespace

Sequence Generator::cleanJniSequence(const std::string &FocusMachine,
                                     uint64_t Index) const {
  SplitMix64 Rng =
      SplitMix64(Seed).split(fnv1a("clean:" + FocusMachine)).split(Index);
  Sequence Seq;
  Seq.OpNames.push_back("ensure_capacity");
  std::vector<const char *> Residue;
  size_t Len = 6 + Rng.nextBelow(11);
  for (size_t I = 0; I < Len; ++I)
    emitClean(*pickClean(Rng, FocusMachine), Seq.OpNames, Residue);
  closeResidue(Residue, Seq.OpNames);
  return Seq;
}

Sequence Generator::bugJniSequence(const std::string &BugOpName,
                                   uint64_t Index) const {
  Sequence Seq;
  const FuzzOp *Bug = findJniOp(BugOpName);
  if (!Bug || Bug->Kind != OpKind::Bug)
    return Seq;
  SplitMix64 Rng =
      SplitMix64(Seed).split(fnv1a("bug:" + BugOpName)).split(Index);
  if (!Bug->DefaultCapacityOnly) {
    Seq.OpNames.push_back("ensure_capacity");
    std::vector<const char *> Residue;
    size_t PrefixLen = Rng.nextBelow(5);
    for (size_t I = 0; I < PrefixLen; ++I)
      emitClean(*pickClean(Rng, Bug->Focus), Seq.OpNames, Residue);
    closeResidue(Residue, Seq.OpNames);
  }
  emitWithSetup(*Bug, Seq.OpNames);
  return Seq;
}
