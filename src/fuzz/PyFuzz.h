//===- fuzz/PyFuzz.h - Python/C-domain fuzzing (§7 generalization) -------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fourth oracle domain: the same generate-execute-judge loop applied
/// to the Python/C checker of §7. Sequences of Python/C API idioms run
/// against a fresh PyInterp with PyChecker interposed; clean paths must
/// leave zero violations and zero leaks, bug paths must provoke exactly
/// the declared violation (machine + message fragment). Coverage is
/// accounted over buildPythonModels() — the three machines "Reference
/// ownership", "GIL state", "Exception state" — with the same epsilon
/// exemptions as the JNI domain.
///
/// Python ops are atomic (GIL excursions and pending-exception windows
/// open and close inside one op), so no cross-op gating is needed and the
/// same Sequence/minimizer machinery applies unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_FUZZ_PYFUZZ_H
#define JINN_FUZZ_PYFUZZ_H

#include "fuzz/Coverage.h"
#include "fuzz/Generator.h"

#include <string>
#include <vector>

namespace jinn::fuzz {

/// Names of the Python-domain ops, clean first then bug ops.
const std::vector<std::string> &pyOpNames();
/// True when \p Name is one of the Python bug ops.
bool isPyBugOp(const std::string &Name);
/// All Python bug op names (campaign drivers iterate these).
std::vector<std::string> pyBugOpNames();

struct PyExecResult {
  bool Pass = false;
  std::vector<std::string> Failures;
  std::vector<std::string> ExecutedOps;
};

/// Executes one py-domain sequence under a fresh interpreter + checker and
/// judges it against the ops' declared expectations.
PyExecResult runPySequence(const Sequence &Seq);

/// Credits executed ops' edges on a Coverage over buildPythonModels().
void coverPySequence(const PyExecResult &Result, Coverage &Cov);

/// Deterministic generators, mirroring Generator's JNI flavor.
Sequence cleanPySequence(uint64_t Seed, uint64_t Index);
Sequence bugPySequence(uint64_t Seed, const std::string &BugOpName,
                       uint64_t Index);

} // namespace jinn::fuzz

#endif // JINN_FUZZ_PYFUZZ_H
