//===- fuzz/Minimizer.h - Delta-debugging sequence minimizer -------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Zeller's ddmin over op-name vectors: given a failing sequence and a
/// predicate that re-runs a candidate and answers "does it still fail the
/// same way?", removes complement chunks at increasing granularity until
/// the sequence is 1-minimal (no single op can be removed). Determinism
/// falls out of the executor: candidates are re-executed from scratch in
/// fresh worlds, so the predicate is a pure function of the op list.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_FUZZ_MINIMIZER_H
#define JINN_FUZZ_MINIMIZER_H

#include "fuzz/Generator.h"

#include <functional>

namespace jinn::fuzz {

/// Re-runs a candidate and answers whether it still exhibits the failure
/// being shrunk. Must be deterministic.
using FailurePredicate = std::function<bool(const Sequence &)>;

/// ddmin. \p Seq must satisfy \p StillFails; the result is a subsequence
/// (original order preserved) that still does and is 1-minimal. The number
/// of predicate evaluations is returned through \p TestsRun when non-null.
Sequence minimizeSequence(const Sequence &Seq,
                          const FailurePredicate &StillFails,
                          size_t *TestsRun = nullptr);

} // namespace jinn::fuzz

#endif // JINN_FUZZ_MINIMIZER_H
