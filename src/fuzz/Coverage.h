//===- fuzz/Coverage.h - Spec transition coverage accounting -------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tracks which spec transitions the fuzzer has driven, per machine. The
/// denominator is the set of *reachable, non-epsilon* transitions of each
/// machine model: epsilon edges (no triggers and no action, VM-internal
/// bookkeeping like the exception machine's Cleared<->Pending pair)
/// cannot be driven through the FFI boundary and are exempt. Error-target
/// edges count as covered only when a bug path actually fired them and
/// the predicted report was observed.
///
/// Results are published three ways: a JSON document the coverage gate
/// (tools/fuzz_gate.py) compares against committed baselines, named
/// counters on a DiagnosticSink ("fuzz.cov.<machine>.*"), and a plain
/// table for the CLI.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_FUZZ_COVERAGE_H
#define JINN_FUZZ_COVERAGE_H

#include "analysis/SpecModel.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace jinn::fuzz {

/// Per-transition coverage status.
enum class EdgeState : uint8_t {
  Uncovered, ///< reachable but not yet driven
  Covered,   ///< driven by at least one executed sequence
  Exempt,    ///< epsilon edge: not drivable through the boundary
};

/// Coverage of one machine's transition list.
struct MachineCoverage {
  std::string Machine;
  std::vector<EdgeState> Edges; ///< indexed by TransitionModel::Index

  size_t reachable() const;
  size_t covered() const;
  /// covered()/reachable(); 1.0 for a machine with no drivable edges.
  double fraction() const;
};

/// Accumulates transition coverage over one fuzzing campaign.
class Coverage {
public:
  Coverage() = default;
  explicit Coverage(const std::vector<analysis::MachineModel> &Models);

  /// Marks transition \p Index of \p Machine as driven. Unknown machines
  /// and out-of-range indices are ignored (the op table is validated
  /// separately; coverage accounting must never throw mid-campaign).
  void cover(const std::string &Machine, size_t Index);

  const std::vector<MachineCoverage> &machines() const { return Rows; }
  const MachineCoverage *rowFor(const std::string &Machine) const;

  /// True when every machine's fraction reaches \p Floor.
  bool allAbove(double Floor) const;

  /// Publishes "<Prefix>.<machine>.covered/reachable" counters.
  void emitCounters(DiagnosticSink &Sink, const std::string &Prefix) const;

  /// The gate's input document: {"seed":..., "machines":[{name, covered,
  /// reachable, fraction}, ...]}.
  std::string toJson(uint64_t Seed, const std::string &Domain) const;

  /// Human-readable table (one line per machine) for the CLI.
  std::string toTable() const;

private:
  std::vector<MachineCoverage> Rows;
};

} // namespace jinn::fuzz

#endif // JINN_FUZZ_COVERAGE_H
