//===- fuzz/Coverage.cpp - Spec transition coverage accounting -----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Coverage.h"

#include "support/Format.h"

#include <cstdio>

using namespace jinn;
using namespace jinn::fuzz;

size_t MachineCoverage::reachable() const {
  size_t N = 0;
  for (EdgeState E : Edges)
    N += E != EdgeState::Exempt;
  return N;
}

size_t MachineCoverage::covered() const {
  size_t N = 0;
  for (EdgeState E : Edges)
    N += E == EdgeState::Covered;
  return N;
}

double MachineCoverage::fraction() const {
  size_t Total = reachable();
  if (Total == 0)
    return 1.0;
  return static_cast<double>(covered()) / static_cast<double>(Total);
}

Coverage::Coverage(const std::vector<analysis::MachineModel> &Models) {
  for (const analysis::MachineModel &Model : Models) {
    MachineCoverage Row;
    Row.Machine = Model.Name;
    Row.Edges.resize(Model.Transitions.size(), EdgeState::Uncovered);
    for (const analysis::TransitionModel &T : Model.Transitions)
      if (T.Epsilon)
        Row.Edges[T.Index] = EdgeState::Exempt;
    Rows.push_back(std::move(Row));
  }
}

void Coverage::cover(const std::string &Machine, size_t Index) {
  for (MachineCoverage &Row : Rows)
    if (Row.Machine == Machine) {
      if (Index < Row.Edges.size() && Row.Edges[Index] != EdgeState::Exempt)
        Row.Edges[Index] = EdgeState::Covered;
      return;
    }
}

const MachineCoverage *Coverage::rowFor(const std::string &Machine) const {
  for (const MachineCoverage &Row : Rows)
    if (Row.Machine == Machine)
      return &Row;
  return nullptr;
}

bool Coverage::allAbove(double Floor) const {
  for (const MachineCoverage &Row : Rows)
    if (Row.fraction() < Floor)
      return false;
  return true;
}

void Coverage::emitCounters(DiagnosticSink &Sink,
                            const std::string &Prefix) const {
  for (const MachineCoverage &Row : Rows) {
    Sink.setCounter(Prefix + "." + Row.Machine + ".covered", Row.covered());
    Sink.setCounter(Prefix + "." + Row.Machine + ".reachable",
                    Row.reachable());
  }
}

static void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  Out += '"';
}

std::string Coverage::toJson(uint64_t Seed, const std::string &Domain) const {
  std::string Out = "{\n";
  Out += formatString("  \"seed\": %llu,\n",
                      static_cast<unsigned long long>(Seed));
  Out += "  \"domain\": ";
  appendJsonString(Out, Domain);
  Out += ",\n  \"machines\": [\n";
  for (size_t I = 0; I < Rows.size(); ++I) {
    const MachineCoverage &Row = Rows[I];
    Out += "    {\"name\": ";
    appendJsonString(Out, Row.Machine);
    Out += formatString(", \"covered\": %zu, \"reachable\": %zu, "
                        "\"fraction\": %.4f}%s\n",
                        Row.covered(), Row.reachable(), Row.fraction(),
                        I + 1 < Rows.size() ? "," : "");
  }
  Out += "  ]\n}\n";
  return Out;
}

std::string Coverage::toTable() const {
  std::string Out;
  for (const MachineCoverage &Row : Rows)
    Out += formatString("  %-36s %2zu/%2zu edges (%.0f%%)\n",
                        Row.Machine.c_str(), Row.covered(), Row.reachable(),
                        100.0 * Row.fraction());
  return Out;
}
