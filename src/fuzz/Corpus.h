//===- fuzz/Corpus.h - On-disk reproducer format (.jfz) ------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal reproducers live in fuzz/corpus/ as line-oriented .jfz files:
///
///   # optional comments
///   domain jni
///   op ensure_capacity
///   op slot_string
///   ...
///   expect-clean                       (clean path; zero reports)
/// or
///   expect-machine Local reference     (the spec-predicted report)
///   expect-message is a dangling local reference
///   expect-function GetStringUTFLength (omitted = skip the check)
///   expect-endofrun 0
///
/// The expectation lines are written from the bug op's declaration at
/// serialize time and *re-checked against the op table* at parse time, so
/// a corpus file drifting out of sync with the inventory is a load error,
/// not a silently changed test.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_FUZZ_CORPUS_H
#define JINN_FUZZ_CORPUS_H

#include "fuzz/Generator.h"

#include <string>
#include <vector>

namespace jinn::fuzz {

struct CorpusEntry {
  std::string Name; ///< file stem, e.g. "global_dangling_min"
  Sequence Seq;
  bool ExpectClean = false;
  Expected Expect; ///< valid when !ExpectClean
};

/// Renders \p Seq in .jfz form; the expectation block is derived from the
/// sequence's bug op (or expect-clean when there is none).
std::string serializeSequence(const Sequence &Seq);

/// Parses one .jfz document. On success fills \p Out and returns true;
/// otherwise \p Error describes the first problem (unknown op, expectation
/// out of sync with the op table, malformed line).
bool parseCorpusText(const std::string &Text, CorpusEntry &Out,
                     std::string &Error);

/// Loads every *.jfz under \p Dir (sorted by name, stem as entry Name).
/// Unparsable files surface as \p Errors entries, not silent skips.
std::vector<CorpusEntry> loadCorpusDir(const std::string &Dir,
                                       std::vector<std::string> &Errors);

} // namespace jinn::fuzz

#endif // JINN_FUZZ_CORPUS_H
