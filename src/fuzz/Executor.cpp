//===- fuzz/Executor.cpp - Differential execution under the oracle stack -===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Executor.h"

#include "support/Format.h"
#include "trace/Replay.h"

#include <algorithm>

using namespace jinn;
using namespace jinn::fuzz;

namespace {

/// Runtime gate: critical sections and pending exceptions deaden every op
/// not declared safe for them, then the op's own precondition applies.
/// The gate reads only ExecState bookkeeping, never checker state, so op
/// skipping is identical across the Jinn and Xcheck worlds.
bool runnable(const FuzzOp &Op, const ExecState &S) {
  if (S.InCritical && !Op.CriticalSafe)
    return false;
  if (S.ExcPending && !Op.ExcSafe)
    return false;
  return Op.Ready(S);
}

std::vector<std::string> executeOps(scenarios::ScenarioWorld &World,
                                    const Sequence &Seq) {
  prepareJniWorld(World);
  ExecState S(World);
  std::vector<std::string> Executed;
  World.runAsNative("FuzzSeq", [&](JNIEnv *Env) {
    S.Env = Env;
    for (const std::string &Name : Seq.OpNames) {
      const FuzzOp *Op = findJniOp(Name);
      if (!Op || !runnable(*Op, S))
        continue;
      Op->Apply(S);
      Executed.push_back(Name);
      if (Op->Kind == OpKind::Bug)
        break; // the violation pends an exception; nothing legal follows
    }
  });
  return Executed;
}

std::string describeReport(const agent::JinnReport &R) {
  return formatString("[%s] %s: %s%s", R.Machine.c_str(), R.Function.c_str(),
                      R.Message.c_str(), R.EndOfRun ? " (end of run)" : "");
}

void compareReports(const std::vector<agent::JinnReport> &Inline,
                    const std::vector<agent::JinnReport> &Replayed,
                    std::vector<std::string> &Failures) {
  if (Inline.size() != Replayed.size()) {
    Failures.push_back(formatString(
        "replay disagreement: inline produced %zu report(s), replay %zu",
        Inline.size(), Replayed.size()));
    return;
  }
  for (size_t I = 0; I < Inline.size(); ++I) {
    const agent::JinnReport &A = Inline[I];
    const agent::JinnReport &B = Replayed[I];
    if (A.Machine != B.Machine || A.Function != B.Function ||
        A.Message != B.Message || A.EndOfRun != B.EndOfRun)
      Failures.push_back(
          formatString("replay disagreement at report %zu: inline %s vs "
                       "replay %s",
                       I, describeReport(A).c_str(),
                       describeReport(B).c_str()));
  }
}

void checkVerdict(const Sequence &Seq, const FuzzOp *Bug, ExecResult &R) {
  if (!Bug) {
    for (const agent::JinnReport &Rep : R.Inline)
      R.Failures.push_back(formatString("clean path reported %s",
                                        describeReport(Rep).c_str()));
    return;
  }
  if (std::find(R.ExecutedOps.begin(), R.ExecutedOps.end(),
                std::string(Bug->Name)) == R.ExecutedOps.end()) {
    R.Failures.push_back(formatString(
        "bug op %s never became runnable in this sequence", Bug->Name));
    return;
  }
  if (R.Inline.size() != 1) {
    R.Failures.push_back(formatString(
        "bug path must produce exactly one report, got %zu", R.Inline.size()));
    for (const agent::JinnReport &Rep : R.Inline)
      R.Failures.push_back("  " + describeReport(Rep));
    return;
  }
  const agent::JinnReport &Rep = R.Inline.front();
  const Expected &E = Bug->Expect;
  if (Rep.Machine != E.Machine)
    R.Failures.push_back(formatString("wrong machine: predicted \"%s\", got %s",
                                      E.Machine.c_str(),
                                      describeReport(Rep).c_str()));
  if (Rep.Message.find(E.MessagePart) == std::string::npos)
    R.Failures.push_back(formatString(
        "message lacks \"%s\": got %s", E.MessagePart.c_str(),
        describeReport(Rep).c_str()));
  if (!E.Function.empty() && Rep.Function != E.Function)
    R.Failures.push_back(formatString(
        "wrong faulting function: predicted \"%s\", got %s",
        E.Function.c_str(), describeReport(Rep).c_str()));
  if (Rep.EndOfRun != E.EndOfRun)
    R.Failures.push_back(formatString(
        "wrong end-of-run flag: predicted %d, got %s", E.EndOfRun ? 1 : 0,
        describeReport(Rep).c_str()));
  (void)Seq;
}

} // namespace

ExecResult jinn::fuzz::runJniSequence(const Sequence &Seq,
                                      const ExecutorOptions &Opts) {
  ExecResult R;
  const FuzzOp *Bug = Seq.bugOp();

  scenarios::WorldConfig Config;
  Config.Checker = scenarios::CheckerKind::Jinn;
  Config.JinnMode = Opts.RunReplay ? agent::TraceMode::RecordAndReplay
                                   : agent::TraceMode::InlineCheck;
  Config.JinnSparseDispatch = Opts.JinnSparseDispatch;
  Config.JinnFusedDispatch = Opts.JinnFusedDispatch;
  scenarios::ScenarioWorld World(Config);
  R.ExecutedOps = executeOps(World, Seq);
  World.shutdown();
  R.Inline = World.Jinn->reporter().reports();

  checkVerdict(Seq, Bug, R);

  if (Opts.RunReplay && World.Jinn->recorder()) {
    trace::Trace Recorded = World.Jinn->recorder()->collect();
    trace::ReplayResult RR = trace::replayTrace(Recorded, World.Vm);
    std::vector<agent::JinnReport> Replayed = std::move(RR.Reports);
    if (Opts.Defect == SeededDefect::ReplayDropsDangling)
      Replayed.erase(std::remove_if(Replayed.begin(), Replayed.end(),
                                    [](const agent::JinnReport &Rep) {
                                      return Rep.Message.find("dangling") !=
                                             std::string::npos;
                                    }),
                     Replayed.end());
    compareReports(R.Inline, Replayed, R.Failures);
  }

  if (Opts.RunXcheck) {
    scenarios::WorldConfig XConfig;
    XConfig.Checker = scenarios::CheckerKind::Xcheck;
    scenarios::ScenarioWorld XWorld(XConfig);
    std::vector<std::string> XExecuted = executeOps(XWorld, Seq);
    XWorld.shutdown();
    if (XExecuted != R.ExecutedOps)
      R.Failures.push_back(
          "op gating diverged between the Jinn and -Xcheck:jni worlds");
    const std::vector<checkjni::XcheckDetection> &Detections =
        XWorld.Xcheck->reporter().detections();
    if (Bug && Bug->XcheckDetects) {
      bool Found = std::any_of(Detections.begin(), Detections.end(),
                               [&](const checkjni::XcheckDetection &D) {
                                 return D.Machine == Bug->Expect.Machine;
                               });
      if (!Found)
        R.Failures.push_back(formatString(
            "-Xcheck:jni missed a bug its coverage predicts for \"%s\" "
            "(%zu detection(s) total)",
            Bug->Expect.Machine.c_str(), Detections.size()));
    } else if (!Detections.empty()) {
      R.Failures.push_back(formatString(
          "-Xcheck:jni detected where the spec predicts silence: %s",
          Detections.front().FormattedText.c_str()));
    }
  }

  R.Pass = R.Failures.empty();
  return R;
}

void jinn::fuzz::runJniSequenceRecorded(
    const Sequence &Seq,
    const std::function<void(const trace::Trace &, jvm::Vm &,
                             const std::vector<agent::JinnReport> &)>
        &Consume) {
  scenarios::WorldConfig Config;
  Config.Checker = scenarios::CheckerKind::Jinn;
  Config.JinnMode = agent::TraceMode::RecordAndReplay;
  scenarios::ScenarioWorld World(Config);
  executeOps(World, Seq);
  World.shutdown();
  trace::Trace Recorded = World.Jinn->recorder()->collect();
  Consume(Recorded, World.Vm, World.Jinn->reporter().reports());
}

std::string jinn::fuzz::failureClass(const std::string &Failure) {
  if (Failure.find("replay disagreement") != std::string::npos)
    return "replay";
  if (Failure.find("-Xcheck:jni") != std::string::npos)
    return "xcheck";
  if (Failure.find("op gating diverged") != std::string::npos)
    return "gating";
  if (Failure.find("never became runnable") != std::string::npos)
    return "skipped"; // shrink artifact (setup removed), not a finding
  return "verdict";
}

bool jinn::fuzz::sharesFailureClass(const std::vector<std::string> &A,
                                    const std::vector<std::string> &B) {
  for (const std::string &FA : A)
    for (const std::string &FB : B)
      if (failureClass(FA) == failureClass(FB))
        return true;
  return false;
}

void jinn::fuzz::coverJniSequence(const ExecResult &Result, Coverage &Cov) {
  for (const EdgeRef &Edge : implicitJniEdges())
    Cov.cover(Edge.Machine, Edge.Index);
  for (const std::string &Name : Result.ExecutedOps)
    if (const FuzzOp *Op = findJniOp(Name))
      for (const EdgeRef &Edge : Op->Edges)
        Cov.cover(Edge.Machine, Edge.Index);
}
