//===- fuzz/Ops.h - The fuzzer's JNI operation inventory -----------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generator does not emit raw JNI calls; it emits *operations*: small
/// JNI idioms with explicit preconditions (Ready), effects on a shared
/// ExecState, and — the self-validating part — a declaration of exactly
/// which spec transitions the operation drives, expressed as (machine,
/// transition index, FnId, direction) tuples that validateJniOps() checks
/// against the analysis::SpecModel resolution of the shipped machines.
/// A bug operation additionally declares the report it must provoke
/// (machine, message fragment, faulting function, end-of-run flag), so
/// the expected verdict of every generated sequence is known by
/// construction, never inferred from the checker under test.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_FUZZ_OPS_H
#define JINN_FUZZ_OPS_H

#include "analysis/SpecModel.h"
#include "jni/JniFunctionId.h"
#include "scenarios/Scenarios.h"
#include "spec/StateMachine.h"

#include <functional>
#include <string>
#include <vector>

namespace jinn::fuzz {

/// Mutable state threaded through one sequence execution. Slots are
/// deliberately few and typed: operations guard on them (Ready) so a
/// generated sequence can always be executed by skipping the ops whose
/// precondition did not materialize.
struct ExecState {
  explicit ExecState(scenarios::ScenarioWorld &World) : World(World) {}

  scenarios::ScenarioWorld &World;
  JNIEnv *Env = nullptr;

  jintArray Arr = nullptr; ///< depth-0 workhorse array
  jstring Str = nullptr;   ///< depth-0 workhorse string
  /// Transient locals with the explicit-frame depth they were made at.
  std::vector<std::pair<jobject, int>> Locals;
  jobject DeadLocal = nullptr;  ///< a deleted or frame-popped local
  jobject Global = nullptr;     ///< the live global slot
  jobject DeadGlobal = nullptr; ///< a deleted global
  jint *Pin = nullptr;          ///< live Get<T>ArrayElements buffer
  jint *DeadPin = nullptr;      ///< an already-released buffer
  void *Crit = nullptr;         ///< live critical-section buffer
  jclass HelperCls = nullptr;   ///< FuzzHelper class (depth 0)
  jmethodID HelperMid = nullptr;
  jfieldID HelperFid = nullptr;

  int Frames = 0;          ///< explicit PushLocalFrame depth
  bool Capacity = false;   ///< EnsureLocalCapacity was issued
  bool MonitorHeld = false;
  bool ExcPending = false; ///< a Java exception is pending
  bool InCritical = false; ///< inside a JNI critical section
};

/// One spec transition an operation claims to drive. \c Fn names the FFI
/// function carrying the claim (FnId::Count for native-method-boundary
/// edges, which have no FFI function).
struct EdgeRef {
  const char *Machine;
  size_t Index;
  jni::FnId Fn = jni::FnId::Count;
  spec::Direction Dir = spec::Direction::CallCToJava;
};

enum class OpKind : uint8_t {
  Clean, ///< must never provoke a report
  Bug,   ///< ends one transition into an error/guard violation
};

/// The report a bug operation must provoke (and nothing else).
struct Expected {
  std::string Machine;
  std::string MessagePart; ///< substring of the report message
  std::string Function;    ///< faulting function name; "" skips the check
  bool EndOfRun = false;   ///< report surfaces at VM death, not inline
};

struct FuzzOp {
  const char *Name;  ///< stable corpus identifier
  const char *Focus; ///< machine this op belongs to (generator grouping)
  OpKind Kind = OpKind::Clean;
  std::vector<EdgeRef> Edges;
  Expected Expect; ///< bug ops only

  /// True where -Xcheck:jni's ad-hoc checks overlap this bug (the oracle
  /// demands a matching detection); false predicts the baseline misses it.
  bool XcheckDetects = false;
  bool CreatesLocal = false;        ///< allocates local references
  bool DefaultCapacityOnly = false; ///< bug needs the un-ensured frame
  bool ExcSafe = false;      ///< runnable with an exception pending
  bool CriticalSafe = false; ///< runnable inside a critical section
  /// Generator emits the closer immediately after this op (critical
  /// sections and pending exceptions deaden everything else).
  bool PairClosely = false;

  /// Clean ops establishing this op's precondition, emitted just before.
  std::vector<const char *> Setup;
  /// Clean op undoing this op's residue before the sequence ends.
  const char *Closer = nullptr;

  std::function<bool(const ExecState &)> Ready;
  std::function<void(ExecState &)> Apply;
};

/// The full JNI operation inventory (clean ops first, then bug ops).
const std::vector<FuzzOp> &jniOps();

/// Lookup by stable name; nullptr when unknown.
const FuzzOp *findJniOp(const std::string &Name);

/// Edges every runAsNative sequence drives implicitly: the scenario
/// runner's native frame entry and return.
const std::vector<EdgeRef> &implicitJniEdges();

/// Defines the helper classes operations depend on (FuzzHelper with a
/// static method/field/final field, the fuzz/Base-fuzz/Widget inheritance
/// pair, and the dangling-reference supplier natives). Idempotent.
void prepareJniWorld(scenarios::ScenarioWorld &World);

/// Cross-checks every operation's edge claims against the resolved spec
/// models: indices in range, FnId membership in the trigger set with the
/// declared direction, clean ops never claiming error-target edges, bug
/// expectations naming the machine their error edge belongs to. Returns
/// human-readable complaints; empty means the table is consistent with
/// the specs it fuzzes.
std::vector<std::string>
validateJniOps(const std::vector<analysis::MachineModel> &Models);

} // namespace jinn::fuzz

#endif // JINN_FUZZ_OPS_H
