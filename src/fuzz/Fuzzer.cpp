//===- fuzz/Fuzzer.cpp - Differential fuzzing campaign driver ------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "fuzz/Minimizer.h"
#include "jinn/Machines.h"

#include <algorithm>

using namespace jinn;
using namespace jinn::fuzz;

std::vector<analysis::MachineModel> jinn::fuzz::jniMachineModels() {
  agent::MachineSet Machines;
  std::vector<analysis::MachineModel> Models;
  for (spec::MachineBase *Machine : Machines.all())
    Models.push_back(analysis::buildModel(Machine->spec()));
  return Models;
}

namespace {

bool machineSelected(const CampaignOptions &Opts, const std::string &Name) {
  if (Opts.Machines.empty())
    return true;
  return std::find(Opts.Machines.begin(), Opts.Machines.end(), Name) !=
         Opts.Machines.end();
}

/// Runs one JNI sequence; on a pass credits coverage, on a failure shrinks
/// it against the same oracle configuration and records the finding.
void runOneJni(const Sequence &Seq, const CampaignOptions &Opts,
               CampaignResult &Result) {
  ExecutorOptions ExecOpts;
  ExecOpts.RunXcheck = Opts.RunXcheck;
  ExecOpts.RunReplay = Opts.RunReplay;
  ExecOpts.Defect = Opts.Defect;

  ExecResult R = runJniSequence(Seq, ExecOpts);
  ++Result.SequencesRun;
  if (R.Pass) {
    coverJniSequence(R, Result.JniCov);
    return;
  }

  CampaignFinding Finding;
  Finding.Original = Seq;
  Finding.Failures = R.Failures;
  Finding.Minimized = minimizeSequence(
      Seq,
      [&ExecOpts, &Finding](const Sequence &Candidate) {
        ExecResult CR = runJniSequence(Candidate, ExecOpts);
        return !CR.Pass &&
               sharesFailureClass(CR.Failures, Finding.Failures);
      },
      &Finding.MinimizerTests);
  Result.Findings.push_back(std::move(Finding));
}

void runOnePy(const Sequence &Seq, CampaignResult &Result) {
  PyExecResult R = runPySequence(Seq);
  ++Result.SequencesRun;
  if (R.Pass) {
    coverPySequence(R, Result.PyCov);
    return;
  }
  CampaignFinding Finding;
  Finding.Original = Seq;
  Finding.Failures = R.Failures;
  Finding.Minimized = minimizeSequence(
      Seq,
      [](const Sequence &Candidate) {
        return !runPySequence(Candidate).Pass;
      },
      &Finding.MinimizerTests);
  Result.Findings.push_back(std::move(Finding));
}

} // namespace

CampaignResult jinn::fuzz::runCampaign(const CampaignOptions &Opts) {
  CampaignResult Result;
  std::vector<analysis::MachineModel> JniModels = jniMachineModels();
  Result.JniCov = Coverage(JniModels);

  Result.TableIssues = validateJniOps(JniModels);
  if (!Result.TableIssues.empty())
    return Result; // an inconsistent table makes every verdict meaningless

  Generator Gen(Opts.Seed);
  size_t Rounds = 1 + Opts.Iterations;

  for (const analysis::MachineModel &Model : JniModels) {
    if (!machineSelected(Opts, Model.Name))
      continue;
    for (size_t Round = 0; Round < Rounds; ++Round)
      for (size_t I = 0; I < Opts.CleanPerFocus; ++I)
        runOneJni(Gen.cleanJniSequence(Model.Name,
                                       Round * Opts.CleanPerFocus + I),
                  Opts, Result);
  }

  for (const FuzzOp &Op : jniOps()) {
    if (Op.Kind != OpKind::Bug || !machineSelected(Opts, Op.Focus))
      continue;
    for (size_t Round = 0; Round < Rounds; ++Round)
      runOneJni(Gen.bugJniSequence(Op.Name, Round), Opts, Result);
  }

  if (Opts.RunPython) {
    Result.PyCov = Coverage(analysis::buildPythonModels());
    size_t PyClean = 3 * Rounds;
    for (size_t I = 0; I < PyClean; ++I)
      runOnePy(cleanPySequence(Opts.Seed, I), Result);
    for (const std::string &BugName : pyBugOpNames())
      for (size_t Round = 0; Round < Rounds; ++Round)
        runOnePy(bugPySequence(Opts.Seed, BugName, Round), Result);
  }

  if (Opts.Sink) {
    Result.JniCov.emitCounters(*Opts.Sink, "fuzz.cov");
    if (Opts.RunPython)
      Result.PyCov.emitCounters(*Opts.Sink, "fuzz.pycov");
    Opts.Sink->setCounter("fuzz.sequences", Result.SequencesRun);
    Opts.Sink->setCounter("fuzz.findings", Result.Findings.size());
  }

  Result.Pass = Result.Findings.empty() && Result.TableIssues.empty();
  return Result;
}
