//===- fuzz/Minimizer.cpp - Delta-debugging sequence minimizer -----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Minimizer.h"

#include <algorithm>

using namespace jinn;
using namespace jinn::fuzz;

Sequence jinn::fuzz::minimizeSequence(const Sequence &Seq,
                                      const FailurePredicate &StillFails,
                                      size_t *TestsRun) {
  std::vector<std::string> Current = Seq.OpNames;
  size_t Tests = 0;
  auto Fails = [&](const std::vector<std::string> &Ops) {
    Sequence Candidate;
    Candidate.Domain = Seq.Domain;
    Candidate.OpNames = Ops;
    ++Tests;
    return StillFails(Candidate);
  };

  size_t Granularity = 2;
  while (Current.size() >= 2) {
    size_t Chunk = (Current.size() + Granularity - 1) / Granularity;
    bool Reduced = false;
    for (size_t Start = 0; Start < Current.size(); Start += Chunk) {
      std::vector<std::string> Complement;
      Complement.reserve(Current.size());
      for (size_t I = 0; I < Current.size(); ++I)
        if (I < Start || I >= Start + Chunk)
          Complement.push_back(Current[I]);
      if (Complement.empty())
        continue;
      if (Fails(Complement)) {
        Current = std::move(Complement);
        Granularity = std::max<size_t>(2, Granularity - 1);
        Reduced = true;
        break;
      }
    }
    if (!Reduced) {
      if (Granularity >= Current.size())
        break;
      Granularity = std::min(Current.size(), Granularity * 2);
    }
  }

  if (TestsRun)
    *TestsRun = Tests;
  Sequence Out;
  Out.Domain = Seq.Domain;
  Out.OpNames = std::move(Current);
  return Out;
}
