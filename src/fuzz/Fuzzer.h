//===- fuzz/Fuzzer.h - Differential fuzzing campaign driver --------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Orchestrates one fuzzing campaign: validate the op table against the
/// resolved spec models, generate clean and bug sequences per machine, run
/// each under the oracle stack (Executor/PyFuzz), shrink every failure to
/// a minimal reproducer (Minimizer), and account transition coverage
/// (Coverage). Two shapes share this driver:
///
///  - smoke: a fixed-seed, ~seconds budget — every bug op once, a few
///    clean walks per focus machine — run in ctest and gating CI through
///    tools/fuzz_gate.py on the emitted coverage JSON;
///  - long-run: `jinn-fuzz --seed N --iters M`, the same loop with M
///    extra randomized iterations per machine.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_FUZZ_FUZZER_H
#define JINN_FUZZ_FUZZER_H

#include "fuzz/Executor.h"
#include "fuzz/PyFuzz.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace jinn::fuzz {

struct CampaignOptions {
  uint64_t Seed = 1;
  /// Clean sequences per focus machine (smoke default keeps ctest fast).
  size_t CleanPerFocus = 2;
  /// Extra long-run iterations: each adds one clean walk per focus machine
  /// and one more instance of every bug path at a fresh stream index.
  size_t Iterations = 0;
  /// Restrict the JNI focus machines (empty = all fourteen). Bug ops whose
  /// Focus is filtered out are skipped with their machine.
  std::vector<std::string> Machines;
  bool RunXcheck = true;
  bool RunReplay = true;
  /// Also fuzz the Python/C domain (its own coverage table).
  bool RunPython = true;
  SeededDefect Defect = SeededDefect::None;
  /// When set, publishes "fuzz.*" counters here as the campaign runs.
  DiagnosticSink *Sink = nullptr;
};

/// One oracle disagreement, shrunk.
struct CampaignFinding {
  Sequence Original;
  Sequence Minimized;
  /// Failures from the original run (the finding's first description).
  std::vector<std::string> Failures;
  size_t MinimizerTests = 0;
};

struct CampaignResult {
  bool Pass = false;
  size_t SequencesRun = 0;
  std::vector<CampaignFinding> Findings;
  /// validateJniOps complaints; non-empty fails the campaign up front.
  std::vector<std::string> TableIssues;
  Coverage JniCov;
  Coverage PyCov; ///< meaningful when Options.RunPython
};

/// Models of the fourteen shipped JNI machines, in MachineSet order.
std::vector<analysis::MachineModel> jniMachineModels();

/// Runs one campaign; deterministic for fixed options.
CampaignResult runCampaign(const CampaignOptions &Opts = {});

} // namespace jinn::fuzz

#endif // JINN_FUZZ_FUZZER_H
