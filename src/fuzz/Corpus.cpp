//===- fuzz/Corpus.cpp - On-disk reproducer format (.jfz) ----------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"

#include "support/Format.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace jinn;
using namespace jinn::fuzz;

std::string jinn::fuzz::serializeSequence(const Sequence &Seq) {
  std::string Out;
  Out += "domain " + Seq.Domain + "\n";
  for (const std::string &Name : Seq.OpNames)
    Out += "op " + Name + "\n";
  const FuzzOp *Bug = Seq.Domain == "jni" ? Seq.bugOp() : nullptr;
  if (!Bug) {
    Out += "expect-clean\n";
    return Out;
  }
  Out += "expect-machine " + Bug->Expect.Machine + "\n";
  Out += "expect-message " + Bug->Expect.MessagePart + "\n";
  if (!Bug->Expect.Function.empty())
    Out += "expect-function " + Bug->Expect.Function + "\n";
  Out += formatString("expect-endofrun %d\n", Bug->Expect.EndOfRun ? 1 : 0);
  return Out;
}

bool jinn::fuzz::parseCorpusText(const std::string &Text, CorpusEntry &Out,
                                 std::string &Error) {
  Out.Seq = Sequence{};
  Out.ExpectClean = false;
  Out.Expect = Expected{};
  bool SawExpectation = false, SawEndOfRun = false;

  std::istringstream In(Text);
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    while (!Line.empty() && (Line.back() == '\r' || Line.back() == ' '))
      Line.pop_back();
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t Space = Line.find(' ');
    std::string Key = Line.substr(0, Space);
    std::string Value =
        Space == std::string::npos ? std::string() : Line.substr(Space + 1);
    if (Key == "domain") {
      if (Value != "jni" && Value != "py") {
        Error = formatString("line %zu: unknown domain \"%s\"", LineNo,
                             Value.c_str());
        return false;
      }
      Out.Seq.Domain = Value;
    } else if (Key == "op") {
      if (Out.Seq.Domain == "jni" && !findJniOp(Value)) {
        Error = formatString("line %zu: unknown op \"%s\"", LineNo,
                             Value.c_str());
        return false;
      }
      Out.Seq.OpNames.push_back(Value);
    } else if (Key == "expect-clean") {
      Out.ExpectClean = true;
      SawExpectation = true;
    } else if (Key == "expect-machine") {
      Out.Expect.Machine = Value;
      SawExpectation = true;
    } else if (Key == "expect-message") {
      Out.Expect.MessagePart = Value;
    } else if (Key == "expect-function") {
      Out.Expect.Function = Value;
    } else if (Key == "expect-endofrun") {
      Out.Expect.EndOfRun = Value == "1";
      SawEndOfRun = true;
    } else {
      Error = formatString("line %zu: unknown key \"%s\"", LineNo,
                           Key.c_str());
      return false;
    }
  }

  if (Out.Seq.OpNames.empty()) {
    Error = "no op lines";
    return false;
  }
  if (!SawExpectation) {
    Error = "missing expectation block (expect-clean or expect-machine)";
    return false;
  }

  // Drift check: the recorded expectation must match what the current op
  // table predicts for this op list.
  if (Out.Seq.Domain == "jni") {
    const FuzzOp *Bug = Out.Seq.bugOp();
    if (Out.ExpectClean) {
      if (Bug) {
        Error = formatString("expect-clean but sequence contains bug op %s",
                             Bug->Name);
        return false;
      }
    } else {
      if (!Bug) {
        Error = "expectation names a report but the sequence has no bug op";
        return false;
      }
      if (Bug->Expect.Machine != Out.Expect.Machine ||
          Bug->Expect.MessagePart != Out.Expect.MessagePart ||
          Bug->Expect.Function != Out.Expect.Function ||
          (SawEndOfRun && Bug->Expect.EndOfRun != Out.Expect.EndOfRun)) {
        Error = formatString(
            "recorded expectation drifted from op table for bug op %s",
            Bug->Name);
        return false;
      }
    }
  }
  return true;
}

std::vector<CorpusEntry>
jinn::fuzz::loadCorpusDir(const std::string &Dir,
                          std::vector<std::string> &Errors) {
  std::vector<CorpusEntry> Entries;
  std::error_code Ec;
  std::vector<std::filesystem::path> Files;
  for (const auto &DirEntry :
       std::filesystem::directory_iterator(Dir, Ec)) {
    if (DirEntry.path().extension() == ".jfz")
      Files.push_back(DirEntry.path());
  }
  if (Ec) {
    Errors.push_back("cannot read corpus dir " + Dir + ": " + Ec.message());
    return Entries;
  }
  std::sort(Files.begin(), Files.end());
  for (const std::filesystem::path &Path : Files) {
    std::ifstream In(Path);
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    CorpusEntry Entry;
    Entry.Name = Path.stem().string();
    std::string Error;
    if (!parseCorpusText(Buffer.str(), Entry, Error))
      Errors.push_back(Path.filename().string() + ": " + Error);
    else
      Entries.push_back(std::move(Entry));
  }
  return Entries;
}
