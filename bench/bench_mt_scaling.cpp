//===- bench/bench_mt_scaling.cpp - Multi-threaded throughput scaling ----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures aggregate native-transition throughput when the Table 3 "db"
/// and "jack" operation mixes run on 1, 2, 4, and 8 concurrently attached
/// OS threads, under three configurations: no checker, Jinn interposing
/// only, and full Jinn checking. The reproduced claim is structural:
/// per-thread JVM and machine state stays lock-free on its owner, so
/// throughput grows monotonically from 1 to 4 threads with checking off,
/// and the striped locks keep the checked configurations from collapsing.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

using namespace jinn;
using namespace jinn::scenarios;
using namespace jinn::workloads;

namespace {

unsigned ShardCount = agent::DefaultShardCount;

struct Measurement {
  double Throughput = 0;
  /// Per-machine "jinn.lock_acquires.<name>" counters (contention proxy),
  /// published by the agent at VM death.
  std::map<std::string, uint64_t> LockAcquires;
};

/// Transitions/second, aggregated over \p NumThreads workers.
Measurement throughputOnce(const WorkloadInfo &Info, CheckerKind Checker,
                           uint64_t Scale, unsigned NumThreads) {
  WorldConfig Config;
  Config.Checker = Checker;
  Config.JinnShardCount = ShardCount;
  ScenarioWorld World(Config);
  prepareWorkloadWorld(World);
  // Warm-up outside the timed region (ID caches, allocator, attach path).
  runWorkloadConcurrent(Info, World, Scale * 16, NumThreads);
  uint64_t Transitions = 0;
  double Seconds = bench::timeSeconds([&] {
    WorkloadRun Run = runWorkloadConcurrent(Info, World, Scale, NumThreads);
    Transitions = Run.NativeTransitions;
  });
  Measurement M;
  M.Throughput = static_cast<double>(Transitions) / Seconds;
  World.shutdown();
  for (const auto &[Name, Count] : World.Vm.diags().counters()) {
    const std::string Prefix = "jinn.lock_acquires.";
    if (Name.rfind(Prefix, 0) == 0)
      M.LockAcquires[Name.substr(Prefix.size())] = Count;
  }
  return M;
}

Measurement bestOf3(const WorkloadInfo &Info, CheckerKind Checker,
                    uint64_t Scale, unsigned NumThreads) {
  Measurement Best;
  for (int I = 0; I < 3; ++I) {
    Measurement M = throughputOnce(Info, Checker, Scale, NumThreads);
    if (M.Throughput > Best.Throughput)
      Best = std::move(M);
  }
  return Best;
}

const char *checkerName(CheckerKind Checker) {
  switch (Checker) {
  case CheckerKind::None:
    return "checking off";
  case CheckerKind::InterposeOnly:
    return "Jinn interposing";
  case CheckerKind::Jinn:
    return "Jinn checking";
  case CheckerKind::Xcheck:
    return "-Xcheck:jni";
  }
  return "?";
}

void printScalingTable(uint64_t Scale,
                       const std::vector<unsigned> &ThreadCounts,
                       bench::JsonResults &Json) {
  bench::printHeader(
      "Multi-threaded scaling - aggregate native-transition throughput\n"
      "(speedup over the first thread count of the same configuration)");
  const CheckerKind Checkers[] = {CheckerKind::None, CheckerKind::InterposeOnly,
                                  CheckerKind::Jinn};
  const WorkloadInfo &Info = *workloadByName("jack");

  std::printf("%-18s |", "configuration");
  for (unsigned NumThreads : ThreadCounts)
    std::printf(" %9u thr", NumThreads);
  std::printf("\n");
  bench::printRule();
  for (CheckerKind Checker : Checkers) {
    double Base = 0;
    unsigned BaseThreads = ThreadCounts.empty() ? 1 : ThreadCounts.front();
    std::printf("%-18s |", checkerName(Checker));
    for (unsigned NumThreads : ThreadCounts) {
      Measurement M = bestOf3(Info, Checker, Scale, NumThreads);
      double Tput = M.Throughput;
      if (Base == 0)
        Base = Tput;
      double Speedup = Base > 0 ? Tput / Base : 0.0;
      // Scaling efficiency: speedup per thread, relative to the first
      // measured thread count (1.0 = perfect linear scaling).
      double Efficiency =
          NumThreads ? Speedup * BaseThreads / NumThreads : 0.0;
      std::printf(" %8.2fx/s", Speedup);
      std::string Key = std::string(checkerName(Checker)) + "/" +
                        std::to_string(NumThreads) + "t";
      Json.add(Key, Tput, "transitions/s");
      Json.add(Key + " efficiency", Efficiency, "speedup/thread");
      if (Checker == CheckerKind::Jinn)
        for (const auto &[Machine, Count] : M.LockAcquires)
          Json.add(Key + " lock_acquires/" + Machine,
                   static_cast<double>(Count), "acquires");
    }
    std::printf("\n");
  }
  bench::printRule();
  std::printf("(workload \"%s\" scaled by 1/%llu on %u hardware thread(s), "
              "%u shadow-state shard(s); x/s = speedup relative to the "
              "same checker at the first thread count; speedup is bounded "
              "by the hardware thread count)\n",
              Info.Name, static_cast<unsigned long long>(Scale),
              std::thread::hardware_concurrency(), ShardCount);
}

void BM_ConcurrentWorkUnit(benchmark::State &State, CheckerKind Checker) {
  unsigned NumThreads = static_cast<unsigned>(State.range(0));
  WorldConfig Config;
  Config.Checker = Checker;
  ScenarioWorld World(Config);
  prepareWorkloadWorld(World);
  const WorkloadInfo &Info = *workloadByName("db");
  runWorkloadConcurrent(Info, World, 1024, NumThreads); // warm-up
  uint64_t Transitions = 0;
  for (auto _ : State) {
    WorkloadRun Run = runWorkloadConcurrent(Info, World, 256, NumThreads);
    benchmark::DoNotOptimize(Run.Checksum);
    Transitions += Run.NativeTransitions;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Transitions));
}

/// True when \p Arg is a bare positive integer (a thread count).
bool isThreadCountArg(const char *Arg) {
  if (!Arg[0])
    return false;
  for (const char *C = Arg; *C; ++C)
    if (!std::isdigit(static_cast<unsigned char>(*C)))
      return false;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Scale = 2048;
  if (const char *Env = std::getenv("JINN_BENCH_SCALE"))
    Scale = std::strtoull(Env, nullptr, 10);

  // Thread counts come from bare-integer argv entries, and the shadow
  // shard count from a `shards=N` entry (both consumed before
  // google-benchmark parses the rest), e.g. `bench_mt_scaling 1 3 6 shards=4`.
  std::vector<unsigned> ThreadCounts;
  int Out = 1;
  for (int In = 1; In < Argc; ++In) {
    if (isThreadCountArg(Argv[In])) {
      unsigned NumThreads =
          static_cast<unsigned>(std::strtoul(Argv[In], nullptr, 10));
      if (NumThreads)
        ThreadCounts.push_back(NumThreads);
      continue;
    }
    if (std::strncmp(Argv[In], "shards=", 7) == 0) {
      unsigned Shards =
          static_cast<unsigned>(std::strtoul(Argv[In] + 7, nullptr, 10));
      if (Shards)
        ShardCount = Shards;
      continue;
    }
    Argv[Out++] = Argv[In];
  }
  Argc = Out;
  if (ThreadCounts.empty())
    ThreadCounts = {1, 2, 4, 8};

  bench::JsonResults Json("mt_scaling");
  Json.add("scale_divisor", static_cast<double>(Scale ? Scale : 2048), "");
  Json.add("shard_count", static_cast<double>(ShardCount), "");
  // Recorded so the efficiency gate (tools/bench_gate.py) can tell a
  // substrate regression from a machine that simply lacks the cores: the
  // 8-thread floor is enforced only when 8 hardware threads exist.
  Json.add("hardware_threads",
           static_cast<double>(std::thread::hardware_concurrency()), "");
  printScalingTable(Scale ? Scale : 2048, ThreadCounts, Json);
  Json.writeFile();

  for (auto [Name, Checker] :
       {std::pair<const char *, CheckerKind>{"MtWorkUnit/production",
                                             CheckerKind::None},
        {"MtWorkUnit/jinn_interpose", CheckerKind::InterposeOnly},
        {"MtWorkUnit/jinn_full", CheckerKind::Jinn}}) {
    benchmark::internal::Benchmark *Bench =
        benchmark::RegisterBenchmark(Name, BM_ConcurrentWorkUnit, Checker);
    for (unsigned NumThreads : ThreadCounts)
      Bench->Arg(static_cast<int64_t>(NumThreads));
    Bench->UseRealTime();
  }
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  std::printf("\nPer-thread-count throughput (google-benchmark):\n");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
