//===- bench/bench_mt_scaling.cpp - Multi-threaded throughput scaling ----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures aggregate native-transition throughput when the Table 3 "db"
/// and "jack" operation mixes run on 1, 2, 4, and 8 concurrently attached
/// OS threads, under three configurations: no checker, Jinn interposing
/// only, and full Jinn checking. The reproduced claim is structural:
/// per-thread JVM and machine state stays lock-free on its owner, so
/// throughput grows monotonically from 1 to 4 threads with checking off,
/// and the striped locks keep the checked configurations from collapsing.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace jinn;
using namespace jinn::scenarios;
using namespace jinn::workloads;

namespace {

/// Transitions/second, aggregated over \p NumThreads workers.
double throughputOnce(const WorkloadInfo &Info, CheckerKind Checker,
                      uint64_t Scale, unsigned NumThreads) {
  WorldConfig Config;
  Config.Checker = Checker;
  ScenarioWorld World(Config);
  prepareWorkloadWorld(World);
  // Warm-up outside the timed region (ID caches, allocator, attach path).
  runWorkloadConcurrent(Info, World, Scale * 16, NumThreads);
  uint64_t Transitions = 0;
  double Seconds = bench::timeSeconds([&] {
    WorkloadRun Run = runWorkloadConcurrent(Info, World, Scale, NumThreads);
    Transitions = Run.NativeTransitions;
  });
  return static_cast<double>(Transitions) / Seconds;
}

double bestOf3(const WorkloadInfo &Info, CheckerKind Checker, uint64_t Scale,
               unsigned NumThreads) {
  double Best = 0;
  for (int I = 0; I < 3; ++I) {
    double T = throughputOnce(Info, Checker, Scale, NumThreads);
    if (T > Best)
      Best = T;
  }
  return Best;
}

const char *checkerName(CheckerKind Checker) {
  switch (Checker) {
  case CheckerKind::None:
    return "checking off";
  case CheckerKind::InterposeOnly:
    return "Jinn interposing";
  case CheckerKind::Jinn:
    return "Jinn checking";
  case CheckerKind::Xcheck:
    return "-Xcheck:jni";
  }
  return "?";
}

void printScalingTable(uint64_t Scale,
                       const std::vector<unsigned> &ThreadCounts,
                       bench::JsonResults &Json) {
  bench::printHeader(
      "Multi-threaded scaling - aggregate native-transition throughput\n"
      "(speedup over the first thread count of the same configuration)");
  const CheckerKind Checkers[] = {CheckerKind::None, CheckerKind::InterposeOnly,
                                  CheckerKind::Jinn};
  const WorkloadInfo &Info = *workloadByName("jack");

  std::printf("%-18s |", "configuration");
  for (unsigned NumThreads : ThreadCounts)
    std::printf(" %9u thr", NumThreads);
  std::printf("\n");
  bench::printRule();
  for (CheckerKind Checker : Checkers) {
    double Base = 0;
    std::printf("%-18s |", checkerName(Checker));
    for (unsigned NumThreads : ThreadCounts) {
      double Tput = bestOf3(Info, Checker, Scale, NumThreads);
      if (Base == 0)
        Base = Tput;
      std::printf(" %8.2fx/s", Base > 0 ? Tput / Base : 0.0);
      Json.add(std::string(checkerName(Checker)) + "/" +
                   std::to_string(NumThreads) + "t",
               Tput, "transitions/s");
    }
    std::printf("\n");
  }
  bench::printRule();
  std::printf("(workload \"%s\" scaled by 1/%llu on %u hardware thread(s); "
              "x/s = speedup relative to the same checker at the first "
              "thread count; speedup is bounded by the hardware thread "
              "count)\n",
              Info.Name, static_cast<unsigned long long>(Scale),
              std::thread::hardware_concurrency());
}

void BM_ConcurrentWorkUnit(benchmark::State &State, CheckerKind Checker) {
  unsigned NumThreads = static_cast<unsigned>(State.range(0));
  WorldConfig Config;
  Config.Checker = Checker;
  ScenarioWorld World(Config);
  prepareWorkloadWorld(World);
  const WorkloadInfo &Info = *workloadByName("db");
  runWorkloadConcurrent(Info, World, 1024, NumThreads); // warm-up
  uint64_t Transitions = 0;
  for (auto _ : State) {
    WorkloadRun Run = runWorkloadConcurrent(Info, World, 256, NumThreads);
    benchmark::DoNotOptimize(Run.Checksum);
    Transitions += Run.NativeTransitions;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Transitions));
}

/// True when \p Arg is a bare positive integer (a thread count).
bool isThreadCountArg(const char *Arg) {
  if (!Arg[0])
    return false;
  for (const char *C = Arg; *C; ++C)
    if (!std::isdigit(static_cast<unsigned char>(*C)))
      return false;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Scale = 2048;
  if (const char *Env = std::getenv("JINN_BENCH_SCALE"))
    Scale = std::strtoull(Env, nullptr, 10);

  // Thread counts come from bare-integer argv entries (consumed before
  // google-benchmark parses the rest), e.g. `bench_mt_scaling 1 3 6 12`.
  std::vector<unsigned> ThreadCounts;
  int Out = 1;
  for (int In = 1; In < Argc; ++In) {
    if (isThreadCountArg(Argv[In])) {
      unsigned NumThreads =
          static_cast<unsigned>(std::strtoul(Argv[In], nullptr, 10));
      if (NumThreads)
        ThreadCounts.push_back(NumThreads);
      continue;
    }
    Argv[Out++] = Argv[In];
  }
  Argc = Out;
  if (ThreadCounts.empty())
    ThreadCounts = {1, 2, 4, 8};

  bench::JsonResults Json("mt_scaling");
  Json.add("scale_divisor", static_cast<double>(Scale ? Scale : 2048), "");
  printScalingTable(Scale ? Scale : 2048, ThreadCounts, Json);
  Json.writeFile();

  for (auto [Name, Checker] :
       {std::pair<const char *, CheckerKind>{"MtWorkUnit/production",
                                             CheckerKind::None},
        {"MtWorkUnit/jinn_interpose", CheckerKind::InterposeOnly},
        {"MtWorkUnit/jinn_full", CheckerKind::Jinn}}) {
    benchmark::internal::Benchmark *Bench =
        benchmark::RegisterBenchmark(Name, BM_ConcurrentWorkUnit, Checker);
    for (unsigned NumThreads : ThreadCounts)
      Bench->Arg(static_cast<int64_t>(NumThreads));
    Bench->UseRealTime();
  }
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  std::printf("\nPer-thread-count throughput (google-benchmark):\n");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
