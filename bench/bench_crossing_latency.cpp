//===- bench/bench_crossing_latency.cpp - Per-crossing dispatch cost -----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the per-crossing cost of each dispatch tier on four
/// representative JNI call classes:
///
///   get_version       check-free query (pre-only machine coverage)
///   string_utf_length reference use (nullness, typing, local-ref use)
///   new_delete_local  allocation + free (local-ref lifecycle)
///   frame_push_pop    pushdown counters (frame nesting, capacity)
///
/// across five boundary treatments: bare (no dispatcher), interpose-only
/// (wrapped table, empty dispatcher), and Jinn under dense, sparse, and
/// fused dispatch. The headline result is ns/crossing per (op, tier) —
/// the fused tier must sit between interpose-only and sparse, i.e.
/// fused < sparse < dense on every op class.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "scenarios/Scenarios.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace jinn;
using namespace jinn::scenarios;

namespace {

struct TierSpec {
  const char *Name;
  CheckerKind Checker;
  bool Sparse;
  bool Fused;
};

const TierSpec Tiers[] = {
    {"bare", CheckerKind::None, true, false},
    {"interpose", CheckerKind::InterposeOnly, true, false},
    {"jinn_dense", CheckerKind::Jinn, false, false},
    {"jinn_sparse", CheckerKind::Jinn, true, false},
    {"jinn_fused", CheckerKind::Jinn, true, true},
};

struct OpClass {
  const char *Name;
  uint64_t CrossingsPerIter;
  void (*Run)(JNIEnv *, uint64_t Iters);
};

void runGetVersion(JNIEnv *Env, uint64_t Iters) {
  const JNINativeInterface_ *Fns = Env->functions;
  for (uint64_t I = 0; I < Iters; ++I)
    Fns->GetVersion(Env);
}

void runStringUtfLength(JNIEnv *Env, uint64_t Iters) {
  const JNINativeInterface_ *Fns = Env->functions;
  jstring S = Fns->NewStringUTF(Env, "crossing");
  for (uint64_t I = 0; I < Iters; ++I)
    Fns->GetStringUTFLength(Env, S);
  Fns->DeleteLocalRef(Env, S);
}

void runNewDeleteLocal(JNIEnv *Env, uint64_t Iters) {
  const JNINativeInterface_ *Fns = Env->functions;
  for (uint64_t I = 0; I < Iters; ++I) {
    jstring S = Fns->NewStringUTF(Env, "crossing");
    Fns->DeleteLocalRef(Env, S);
  }
}

void runFramePushPop(JNIEnv *Env, uint64_t Iters) {
  const JNINativeInterface_ *Fns = Env->functions;
  for (uint64_t I = 0; I < Iters; ++I) {
    Fns->PushLocalFrame(Env, 8);
    Fns->PopLocalFrame(Env, nullptr);
  }
}

const OpClass Ops[] = {
    {"get_version", 1, runGetVersion},
    {"string_utf_length", 1, runStringUtfLength},
    {"new_delete_local", 2, runNewDeleteLocal},
    {"frame_push_pop", 2, runFramePushPop},
};

WorldConfig tierConfig(const TierSpec &Tier) {
  WorldConfig Config;
  Config.Checker = Tier.Checker;
  Config.JinnSparseDispatch = Tier.Sparse;
  Config.JinnFusedDispatch = Tier.Fused;
  return Config;
}

/// Median-of-5 ns/crossing for one (tier, op) pair, measured inside a
/// native frame so every call crosses the interposed boundary exactly the
/// way client code does.
double measureNs(ScenarioWorld &World, const OpClass &Op, uint64_t Iters) {
  double Seconds = 0;
  World.runAsNative("BenchCrossing", [&](JNIEnv *Env) {
    Op.Run(Env, Iters / 4 + 1); // warm-up: ID caches, TLS, allocator
    Seconds = bench::medianSeconds([&] { Op.Run(Env, Iters); }, 5);
  });
  return Seconds * 1e9 / static_cast<double>(Iters * Op.CrossingsPerIter);
}

} // namespace

int main(int Argc, char **Argv) {
  (void)Argc;
  (void)Argv;
  uint64_t Scale = 2048;
  if (const char *Env = std::getenv("JINN_BENCH_SCALE"))
    Scale = std::strtoull(Env, nullptr, 10);
  if (!Scale)
    Scale = 2048;
  uint64_t Iters = 64ull * 1024 * 1024 / Scale;
  if (Iters < 512)
    Iters = 512;

  bench::JsonResults Json("crossing_latency");
  bench::printHeader("Per-crossing dispatch latency (ns/crossing, "
                     "median of 5; " +
                     std::to_string(Iters) + " iterations per sample)");
  std::printf("%-18s", "op class");
  for (const TierSpec &Tier : Tiers)
    std::printf(" %12s", Tier.Name);
  std::printf("\n");
  bench::printRule();

  // Ns[op][tier]
  double Ns[sizeof(Ops) / sizeof(Ops[0])][sizeof(Tiers) / sizeof(Tiers[0])];
  bool FusedEngaged = true;
  for (size_t T = 0; T < sizeof(Tiers) / sizeof(Tiers[0]); ++T) {
    const TierSpec &Tier = Tiers[T];
    ScenarioWorld World(tierConfig(Tier));
    if (Tier.Fused && (!World.Jinn || !World.Jinn->fusedInstalled())) {
      std::fprintf(stderr, "bench_crossing_latency: fused tier refused: %s\n",
                   World.Jinn ? World.Jinn->fusedRefusal().c_str()
                              : "no agent");
      FusedEngaged = false;
    }
    for (size_t O = 0; O < sizeof(Ops) / sizeof(Ops[0]); ++O)
      Ns[O][T] = measureNs(World, Ops[O], Iters);
    World.shutdown();
  }
  if (!FusedEngaged)
    return 1;

  for (size_t O = 0; O < sizeof(Ops) / sizeof(Ops[0]); ++O) {
    std::printf("%-18s", Ops[O].Name);
    for (size_t T = 0; T < sizeof(Tiers) / sizeof(Tiers[0]); ++T) {
      std::printf(" %9.1f ns", Ns[O][T]);
      // Absolute ns entries are informational only: single-tier wall
      // times swing several-fold with host load on small runners, so the
      // regression gate works on the intra-run ratio entries below, where
      // the host-speed factor cancels.
      Json.add(std::string(Ops[O].Name) + "/" + Tiers[T].Name + "/ns",
               Ns[O][T], "ns");
    }
    std::printf("\n");
  }
  bench::printRule();

  // Geomean per tier over the op classes, plus the headline ratios.
  double Gm[sizeof(Tiers) / sizeof(Tiers[0])];
  for (size_t T = 0; T < sizeof(Tiers) / sizeof(Tiers[0]); ++T) {
    double Acc = 0;
    for (size_t O = 0; O < sizeof(Ops) / sizeof(Ops[0]); ++O)
      Acc += std::log(Ns[O][T]);
    Gm[T] = std::exp(Acc / (sizeof(Ops) / sizeof(Ops[0])));
    Json.add(std::string("geomean/") + Tiers[T].Name + "/ns", Gm[T], "ns");
  }
  std::printf("%-18s", "geomean");
  for (size_t T = 0; T < sizeof(Tiers) / sizeof(Tiers[0]); ++T)
    std::printf(" %9.1f ns", Gm[T]);
  std::printf("\n");

  double FusedVsSparse = Gm[4] / Gm[3];
  double FusedVsDense = Gm[4] / Gm[2];
  Json.add("ratio/fused_vs_sparse", FusedVsSparse, "x");
  Json.add("ratio/fused_vs_dense", FusedVsDense, "x");
  std::printf("\nfused/sparse = %.3fx, fused/dense = %.3fx "
              "(lower is better; expect fused < sparse < dense)\n",
              FusedVsSparse, FusedVsDense);
  if (!(Gm[4] < Gm[3] && Gm[3] < Gm[2]))
    std::printf("NOTE: tier ordering not strictly monotone in this run "
                "(timing noise at scale 1/%llu)\n",
                static_cast<unsigned long long>(Scale));

  Json.writeFile();
  return 0;
}
