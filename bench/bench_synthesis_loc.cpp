//===- bench/bench_synthesis_loc.cpp - Spec-vs-generated size (Figure 5) -===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's annotation-burden result: "whereas the generated Jinn code
/// is 22,000+ lines, we wrote only 1,400 lines of state machine and
/// mapping code." This binary counts the handwritten machine/mapping
/// sources of this reproduction, runs the code emitter over the eleven
/// machine specifications (the same cross product Algorithm 1 walks), and
/// reports both sizes and their ratio.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "jinn/JinnAgent.h"
#include "scenarios/Scenarios.h"
#include "synth/Emitter.h"

#include <cstdio>

using namespace jinn;

int main() {
  bench::printHeader("Synthesis size - handwritten specification vs. "
                     "generated checker (paper §1, Figure 5)");

  // The handwritten machine + mapping code of this reproduction.
  std::vector<std::string> SpecFiles =
      synth::sourceFilesUnder(JINN_SOURCE_DIR "/src/jinn/machines");
  SpecFiles.push_back(JINN_SOURCE_DIR "/src/jinn/Machines.h");
  size_t SpecLines = synth::countSourceLines(SpecFiles);

  // Instantiate the machines and emit the synthesized wrapper source.
  scenarios::WorldConfig Config;
  Config.Checker = scenarios::CheckerKind::Jinn;
  scenarios::ScenarioWorld World(Config);
  std::vector<const spec::MachineBase *> Machines;
  for (spec::MachineBase *Machine : World.Jinn->machines().all())
    Machines.push_back(Machine);
  synth::CodeEmitter Emitter(std::move(Machines));
  std::string Generated = Emitter.emit();
  const synth::EmitStats &Stats = Emitter.stats();

  std::printf("handwritten state machine and mapping code: %zu "
              "non-comment lines (%zu files)\n",
              SpecLines, SpecFiles.size());
  std::printf("synthesized wrapper source:                 %zu lines "
              "(%zu wrappers, %zu check functions)\n",
              Stats.TotalLines, Stats.WrapperFunctions,
              Stats.CheckFunctions);
  std::printf("expansion ratio:                            %.1fx\n",
              SpecLines ? static_cast<double>(Stats.TotalLines) /
                              static_cast<double>(SpecLines)
                        : 0.0);
  std::printf("paper:                                      1,400 lines -> "
              "22,000+ lines (≈15.7x)\n\n");

  bench::JsonResults Json("synthesis_loc");
  Json.add("spec_lines", static_cast<double>(SpecLines), "lines");
  Json.add("generated_lines", static_cast<double>(Stats.TotalLines), "lines");
  Json.add("wrappers", static_cast<double>(Stats.WrapperFunctions),
           "functions");
  Json.add("check_functions", static_cast<double>(Stats.CheckFunctions),
           "functions");
  Json.add("expansion_ratio",
           SpecLines ? static_cast<double>(Stats.TotalLines) /
                           static_cast<double>(SpecLines)
                     : 0.0,
           "x");
  Json.writeFile();

  // A taste of the generated code.
  std::printf("first lines of the generated source:\n");
  bench::printRule();
  size_t Printed = 0, Pos = 0;
  while (Printed < 30 && Pos < Generated.size()) {
    size_t End = Generated.find('\n', Pos);
    if (End == std::string::npos)
      break;
    std::printf("%s\n", Generated.substr(Pos, End - Pos).c_str());
    Pos = End + 1;
    ++Printed;
  }
  bench::printRule();
  return 0;
}
