//===- bench/bench_fig10_localrefs.cpp - Regenerates paper Figure 10 -----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 10: the time series of acquired local references in the
/// Subversion status walk, original (overflowing the 16-reference pool)
/// versus fixed (DeleteLocalRef after each entry). Rendered as an ASCII
/// chart; Jinn's overflow report fires where the original crosses the
/// capacity line.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "scenarios/CaseStudies.h"

#include <cstdio>

using namespace jinn;
using namespace jinn::scenarios;

namespace {

void plot(const char *Title, const std::vector<size_t> &Series,
          size_t Capacity) {
  std::printf("\n%s\n", Title);
  size_t Max = Capacity;
  for (size_t V : Series)
    Max = std::max(Max, V);
  for (size_t Level = Max; Level > 0; --Level) {
    std::printf("%3zu %c ", Level, Level == Capacity ? '+' : '|');
    for (size_t V : Series)
      std::fputc(V >= Level ? '#' : (Level == Capacity ? '-' : ' '), stdout);
    std::fputc('\n', stdout);
  }
  std::printf("      ");
  for (size_t I = 0; I < Series.size(); ++I)
    std::fputc('=', stdout);
  std::printf("\n      (one column per repository entry; '+' row = the "
              "16-reference capacity)\n");
}

} // namespace

int main() {
  bench::printHeader(
      "Figure 10 - live local references in the Subversion status walk\n"
      "(original overflows the 16-slot pool; the fix bounds it, paper "
      "§6.4.1)");

  std::vector<size_t> Buggy = subversionLocalRefSeries(/*Fixed=*/false, 32);
  std::vector<size_t> Fixed = subversionLocalRefSeries(/*Fixed=*/true, 32);

  plot("original program (missing DeleteLocalRef):", Buggy, 16);
  plot("fixed program (DeleteLocalRef after each entry):", Fixed, 16);

  size_t PeakBuggy = 0, PeakFixed = 0;
  for (size_t V : Buggy)
    PeakBuggy = std::max(PeakBuggy, V);
  for (size_t V : Fixed)
    PeakFixed = std::max(PeakFixed, V);
  std::printf("\npeak live local references: original %zu (Jinn reports "
              "overflow past 16),\n                            fixed    %zu "
              "(never exceeds 8, as in the paper)\n",
              PeakBuggy, PeakFixed);

  bench::JsonResults Json("fig10_localrefs");
  Json.add("peak_original", static_cast<double>(PeakBuggy), "refs");
  Json.add("peak_fixed", static_cast<double>(PeakFixed), "refs");
  Json.add("capacity", 16.0, "refs");
  Json.writeFile();
  return 0;
}
