//===- bench/bench_table3_overhead.cpp - Regenerates paper Table 3 -------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures, for each of the 19 SPECjvm98/DaCapo stand-in workloads, the
/// wall-clock time under four configurations and prints Table 3:
/// normalized runtime of -Xcheck:jni ("Runtime checking"), Jinn with empty
/// checks ("Interposing"), and full Jinn ("Checking"), relative to the
/// production run. Absolute times differ from the paper's testbed; the
/// shape (checking >= interposing >= 1, modest geomeans, interposition
/// dominating Jinn's cost) is the reproduced result.
///
/// Additionally registers google-benchmark microbenchmarks for the
/// per-call interposition cost (run with --benchmark_filter=... for
/// details).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace jinn;
using namespace jinn::scenarios;
using namespace jinn::workloads;

namespace {

double runOnce(const WorkloadInfo &Info, CheckerKind Checker,
               uint64_t Scale) {
  WorldConfig Config;
  Config.Checker = Checker;
  // JINN_BENCH_FUSED=0 pins the Jinn column to the dynamic tier, for
  // before/after comparisons of the fused dispatch on the same host.
  if (const char *Fused = std::getenv("JINN_BENCH_FUSED"))
    Config.JinnFusedDispatch = std::strcmp(Fused, "0") != 0;
  ScenarioWorld World(Config);
  prepareWorkloadWorld(World);
  // Warm-up outside the timed region (ID caches, allocator).
  runWorkload(Info, World, Scale * 16);
  return bench::timeSeconds([&] { runWorkload(Info, World, Scale); });
}

double median3(const WorkloadInfo &Info, CheckerKind Checker,
               uint64_t Scale) {
  double A = runOnce(Info, Checker, Scale);
  double B = runOnce(Info, Checker, Scale);
  double C = runOnce(Info, Checker, Scale);
  double Lo = std::min({A, B, C}), Hi = std::max({A, B, C});
  return A + B + C - Lo - Hi;
}

void printPaperTable(uint64_t Scale, bench::JsonResults &Json) {
  bench::printHeader(
      "Table 3 - Jinn performance on SPECjvm98/DaCapo stand-ins\n"
      "(normalized execution time; production run = 1.00; paper values in "
      "parentheses)");
  std::printf("%-11s %12s | %-16s %-16s %-16s\n", "benchmark", "transitions",
              "runtime check", "Jinn interposing", "Jinn checking");
  bench::printRule();

  double GeoCheck = 0, GeoInter = 0, GeoJinn = 0;
  size_t N = 0;
  for (const WorkloadInfo &Info : allWorkloads()) {
    double Base = median3(Info, CheckerKind::None, Scale);
    double Xcheck = median3(Info, CheckerKind::Xcheck, Scale) / Base;
    double Inter = median3(Info, CheckerKind::InterposeOnly, Scale) / Base;
    double Full = median3(Info, CheckerKind::Jinn, Scale) / Base;
    std::printf("%-11s %12llu | %5.2f (%4.2f)     %5.2f (%4.2f)     %5.2f "
                "(%4.2f)\n",
                Info.Name,
                static_cast<unsigned long long>(Info.PaperTransitions),
                Xcheck, Info.PaperRuntimeChecking, Inter,
                Info.PaperJinnInterposing, Full, Info.PaperJinnChecking);
    Json.add(std::string(Info.Name) + "/xcheck", Xcheck, "x");
    Json.add(std::string(Info.Name) + "/interpose", Inter, "x");
    Json.add(std::string(Info.Name) + "/jinn", Full, "x");
    GeoCheck += std::log(Xcheck);
    GeoInter += std::log(Inter);
    GeoJinn += std::log(Full);
    ++N;
  }
  bench::printRule();
  double GmCheck = std::exp(GeoCheck / static_cast<double>(N));
  double GmInter = std::exp(GeoInter / static_cast<double>(N));
  double GmJinn = std::exp(GeoJinn / static_cast<double>(N));
  std::printf("%-11s %12s | %5.2f (1.01)     %5.2f (1.10)     %5.2f "
              "(1.14)   GeoMean\n",
              "GeoMean", "", GmCheck, GmInter, GmJinn);
  Json.add("geomean/xcheck", GmCheck, "x");
  Json.add("geomean/interpose", GmInter, "x");
  Json.add("geomean/jinn", GmJinn, "x");
  std::printf("\n(transition counts are the paper's measured values, "
              "replayed scaled by 1/%llu)\n",
              static_cast<unsigned long long>(Scale));
}

//===----------------------------------------------------------------------===
// google-benchmark microbenchmarks: per-call interposition cost
//===----------------------------------------------------------------------===

void BM_WorkUnit(benchmark::State &State, CheckerKind Checker) {
  WorldConfig Config;
  Config.Checker = Checker;
  ScenarioWorld World(Config);
  prepareWorkloadWorld(World);
  const WorkloadInfo &Info = *workloadByName("db");
  runWorkload(Info, World, 1024); // warm-up
  for (auto _ : State) {
    WorkloadRun Run = runWorkload(Info, World, 256);
    benchmark::DoNotOptimize(Run.Checksum);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Info.PaperTransitions / 256));
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Scale = 2048;
  if (const char *Env = std::getenv("JINN_BENCH_SCALE"))
    Scale = std::strtoull(Env, nullptr, 10);

  bench::JsonResults Json("table3_overhead");
  printPaperTable(Scale ? Scale : 2048, Json);
  Json.writeFile();

  benchmark::RegisterBenchmark("WorkUnit/production", BM_WorkUnit,
                               CheckerKind::None);
  benchmark::RegisterBenchmark("WorkUnit/xcheck", BM_WorkUnit,
                               CheckerKind::Xcheck);
  benchmark::RegisterBenchmark("WorkUnit/jinn_interpose", BM_WorkUnit,
                               CheckerKind::InterposeOnly);
  benchmark::RegisterBenchmark("WorkUnit/jinn_full", BM_WorkUnit,
                               CheckerKind::Jinn);
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  std::printf("\nPer-call costs (google-benchmark):\n");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
