//===- bench/bench_table2_constraints.cpp - Regenerates paper Table 2 ----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recomputes the classification and count of JNI constraints from the
/// function-trait registry and prints it next to the paper's Table 2,
/// plus the synthesis statistics (how many instrumentation points
/// Algorithm 1 produced for the eleven machines).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "jinn/Census.h"
#include "jinn/JinnAgent.h"
#include "jni/JniTraits.h"
#include "scenarios/Scenarios.h"

#include <cstdio>

using namespace jinn;

int main() {
  bench::printHeader("Table 2 - Classification and number of JNI "
                     "constraints (measured vs. paper)");
  std::printf("%-12s %-34s %9s %7s\n", "class", "constraint", "measured",
              "paper");
  bench::printRule();
  bench::JsonResults Json("table2_constraints");
  std::string LastClass;
  for (const agent::CensusRow &Row : agent::computeConstraintCensus()) {
    std::printf("%-12s %-34s %9zu %7zu   %s\n",
                Row.ConstraintClass == LastClass
                    ? ""
                    : Row.ConstraintClass.c_str(),
                Row.Name.c_str(), Row.Count, Row.PaperCount,
                Row.Description.c_str());
    Json.add(Row.ConstraintClass + "/" + Row.Name,
             static_cast<double>(Row.Count), "constraints");
    LastClass = Row.ConstraintClass;
  }
  bench::printRule();
  std::printf("JNI functions in the registry: %zu (paper: 229)\n",
              jni::NumJniFunctions);

  // Synthesis statistics for the same machines (Algorithm 1 output).
  scenarios::WorldConfig Config;
  Config.Checker = scenarios::CheckerKind::Jinn;
  scenarios::ScenarioWorld World(Config);
  const synth::SynthesisStats &Stats = World.Jinn->stats();
  std::printf("\nAlgorithm 1 synthesis: %zu machines, %zu state "
              "transitions,\n  %zu pre-call checks + %zu post-return checks "
              "on JNI functions,\n  %zu native-entry + %zu native-exit "
              "actions = %zu instrumentation points\n",
              Stats.MachineCount, Stats.StateTransitionCount,
              Stats.JniPreHooks, Stats.JniPostHooks,
              Stats.NativeEntryActions, Stats.NativeExitActions,
              Stats.instrumentationPoints());

  Json.add("jni_functions", static_cast<double>(jni::NumJniFunctions),
           "functions");
  Json.add("machines", static_cast<double>(Stats.MachineCount), "machines");
  Json.add("instrumentation_points",
           static_cast<double>(Stats.instrumentationPoints()), "points");
  Json.writeFile();
  return 0;
}
