//===- bench/bench_trace_modes.cpp - Trace-mode overhead comparison ------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the boundary treatments of the Jinn agent across the Table 3
/// workloads: inline-check (the paper's deployment, fused dispatch),
/// inline-dynamic (the same checks through the dynamic hook walk — the
/// recorder-compatible tier), record-only (recorder at the boundary,
/// checking deferred to offline replay), and record+replay (both).
/// Reports wall-clock normalized to the production run and the absolute
/// per-crossing overhead each mode adds. The headline claim: record-only
/// adds measurably less per-crossing overhead than *dynamic* inline
/// checking, because a snapshot write is cheaper than walking eleven
/// machines' hook lists — that is what makes record-then-replay-offline
/// a useful deployment. The recorder's all-function hooks demote the
/// dispatcher off the fused tier, so inline-dynamic is the apples-to-
/// apples comparison; fused inline-check can legitimately undercut
/// record-only. Also measures multi-threaded runs and offline replay
/// throughput.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "trace/Replay.h"
#include "trace/TraceFile.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>

using namespace jinn;
using namespace jinn::scenarios;
using namespace jinn::workloads;

namespace {

struct ModeSpec {
  const char *Name;
  bool Jinn;             ///< false = production run (no agent)
  agent::TraceMode Mode; ///< meaningful when Jinn
  bool Fused;            ///< allow the fused dispatch tier
};

const ModeSpec Modes[] = {
    {"production", false, agent::TraceMode::InlineCheck, true},
    {"inline-check", true, agent::TraceMode::InlineCheck, true},
    {"inline-dynamic", true, agent::TraceMode::InlineCheck, false},
    {"record-only", true, agent::TraceMode::RecordOnly, true},
    {"record+replay", true, agent::TraceMode::RecordAndReplay, true},
};

WorldConfig configFor(const ModeSpec &Mode) {
  WorldConfig Config;
  if (Mode.Jinn) {
    Config.Checker = CheckerKind::Jinn;
    Config.JinnMode = Mode.Mode;
    Config.JinnFusedDispatch = Mode.Fused;
    // Bounded recording: long workloads would otherwise hold the whole
    // event stream (hundreds of bytes per crossing) in memory. The ring
    // cost per event is what we are measuring; dropped history is fine.
    Config.JinnRecorder.MaxChunksPerThread = 8;
  }
  return Config;
}

struct Timing {
  double Seconds = 0;
  uint64_t Crossings = 0; ///< JNI calls + native-method invocations
};

constexpr size_t NumModes = sizeof(Modes) / sizeof(Modes[0]);

/// Times all modes over one workload with interleaved rounds: each round
/// times every mode back-to-back, and each mode keeps its fastest round.
/// Interleaving exposes every mode to the same machine-noise phases, and
/// min-of-rounds discards scheduler spikes — both essential when one run
/// is sub-millisecond. One timed sample is a block of consecutive runs,
/// which measures the sustained cost: recording is buffer-heavy, and a
/// single cold run after three other modes trampled the cache would
/// charge the eviction bill to the recorder. Each mode's world is warmed
/// at the measured scale first so the bounded recorder reaches its
/// allocation-free steady state before any timing.
std::array<Timing, NumModes> measureWorkload(const WorkloadInfo &Info,
                                             uint64_t Scale) {
  constexpr int Rounds = 5;
  constexpr int BlockRuns = 4;
  std::array<std::unique_ptr<ScenarioWorld>, NumModes> Worlds;
  std::array<Timing, NumModes> Out;
  for (size_t M = 0; M < NumModes; ++M) {
    Worlds[M] = std::make_unique<ScenarioWorld>(configFor(Modes[M]));
    prepareWorkloadWorld(*Worlds[M]);
    runWorkload(Info, *Worlds[M], Scale); // warm-up
    Out[M].Seconds = 1e300;
  }
  for (int R = 0; R < Rounds; ++R)
    for (size_t M = 0; M < NumModes; ++M) {
      uint64_t Crossings = 0;
      double Seconds = bench::timeSeconds([&] {
        for (int B = 0; B < BlockRuns; ++B) {
          WorkloadRun Run = runWorkload(Info, *Worlds[M], Scale);
          Crossings += Run.JniCalls + Run.NativeTransitions;
        }
      });
      Out[M].Crossings = Crossings;
      Out[M].Seconds = std::min(Out[M].Seconds, Seconds);
    }
  return Out;
}

void printModesTable(uint64_t Scale, bench::JsonResults &Json,
                     bool &RecordCheaper) {
  bench::printHeader(
      "Trace modes - normalized runtime and per-crossing overhead\n"
      "(production run = 1.00; overhead in ns per boundary crossing)");
  std::printf("%-11s | %7s %7s %7s %7s | %9s %9s %9s %9s\n", "benchmark",
              "inline", "in-dyn", "record", "rec+rep", "inline ns",
              "indyn ns", "record ns", "recrep ns");
  bench::printRule();

  double SumInlineNs = 0, SumInDynNs = 0, SumRecordNs = 0, SumRecRepNs = 0;
  size_t N = 0;
  for (const WorkloadInfo &Info : allWorkloads()) {
    std::array<Timing, NumModes> T = measureWorkload(Info, Scale);
    const Timing &Base = T[0], &Inline = T[1], &InDyn = T[2], &Record = T[3],
                 &RecRep = T[4];
    double Crossings = static_cast<double>(
        Base.Crossings ? Base.Crossings : 1);
    double InlineNs = (Inline.Seconds - Base.Seconds) / Crossings * 1e9;
    double InDynNs = (InDyn.Seconds - Base.Seconds) / Crossings * 1e9;
    double RecordNs = (Record.Seconds - Base.Seconds) / Crossings * 1e9;
    double RecRepNs = (RecRep.Seconds - Base.Seconds) / Crossings * 1e9;
    std::printf("%-11s | %6.2fx %6.2fx %6.2fx %6.2fx | %9.1f %9.1f %9.1f "
                "%9.1f\n",
                Info.Name, Inline.Seconds / Base.Seconds,
                InDyn.Seconds / Base.Seconds, Record.Seconds / Base.Seconds,
                RecRep.Seconds / Base.Seconds, InlineNs, InDynNs, RecordNs,
                RecRepNs);
    Json.add(std::string(Info.Name) + "/inline_ns_per_crossing", InlineNs,
             "ns");
    Json.add(std::string(Info.Name) + "/inline_dynamic_ns_per_crossing",
             InDynNs, "ns");
    Json.add(std::string(Info.Name) + "/record_ns_per_crossing", RecordNs,
             "ns");
    Json.add(std::string(Info.Name) + "/recrep_ns_per_crossing", RecRepNs,
             "ns");
    SumInlineNs += InlineNs;
    SumInDynNs += InDynNs;
    SumRecordNs += RecordNs;
    SumRecRepNs += RecRepNs;
    ++N;
  }
  bench::printRule();
  double MeanInline = SumInlineNs / static_cast<double>(N);
  double MeanInDyn = SumInDynNs / static_cast<double>(N);
  double MeanRecord = SumRecordNs / static_cast<double>(N);
  double MeanRecRep = SumRecRepNs / static_cast<double>(N);
  std::printf("%-11s | %7s %7s %7s %7s | %9.1f %9.1f %9.1f %9.1f   mean\n",
              "mean", "", "", "", "", MeanInline, MeanInDyn, MeanRecord,
              MeanRecRep);
  // The recorder's all-function hooks keep record-only off the fused
  // tier, so the dynamic inline column is the comparison that justifies
  // record-then-replay-offline. Fused inline-check outrunning record-only
  // is expected, not a failure.
  RecordCheaper = MeanRecord < MeanInDyn;
  std::printf("\nacceptance: record-only %.1f ns/crossing %s inline-dynamic "
              "%.1f ns/crossing : %s\n",
              MeanRecord, RecordCheaper ? "<" : ">=", MeanInDyn,
              RecordCheaper ? "PASS" : "FAIL");
  if (MeanInline < MeanRecord)
    std::printf("(fused inline-check at %.1f ns/crossing undercuts "
                "record-only — fused dispatch at work)\n",
                MeanInline);
  Json.add("mean_inline_ns_per_crossing", MeanInline, "ns");
  Json.add("mean_inline_dynamic_ns_per_crossing", MeanInDyn, "ns");
  Json.add("mean_record_ns_per_crossing", MeanRecord, "ns");
  Json.add("mean_recrep_ns_per_crossing", MeanRecRep, "ns");
  Json.add("record_only_cheaper_than_inline",
           std::string(RecordCheaper ? "true" : "false"));
}

void printConcurrentTable(uint64_t Scale, bench::JsonResults &Json) {
  bench::printHeader("Trace modes under the concurrent workload driver\n"
                     "(workload \"jack\", aggregate wall-clock, median of 3)");
  const WorkloadInfo &Info = *workloadByName("jack");
  std::printf("%-14s |", "mode");
  for (unsigned NumThreads : {1u, 2u, 4u})
    std::printf(" %8u thr", NumThreads);
  std::printf("\n");
  bench::printRule();
  // Same interleaved min-of-rounds discipline as the single-thread table.
  const unsigned ThreadCounts[] = {1, 2, 4};
  double Best[NumModes][3];
  for (unsigned C = 0; C < 3; ++C) {
    std::array<std::unique_ptr<ScenarioWorld>, NumModes> Worlds;
    for (size_t M = 0; M < NumModes; ++M) {
      Worlds[M] = std::make_unique<ScenarioWorld>(configFor(Modes[M]));
      prepareWorkloadWorld(*Worlds[M]);
      runWorkloadConcurrent(Info, *Worlds[M], Scale, ThreadCounts[C]);
      Best[M][C] = 1e300;
    }
    for (int R = 0; R < 3; ++R)
      for (size_t M = 0; M < NumModes; ++M)
        Best[M][C] = std::min(Best[M][C], bench::timeSeconds([&] {
          runWorkloadConcurrent(Info, *Worlds[M], Scale, ThreadCounts[C]);
        }));
  }
  for (size_t M = 0; M < NumModes; ++M) {
    std::printf("%-14s |", Modes[M].Name);
    for (unsigned C = 0; C < 3; ++C) {
      std::printf(" %9.2fms", Best[M][C] * 1e3);
      Json.add(std::string("mt/") + Modes[M].Name + "/" +
                   std::to_string(ThreadCounts[C]) + "t",
               Best[M][C] * 1e3, "ms");
    }
    std::printf("\n");
  }
}

void printReplayThroughput(uint64_t Scale, bench::JsonResults &Json) {
  bench::printHeader("Offline replay throughput (workload \"db\")");
  // Record a full-fidelity trace (unbounded) at a deeper scale so the
  // whole event stream fits comfortably in memory.
  WorldConfig Config;
  Config.Checker = CheckerKind::Jinn;
  Config.JinnMode = agent::TraceMode::RecordAndReplay;
  ScenarioWorld World(Config);
  prepareWorkloadWorld(World);
  const WorkloadInfo &Info = *workloadByName("db");
  runWorkload(Info, World, Scale * 4);
  World.shutdown();

  trace::Trace Recorded = World.Jinn->recorder()->collect();
  const std::string Path = "bench_trace_modes.jinntrace";
  std::string Err;
  if (!trace::writeTraceFile(Recorded, Path, &Err)) {
    std::printf("trace write failed: %s\n", Err.c_str());
    return;
  }
  trace::Trace FromDisk;
  if (!trace::readTraceFile(FromDisk, Path, &Err)) {
    std::printf("trace read failed: %s\n", Err.c_str());
    return;
  }
  std::remove(Path.c_str());

  trace::ReplayResult Replayed;
  double Seconds = bench::medianSeconds(
      [&] { Replayed = trace::replayTrace(FromDisk, World.Vm); }, 3);
  double EventsPerSec =
      static_cast<double>(Replayed.EventsReplayed) / Seconds;
  std::printf("%llu events replayed in %.2f ms  (%.2f M events/s, "
              "%zu reports)\n",
              static_cast<unsigned long long>(Replayed.EventsReplayed),
              Seconds * 1e3, EventsPerSec / 1e6, Replayed.Reports.size());
  Json.add("replay_events", static_cast<double>(Replayed.EventsReplayed),
           "events");
  Json.add("replay_throughput", EventsPerSec, "events/s");
}

void BM_TraceModeUnit(benchmark::State &State, const ModeSpec &Mode) {
  ScenarioWorld World(configFor(Mode));
  prepareWorkloadWorld(World);
  const WorkloadInfo &Info = *workloadByName("db");
  runWorkload(Info, World, 1024); // warm-up
  uint64_t Crossings = 0;
  for (auto _ : State) {
    WorkloadRun Run = runWorkload(Info, World, 256);
    benchmark::DoNotOptimize(Run.Checksum);
    Crossings += Run.JniCalls + Run.NativeTransitions;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Crossings));
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Scale = 2048;
  if (const char *Env = std::getenv("JINN_BENCH_SCALE"))
    Scale = std::strtoull(Env, nullptr, 10);
  if (!Scale)
    Scale = 2048;

  bench::JsonResults Json("trace_modes");
  Json.add("scale_divisor", static_cast<double>(Scale), "");
  bool RecordCheaper = false;
  printModesTable(Scale, Json, RecordCheaper);
  printConcurrentTable(Scale, Json);
  printReplayThroughput(Scale, Json);
  Json.writeFile();

  for (const ModeSpec &Mode : Modes)
    benchmark::RegisterBenchmark(
        (std::string("TraceModeUnit/") + Mode.Name).c_str(),
        BM_TraceModeUnit, Mode);
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  std::printf("\nPer-call costs (google-benchmark):\n");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return RecordCheaper ? 0 : 1;
}
