//===- bench/bench_coverage.cpp - Regenerates §6.3 coverage ---------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §6.3's quantitative coverage: which dynamic checker produces a valid bug
/// report (exception, warning, or error) on each microbenchmark. The paper
/// measured Jinn 100%, HotSpot 56%, J9 50% on its 16-benchmark suite; this
/// reproduction's suite weights resource-leak benchmarks differently (see
/// EXPERIMENTS.md), preserving the qualitative result: the built-in
/// checkers are incomplete and mutually inconsistent, Jinn detects
/// everything detectable at the boundary.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "scenarios/Scenarios.h"

#include <cstdio>

using namespace jinn;
using namespace jinn::scenarios;
using jinn::jvm::VmFlavor;

int main() {
  bench::printHeader("Coverage of dynamic checkers on the microbenchmark "
                     "suite (paper §6.3)");

  size_t Total = 0, HitHs = 0, HitJ9 = 0, HitJinn = 0, Inconsistent = 0;
  std::printf("%-22s %-10s %-10s %-10s %s\n", "microbenchmark", "HS+check",
              "J9+check", "Jinn", "consistent?");
  bench::printRule();

  for (const MicroInfo &Info : allMicrobenchmarks()) {
    if (!Info.DetectableAtBoundary)
      continue;
    ++Total;
    WorldConfig Hs{VmFlavor::HotSpotLike, CheckerKind::Xcheck, false, {}, {}};
    WorldConfig J9{VmFlavor::J9Like, CheckerKind::Xcheck, false, {}, {}};
    WorldConfig Jn{VmFlavor::HotSpotLike, CheckerKind::Jinn, false, {}, {}};
    Outcome OHs = runMicroToOutcome(Info.Id, Hs);
    Outcome OJ9 = runMicroToOutcome(Info.Id, J9);
    Outcome OJn = runMicroToOutcome(Info.Id, Jn);
    bool Consistent = OHs == OJ9;
    HitHs += isValidBugReport(OHs);
    HitJ9 += isValidBugReport(OJ9);
    HitJinn += isValidBugReport(OJn);
    Inconsistent += !Consistent;
    std::printf("%-22s %-10s %-10s %-10s %s\n", Info.ClassName,
                outcomeName(OHs), outcomeName(OJ9), outcomeName(OJn),
                Consistent ? "yes" : "NO");
  }

  bench::printRule();
  std::printf("valid bug reports:  HotSpot -Xcheck:jni %zu/%zu (%.0f%%), "
              "J9 -Xcheck:jni %zu/%zu (%.0f%%),\n                    Jinn "
              "%zu/%zu (%.0f%%)\n",
              HitHs, Total, 100.0 * HitHs / Total, HitJ9, Total,
              100.0 * HitJ9 / Total, HitJinn, Total,
              100.0 * HitJinn / Total);
  std::printf("JVM checkers behave inconsistently on %zu of %zu "
              "microbenchmarks (paper: 9 of 16)\n",
              Inconsistent, Total);
  std::printf("paper's measured coverage on its suite: Jinn 100%%, HotSpot "
              "56%%, J9 50%%\n");

  bench::JsonResults Json("coverage");
  Json.add("hotspot_xcheck", 100.0 * HitHs / Total, "%");
  Json.add("j9_xcheck", 100.0 * HitJ9 / Total, "%");
  Json.add("jinn", 100.0 * HitJinn / Total, "%");
  Json.add("inconsistent", static_cast<double>(Inconsistent), "micros");
  Json.add("detectable_micros", static_cast<double>(Total), "micros");
  Json.writeFile();
  return 0;
}
