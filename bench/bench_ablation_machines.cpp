//===- bench/bench_ablation_machines.cpp - Per-machine cost ablation -----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation study beyond the paper: enable the eleven machines one at a
/// time and measure each machine's share of the instrumentation and the
/// runtime overhead on a representative workload. Decomposes Table 3's
/// "Checking" column and quantifies the design note that most sites come
/// from the broad-selector machines (nullness, references, env state).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <memory>

using namespace jinn;
using namespace jinn::scenarios;
using namespace jinn::workloads;

namespace {

/// A world with Jinn restricted to one machine (or all, or none).
struct AblatedWorld {
  explicit AblatedWorld(std::vector<std::string> Enabled)
      : World(WorldConfig{}) {
    agent::JinnOptions Options;
    Options.EnabledMachines = std::move(Enabled);
    Jinn = static_cast<agent::JinnAgent *>(&World.Host.load(
        std::make_unique<agent::JinnAgent>(std::move(Options))));
    prepareWorkloadWorld(World);
  }
  ScenarioWorld World;
  agent::JinnAgent *Jinn = nullptr;
};

double measure(ScenarioWorld &World, const WorkloadInfo &Info,
               uint64_t Scale) {
  runWorkload(Info, World, Scale * 8); // warm-up
  return bench::medianSeconds([&] { runWorkload(Info, World, Scale); }, 5);
}

} // namespace

int main() {
  bench::printHeader("Ablation - per-machine synthesized checks and "
                     "runtime cost (workload: jack, scaled)");

  const WorkloadInfo &Info = *workloadByName("jack");
  const uint64_t Scale = 256;

  // Baseline: the production run, measured identically.
  WorldConfig PlainConfig;
  ScenarioWorld Plain(PlainConfig);
  prepareWorkloadWorld(Plain);
  double Production = measure(Plain, Info, Scale);

  const char *MachineNames[] = {
      "JNIEnv* state",          "Exception state",
      "Critical-section state", "Fixed typing",
      "Entity-specific typing", "Access control",
      "Nullness",               "Pinned or copied string or array",
      "Monitor",                "Global or weak global reference",
      "Local reference",
  };

  bench::JsonResults Json("ablation_machines");
  std::printf("%-36s %8s %10s\n", "machines enabled", "checks",
              "overhead");
  bench::printRule();
  for (const char *Name : MachineNames) {
    AblatedWorld W({Name});
    double T = measure(W.World, Info, Scale);
    std::printf("%-36s %8zu %9.2fx\n", Name,
                W.Jinn->stats().instrumentationPoints(), T / Production);
    Json.add(std::string(Name) + "/overhead", T / Production, "x");
    Json.add(std::string(Name) + "/checks",
             static_cast<double>(W.Jinn->stats().instrumentationPoints()),
             "points");
  }
  {
    AblatedWorld W({}); // all eleven
    double T = measure(W.World, Info, Scale);
    std::printf("%-36s %8zu %9.2fx\n", "(all eleven machines)",
                W.Jinn->stats().instrumentationPoints(), T / Production);
    Json.add("all_machines/overhead", T / Production, "x");
    Json.add("all_machines/checks",
             static_cast<double>(W.Jinn->stats().instrumentationPoints()),
             "points");
  }
  Json.writeFile();
  bench::printRule();
  std::printf("overhead = normalized to the production run of the same "
              "workload (1.00)\n");
  return 0;
}
