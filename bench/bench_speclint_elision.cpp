//===- bench/bench_speclint_elision.cpp - Static check elision cost ------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the relevance matrix buys at run time: with static check
/// elision (sparse dispatch) on, JNI functions no enabled machine observes
/// skip argument capture and dispatch entirely. Two agent configurations
/// are compared in inline-check mode, each sparse vs dense:
///
///   full     all eleven machines. The JNIEnv-state machine pre-hooks
///            every function, so elision can only skip the post path —
///            the measured saving is the post-side bookkeeping on the
///            ~160 functions no machine observes after the call.
///   ablated  only the pinned-string-or-array machine, whose relevance
///            set is 12 of the 229 functions. Almost every crossing now
///            carries no hook at all, and elision skips capture outright.
///
/// Acceptance: in the ablated configuration, sparse dispatch must cost
/// measurably less per crossing than dense dispatch. Reports are known
/// identical either way (tests/speclint_test.cpp asserts it); this
/// benchmark prices the part of Table 3's checking column the analyzer
/// proves unnecessary.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

using namespace jinn;
using namespace jinn::scenarios;
using namespace jinn::workloads;

namespace {

struct ConfigSpec {
  const char *Name;
  bool Jinn;    ///< false = production run (no agent)
  bool Sparse;  ///< static check elision on
  bool Ablated; ///< only the local-reference machine
};

const ConfigSpec Configs[] = {
    {"production", false, false, false},
    {"full-dense", true, false, false},
    {"full-sparse", true, true, false},
    {"ablated-dense", true, false, true},
    {"ablated-sparse", true, true, true},
};

constexpr size_t NumConfigs = sizeof(Configs) / sizeof(Configs[0]);

WorldConfig configFor(const ConfigSpec &Spec) {
  WorldConfig Config;
  if (Spec.Jinn) {
    Config.Checker = CheckerKind::Jinn;
    Config.JinnSparseDispatch = Spec.Sparse;
    // This bench prices the *dynamic* hook walk with and without
    // speclint elision; the fused tier skips that walk entirely (priced
    // by bench_crossing_latency) and would collapse the comparison.
    Config.JinnFusedDispatch = false;
    if (Spec.Ablated)
      Config.JinnEnabledMachines = {"Pinned or copied string or array"};
  }
  return Config;
}

struct Timing {
  double Seconds = 0;
  uint64_t Crossings = 0;
};

/// Same discipline as bench_trace_modes: interleaved rounds so every
/// configuration sees the same noise phases, min-of-rounds to discard
/// scheduler spikes, blocks of consecutive runs for sustained cost, and a
/// warm-up run per world before any timing.
std::array<Timing, NumConfigs> measureWorkload(const WorkloadInfo &Info,
                                               uint64_t Scale) {
  constexpr int Rounds = 5;
  constexpr int BlockRuns = 4;
  std::array<std::unique_ptr<ScenarioWorld>, NumConfigs> Worlds;
  std::array<Timing, NumConfigs> Out;
  for (size_t C = 0; C < NumConfigs; ++C) {
    Worlds[C] = std::make_unique<ScenarioWorld>(configFor(Configs[C]));
    prepareWorkloadWorld(*Worlds[C]);
    runWorkload(Info, *Worlds[C], Scale); // warm-up
    Out[C].Seconds = 1e300;
  }
  for (int R = 0; R < Rounds; ++R)
    for (size_t C = 0; C < NumConfigs; ++C) {
      uint64_t Crossings = 0;
      double Seconds = bench::timeSeconds([&] {
        for (int B = 0; B < BlockRuns; ++B) {
          WorkloadRun Run = runWorkload(Info, *Worlds[C], Scale);
          Crossings += Run.JniCalls + Run.NativeTransitions;
        }
      });
      Out[C].Crossings = Crossings;
      Out[C].Seconds = std::min(Out[C].Seconds, Seconds);
    }
  return Out;
}

void BM_ElisionUnit(benchmark::State &State, const ConfigSpec &Spec) {
  ScenarioWorld World(configFor(Spec));
  prepareWorkloadWorld(World);
  const WorkloadInfo &Info = *workloadByName("db");
  runWorkload(Info, World, 1024); // warm-up
  uint64_t Crossings = 0;
  for (auto _ : State) {
    WorkloadRun Run = runWorkload(Info, World, 256);
    benchmark::DoNotOptimize(Run.Checksum);
    Crossings += Run.JniCalls + Run.NativeTransitions;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Crossings));
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Scale = 2048;
  if (const char *Env = std::getenv("JINN_BENCH_SCALE"))
    Scale = std::strtoull(Env, nullptr, 10);
  if (!Scale)
    Scale = 2048;

  bench::JsonResults Json("speclint_elision");
  Json.add("scale_divisor", static_cast<double>(Scale), "");

  bench::printHeader(
      "Static check elision - per-crossing cost, sparse vs dense dispatch\n"
      "(inline checking; overhead vs the production run, ns per crossing)");
  std::printf("%-11s | %9s %9s %7s | %9s %9s %7s\n", "benchmark", "full-dn",
              "full-sp", "saved", "abl-dn", "abl-sp", "saved");
  bench::printRule();

  double SumFullDense = 0, SumFullSparse = 0;
  double SumAblDense = 0, SumAblSparse = 0;
  size_t N = 0;
  for (const WorkloadInfo &Info : allWorkloads()) {
    std::array<Timing, NumConfigs> T = measureWorkload(Info, Scale);
    const Timing &Base = T[0];
    double Crossings =
        static_cast<double>(Base.Crossings ? Base.Crossings : 1);
    auto NsPerCrossing = [&](const Timing &Mode) {
      return (Mode.Seconds - Base.Seconds) / Crossings * 1e9;
    };
    double FullDense = NsPerCrossing(T[1]);
    double FullSparse = NsPerCrossing(T[2]);
    double AblDense = NsPerCrossing(T[3]);
    double AblSparse = NsPerCrossing(T[4]);
    std::printf("%-11s | %9.1f %9.1f %7.1f | %9.1f %9.1f %7.1f\n", Info.Name,
                FullDense, FullSparse, FullDense - FullSparse, AblDense,
                AblSparse, AblDense - AblSparse);
    Json.add(std::string(Info.Name) + "/full_dense_ns", FullDense, "ns");
    Json.add(std::string(Info.Name) + "/full_sparse_ns", FullSparse, "ns");
    Json.add(std::string(Info.Name) + "/ablated_dense_ns", AblDense, "ns");
    Json.add(std::string(Info.Name) + "/ablated_sparse_ns", AblSparse, "ns");
    SumFullDense += FullDense;
    SumFullSparse += FullSparse;
    SumAblDense += AblDense;
    SumAblSparse += AblSparse;
    ++N;
  }
  bench::printRule();
  double MeanFullDense = SumFullDense / static_cast<double>(N);
  double MeanFullSparse = SumFullSparse / static_cast<double>(N);
  double MeanAblDense = SumAblDense / static_cast<double>(N);
  double MeanAblSparse = SumAblSparse / static_cast<double>(N);
  std::printf("%-11s | %9.1f %9.1f %7.1f | %9.1f %9.1f %7.1f   mean\n",
              "mean", MeanFullDense, MeanFullSparse,
              MeanFullDense - MeanFullSparse, MeanAblDense, MeanAblSparse,
              MeanAblDense - MeanAblSparse);
  Json.add("mean_full_dense_ns", MeanFullDense, "ns");
  Json.add("mean_full_sparse_ns", MeanFullSparse, "ns");
  Json.add("mean_ablated_dense_ns", MeanAblDense, "ns");
  Json.add("mean_ablated_sparse_ns", MeanAblSparse, "ns");

  // Acceptance on the ablated pair: there elision skips capture for most
  // functions, so the saving must clear measurement noise. The full pair
  // only skips the post path and is reported but not gated.
  bool Pass = MeanAblSparse < MeanAblDense;
  std::printf("\nacceptance: ablated sparse %.1f ns/crossing %s ablated "
              "dense %.1f ns/crossing : %s\n",
              MeanAblSparse, Pass ? "<" : ">=", MeanAblDense,
              Pass ? "PASS" : "FAIL");
  Json.add("sparse_cheaper_than_dense_ablated",
           std::string(Pass ? "true" : "false"));
  Json.writeFile();

  for (const ConfigSpec &Spec : Configs)
    benchmark::RegisterBenchmark(
        (std::string("ElisionUnit/") + Spec.Name).c_str(), BM_ElisionUnit,
        Spec);
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  std::printf("\nPer-call costs (google-benchmark):\n");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return Pass ? 0 : 1;
}
