//===- bench/BenchUtil.h - Shared helpers for the bench binaries ---------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef JINN_BENCH_BENCHUTIL_H
#define JINN_BENCH_BENCHUTIL_H

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace jinn::bench {

/// Machine-readable results emitter: each bench binary collects its
/// headline numbers here and writes BENCH_<name>.json next to the text
/// output, so tools/run_benches.sh can aggregate a whole run.
class JsonResults {
public:
  explicit JsonResults(std::string BenchName)
      : BenchName(std::move(BenchName)) {}

  void add(const std::string &Name, double Value, const std::string &Unit) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
    Entries.push_back({Name, Buf, Unit, true});
  }
  void add(const std::string &Name, const std::string &Value) {
    Entries.push_back({Name, Value, "", false});
  }

  /// Writes BENCH_<name>.json in the working directory (or \p Path when
  /// given). Returns false on I/O failure.
  bool writeFile(const std::string &Path = "") const {
    std::string Out = Path.empty() ? "BENCH_" + BenchName + ".json" : Path;
    std::FILE *File = std::fopen(Out.c_str(), "w");
    if (!File)
      return false;
    std::fprintf(File, "{\n  \"bench\": \"%s\",\n  \"results\": [\n",
                 escaped(BenchName).c_str());
    for (size_t I = 0; I < Entries.size(); ++I) {
      const Entry &E = Entries[I];
      std::fprintf(File, "    {\"name\": \"%s\", \"value\": ",
                   escaped(E.Name).c_str());
      if (E.Numeric)
        std::fprintf(File, "%s", E.Value.c_str());
      else
        std::fprintf(File, "\"%s\"", escaped(E.Value).c_str());
      if (!E.Unit.empty())
        std::fprintf(File, ", \"unit\": \"%s\"", escaped(E.Unit).c_str());
      std::fprintf(File, "}%s\n", I + 1 < Entries.size() ? "," : "");
    }
    std::fprintf(File, "  ]\n}\n");
    std::fclose(File);
    std::printf("results: %s\n", Out.c_str());
    return true;
  }

private:
  struct Entry {
    std::string Name, Value, Unit;
    bool Numeric;
  };

  static std::string escaped(const std::string &Text) {
    std::string Out;
    for (char C : Text) {
      if (C == '"' || C == '\\')
        Out += '\\';
      if (static_cast<unsigned char>(C) < 0x20)
        Out += ' ';
      else
        Out += C;
    }
    return Out;
  }

  std::string BenchName;
  std::vector<Entry> Entries;
};

/// Wall-clock seconds of \p Fn (one invocation).
template <typename F> double timeSeconds(F &&Fn) {
  auto Start = std::chrono::steady_clock::now();
  Fn();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

/// Median-of-N wall-clock seconds.
template <typename F> double medianSeconds(F &&Fn, int Reps) {
  double Best[16];
  if (Reps > 16)
    Reps = 16;
  for (int I = 0; I < Reps; ++I)
    Best[I] = timeSeconds(Fn);
  // insertion sort (tiny N)
  for (int I = 1; I < Reps; ++I)
    for (int J = I; J > 0 && Best[J - 1] > Best[J]; --J)
      std::swap(Best[J - 1], Best[J]);
  return Best[Reps / 2];
}

inline void printRule(int Width = 78) {
  for (int I = 0; I < Width; ++I)
    std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

inline void printHeader(const std::string &Title) {
  printRule();
  std::printf("%s\n", Title.c_str());
  printRule();
}

} // namespace jinn::bench

#endif // JINN_BENCH_BENCHUTIL_H
