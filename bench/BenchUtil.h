//===- bench/BenchUtil.h - Shared helpers for the bench binaries ---------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef JINN_BENCH_BENCHUTIL_H
#define JINN_BENCH_BENCHUTIL_H

#include <chrono>
#include <cstdio>
#include <string>

namespace jinn::bench {

/// Wall-clock seconds of \p Fn (one invocation).
template <typename F> double timeSeconds(F &&Fn) {
  auto Start = std::chrono::steady_clock::now();
  Fn();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

/// Median-of-N wall-clock seconds.
template <typename F> double medianSeconds(F &&Fn, int Reps) {
  double Best[16];
  if (Reps > 16)
    Reps = 16;
  for (int I = 0; I < Reps; ++I)
    Best[I] = timeSeconds(Fn);
  // insertion sort (tiny N)
  for (int I = 1; I < Reps; ++I)
    for (int J = I; J > 0 && Best[J - 1] > Best[J]; --J)
      std::swap(Best[J - 1], Best[J]);
  return Best[Reps / 2];
}

inline void printRule(int Width = 78) {
  for (int I = 0; I < Width; ++I)
    std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

inline void printHeader(const std::string &Title) {
  printRule();
  std::printf("%s\n", Title.c_str());
  printRule();
}

} // namespace jinn::bench

#endif // JINN_BENCH_BENCHUTIL_H
