//===- bench/bench_table1_pitfalls.cpp - Regenerates paper Table 1 -------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs every microbenchmark under the five configurations of Table 1 —
/// production HotSpot-like, production J9-like, both -Xcheck:jni
/// emulations, and Jinn — and prints the classified behavior matrix next
/// to the paper's expectations.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "scenarios/Scenarios.h"

#include <cstdio>

using namespace jinn;
using namespace jinn::scenarios;
using jinn::jvm::VmFlavor;

namespace {

const char *cell(MicroId Id, VmFlavor Flavor, CheckerKind Checker) {
  WorldConfig Config;
  Config.Flavor = Flavor;
  Config.Checker = Checker;
  return outcomeName(runMicroToOutcome(Id, Config));
}

} // namespace

int main() {
  bench::printHeader(
      "Table 1 - JNI pitfalls: default behavior, -Xcheck:jni, and Jinn\n"
      "(paper: Lee et al., PLDI 2010; behaviors measured on the simulator)");
  std::printf("%-22s %4s | %-9s %-9s | %-9s %-9s | %-10s\n", "microbenchmark",
              "pit", "HotSpot", "J9", "HS+check", "J9+check", "Jinn");
  bench::printRule();

  bench::JsonResults Json("table1_pitfalls");
  size_t JinnExceptions = 0;
  for (const MicroInfo &Info : allMicrobenchmarks()) {
    const char *Jinn = cell(Info.Id, VmFlavor::HotSpotLike, CheckerKind::Jinn);
    std::printf("%-22s %4d | %-9s %-9s | %-9s %-9s | %-10s\n",
                Info.ClassName, Info.Pitfall,
                cell(Info.Id, VmFlavor::HotSpotLike, CheckerKind::None),
                cell(Info.Id, VmFlavor::J9Like, CheckerKind::None),
                cell(Info.Id, VmFlavor::HotSpotLike, CheckerKind::Xcheck),
                cell(Info.Id, VmFlavor::J9Like, CheckerKind::Xcheck), Jinn);
    Json.add(std::string(Info.ClassName) + "/jinn", Jinn);
    JinnExceptions += std::string(Jinn) == "exception";
  }
  Json.add("jinn_exceptions", static_cast<double>(JinnExceptions), "micros");
  Json.add("micros", static_cast<double>(allMicrobenchmarks().size()),
           "micros");
  Json.writeFile();
  bench::printRule();
  std::printf(
      "Paper reference rows (Table 1): pitfall 1 running/crash "
      "warning/error exception;\n"
      "3,6,13: crash/crash error/error exception; 9: NPE everywhere but "
      "Jinn; 11/12:\nleak/leak running/warning exception; 14: running/crash "
      "error/crash exception;\n16: deadlock/deadlock warning/error "
      "exception; 8: running/NPE everywhere (Jinn\ncannot detect pitfall 8 "
      "at the language boundary).\n");
  return 0;
}
