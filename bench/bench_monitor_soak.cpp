//===- bench/bench_monitor_soak.cpp - Production-monitoring soak bench ---===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The production-monitoring acceptance bench: runs the multi-tenant
/// server soak (thousands of short-lived request threads with a seeded
/// pending-exception tenant) under four boundary treatments —
///
///   inline      full inline checking, no recording (the paper's mode)
///   sampled16   1-in-16 sampled checking + streaming recorder + monitor,
///               retained segments in a rotating file sink
///   sampled256  1-in-256 sampled checking + streaming recorder + monitor
///   record-only recorder + monitor, no inline machines at all
///
/// and reports throughput (requests/s), p99 crossing latency from the
/// monitor's histogram, peak RSS, recorder drops, and reports found at
/// each sampling rate. Acceptance: sampled16 throughput beats inline full
/// checking, RSS stays under the ceiling, and every inline report the
/// sampled run emitted replays byte-identically from the sink's retained
/// rotating segments.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "monitor/Monitor.h"
#include "monitor/TraceSink.h"
#include "support/Resource.h"
#include "trace/Replay.h"
#include "workloads/ServerSoak.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <vector>

using namespace jinn;
using namespace jinn::scenarios;
using namespace jinn::workloads;

namespace {

struct ConfigSpec {
  const char *Name;
  uint32_t SampleRate;    ///< 1 = full checking
  agent::TraceMode Mode;
  bool Monitored;         ///< streaming recorder + monitor + sink
  bool RotatingSink;      ///< file sink instead of the in-memory ring
};

const ConfigSpec Configs[] = {
    {"inline", 1, agent::TraceMode::InlineCheck, false, false},
    {"sampled16", 16, agent::TraceMode::InlineCheck, true, true},
    {"sampled256", 256, agent::TraceMode::InlineCheck, true, false},
    {"record_only", 1, agent::TraceMode::RecordOnly, true, false},
};

struct ConfigResult {
  double Seconds = 0;
  double RequestsPerSec = 0;
  uint64_t Requests = 0;
  uint64_t JniCalls = 0;
  uint64_t SeededBugs = 0;
  uint64_t Reports = 0;
  uint64_t DroppedEvents = 0;
  uint64_t P99CrossingNs = 0;
  uint64_t PeakRssBytes = 0;
  uint64_t RetainedBytes = 0;
  bool ReplayVerified = false; ///< only checked for sampled16
  uint64_t ReplayReports = 0;
};

SoakOptions soakOptions(uint64_t Scale) {
  SoakOptions Opts;
  Opts.Workers = 4;
  // Scale is a divisor (like the workload benches): the default baseline
  // scale of 16384 yields a short soak, CI-sized; lower scales soak for
  // longer. The floor keeps the seeded-bug detection statistically
  // certain: 2048 requests / BugEvery 8 = 256 buggy requests, of which a
  // 1-in-16 thread sample misses all with probability (15/16)^256 ~ 6e-8.
  Opts.Requests = std::max<uint64_t>(2048, 2000000 / (Scale ? Scale : 1));
  Opts.OpsPerRequest = 24;
  Opts.Tenants = 4;
  Opts.BugEveryNRequests = 8;
  return Opts;
}

/// Multiset-inclusion check: every inline violation must appear in the
/// replay's report list. Unsampled threads are not recorded, so replay of
/// the retained segments reproduces exactly the sampled threads' checking.
bool replayIncludesInline(const std::vector<agent::JinnReport> &Inline,
                          const std::vector<agent::JinnReport> &Replayed) {
  std::vector<const agent::JinnReport *> Pool;
  for (const agent::JinnReport &R : Replayed)
    if (!R.EndOfRun)
      Pool.push_back(&R);
  for (const agent::JinnReport &R : Inline) {
    if (R.EndOfRun)
      continue;
    bool Found = false;
    for (auto It = Pool.begin(); It != Pool.end(); ++It) {
      if ((*It)->Machine == R.Machine && (*It)->Function == R.Function &&
          (*It)->Message == R.Message) {
        Pool.erase(It);
        Found = true;
        break;
      }
    }
    if (!Found)
      return false;
  }
  return true;
}

ConfigResult runConfig(const ConfigSpec &Spec, const SoakOptions &Soak,
                       uint64_t RssCeilingBytes) {
  WorldConfig Config;
  Config.Checker = CheckerKind::Jinn;
  Config.JinnMode = Spec.Mode;
  Config.JinnSampleRate = Spec.SampleRate;
  if (Spec.Monitored) {
    Config.JinnRecorder.StreamChunks = true;
    Config.JinnRecorder.MaxQueuedChunks = 4096;
  }
  ScenarioWorld World(Config);
  prepareSoakWorld(World);

  std::unique_ptr<monitor::TraceSink> Sink;
  const std::string SinkDir = "bench_monitor_soak.segments";
  if (Spec.Monitored) {
    if (Spec.RotatingSink) {
      std::filesystem::remove_all(SinkDir);
      monitor::RotatingFileSink::Options SinkOpts;
      SinkOpts.Directory = SinkDir;
      SinkOpts.RotateBytes = 4u << 20;
      SinkOpts.MaxSegments = 64; // retain the whole (short) soak
      Sink = std::make_unique<monitor::RotatingFileSink>(SinkOpts);
    } else {
      monitor::RingSink::Options SinkOpts;
      SinkOpts.MaxSegments = 4096;
      SinkOpts.MaxBytes = 512ull << 20;
      Sink = std::make_unique<monitor::RingSink>(SinkOpts);
    }
  }
  std::unique_ptr<monitor::JinnMonitor> Monitor;
  if (Spec.Monitored) {
    monitor::MonitorOptions MonOpts;
    MonOpts.IntervalMs = 20;
    MonOpts.RssCeilingBytes = RssCeilingBytes;
    Monitor = std::make_unique<monitor::JinnMonitor>(World.Vm, *World.Jinn,
                                                     *Sink, MonOpts);
    Monitor->start();
  }

  SoakStats Stats = runServerSoak(World, Soak);

  ConfigResult Result;
  Result.Seconds = Stats.Seconds;
  Result.Requests = Stats.Requests;
  Result.RequestsPerSec =
      Stats.Seconds > 0 ? static_cast<double>(Stats.Requests) / Stats.Seconds
                        : 0;
  Result.JniCalls = Stats.JniCalls;
  Result.SeededBugs = Stats.SeededBugs;
  Result.Reports = Stats.Reports;
  Result.PeakRssBytes = Stats.PeakRssBytes;

  if (Monitor) {
    Monitor->finish();
    monitor::MonitorSnapshot Snap = Monitor->snapshot();
    Result.DroppedEvents = Snap.DroppedEvents;
    Result.P99CrossingNs = Snap.P99CrossingNs;
    Result.PeakRssBytes = std::max(Result.PeakRssBytes, Snap.PeakRssBytes);
    Result.RetainedBytes = Snap.Sink.RetainedBytes;
  }

  // Replay verification for the sampled16 run: collect the inline report
  // list, replay the sink's retained segments, and check inclusion.
  if (Spec.Monitored && Spec.RotatingSink &&
      Spec.Mode != agent::TraceMode::RecordOnly) {
    std::vector<agent::JinnReport> Inline = World.Jinn->reporter().reports();
    World.shutdown();
    trace::Trace Retained = Sink->retained();
    trace::ReplayResult Replayed = trace::replayTrace(Retained, World.Vm);
    Result.ReplayVerified = replayIncludesInline(Inline, Replayed.Reports);
    Result.ReplayReports = Replayed.Reports.size();
  } else {
    World.shutdown();
  }
  Monitor.reset();
  Sink.reset();
  std::filesystem::remove_all(SinkDir);
  return Result;
}

} // namespace

int main(int Argc, char **Argv) {
  (void)Argc;
  (void)Argv;
  uint64_t Scale = 16384;
  if (const char *Env = std::getenv("JINN_BENCH_SCALE"))
    Scale = std::strtoull(Env, nullptr, 10);
  if (!Scale)
    Scale = 16384;
  uint64_t RssCeilingMb = 1024;
  if (const char *Env = std::getenv("JINN_SOAK_RSS_CEILING_MB"))
    RssCeilingMb = std::strtoull(Env, nullptr, 10);
  const uint64_t RssCeilingBytes = RssCeilingMb << 20;

  SoakOptions Soak = soakOptions(Scale);
  bench::JsonResults Json("monitor_soak");
  Json.add("scale_divisor", static_cast<double>(Scale), "");
  Json.add("requests", static_cast<double>(Soak.Requests), "");
  Json.add("rss_ceiling_mb", static_cast<double>(RssCeilingMb), "MB");

  bench::printHeader(
      "Production monitoring soak - multi-tenant server, seeded-bug tenant\n"
      "(4 workers, short-lived request threads, bug every 8th request)");
  std::printf("%-12s | %9s %9s %9s %8s %8s %9s\n", "config", "req/s",
              "p99 ns", "rss MB", "reports", "dropped", "retained");
  bench::printRule();

  constexpr size_t NumConfigs = sizeof(Configs) / sizeof(Configs[0]);
  ConfigResult Results[NumConfigs];
  for (size_t C = 0; C < NumConfigs; ++C) {
    Results[C] = runConfig(Configs[C], Soak, RssCeilingBytes);
    const ConfigResult &R = Results[C];
    std::printf("%-12s | %9.0f %9llu %9.1f %8llu %8llu %8.1fM\n",
                Configs[C].Name, R.RequestsPerSec,
                static_cast<unsigned long long>(R.P99CrossingNs),
                static_cast<double>(R.PeakRssBytes) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(R.Reports),
                static_cast<unsigned long long>(R.DroppedEvents),
                static_cast<double>(R.RetainedBytes) / (1024.0 * 1024.0));
    std::string P = Configs[C].Name;
    Json.add(P + "/requests_per_sec", R.RequestsPerSec, "req/s");
    Json.add(P + "/p99_crossing_ns", static_cast<double>(R.P99CrossingNs),
             "ns");
    Json.add(P + "/peak_rss_mb",
             static_cast<double>(R.PeakRssBytes) / (1024.0 * 1024.0), "MB");
    Json.add(P + "/reports", static_cast<double>(R.Reports), "");
    Json.add(P + "/dropped_events", static_cast<double>(R.DroppedEvents),
             "");
    Json.add(P + "/jni_calls", static_cast<double>(R.JniCalls), "");
  }

  const ConfigResult &Inline = Results[0];
  const ConfigResult &Sampled16 = Results[1];
  const ConfigResult &Sampled256 = Results[2];

  // Headline cross-config facts the gate consumes.
  Json.add("reports_n1", static_cast<double>(Inline.Reports), "");
  Json.add("reports_n16", static_cast<double>(Sampled16.Reports), "");
  Json.add("reports_n256", static_cast<double>(Sampled256.Reports), "");
  Json.add("replay_reports_n16",
           static_cast<double>(Sampled16.ReplayReports), "");
  Json.add("replay_verified",
           std::string(Sampled16.ReplayVerified ? "true" : "false"));

  uint64_t MaxRss = 0;
  for (const ConfigResult &R : Results)
    MaxRss = std::max(MaxRss, R.PeakRssBytes);
  Json.add("max_peak_rss_mb",
           static_cast<double>(MaxRss) / (1024.0 * 1024.0), "MB");

  bool Faster = Sampled16.RequestsPerSec > Inline.RequestsPerSec;
  bool UnderCeiling = MaxRss < RssCeilingBytes;
  bool FoundAtN16 = Sampled16.Reports > 0;
  Json.add("sampled16_faster_than_inline",
           std::string(Faster ? "true" : "false"));
  Json.add("rss_under_ceiling", std::string(UnderCeiling ? "true" : "false"));

  std::printf("\nacceptance:\n");
  std::printf("  sampled16 %.0f req/s %s inline %.0f req/s : %s\n",
              Sampled16.RequestsPerSec, Faster ? ">" : "<=",
              Inline.RequestsPerSec, Faster ? "PASS" : "FAIL");
  std::printf("  peak RSS %.1f MB %s ceiling %llu MB : %s\n",
              static_cast<double>(MaxRss) / (1024.0 * 1024.0),
              UnderCeiling ? "<" : ">=",
              static_cast<unsigned long long>(RssCeilingMb),
              UnderCeiling ? "PASS" : "FAIL");
  std::printf("  sampled16 replay inclusion (%llu inline, %llu replay): %s\n",
              static_cast<unsigned long long>(Sampled16.Reports),
              static_cast<unsigned long long>(Sampled16.ReplayReports),
              Sampled16.ReplayVerified ? "PASS" : "FAIL");
  std::printf("  seeded bugs found at N=16 (%llu): %s\n",
              static_cast<unsigned long long>(Sampled16.Reports),
              FoundAtN16 ? "PASS" : "FAIL");

  Json.writeFile();
  return (Faster && UnderCeiling && Sampled16.ReplayVerified && FoundAtN16)
             ? 0
             : 1;
}
