//===- bench/bench_fig9_messages.cpp - Regenerates paper Figure 9 --------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the ExceptionState microbenchmark under the HotSpot -Xcheck:jni
/// emulation, the J9 emulation, and Jinn, and prints the three error
/// reports — Figure 9's qualitative comparison. Jinn's report names both
/// illegal calls, shows the calling context, and chains the original Java
/// exception as the cause.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "scenarios/Scenarios.h"

#include <cstdio>

using namespace jinn;
using namespace jinn::scenarios;

int main() {
  bench::printHeader("Figure 9 - error messages for the ExceptionState "
                     "microbenchmark");
  bench::JsonResults Json("fig9_messages");

  // (a) HotSpot -Xcheck:jni
  {
    WorldConfig Config;
    Config.Flavor = jvm::VmFlavor::HotSpotLike;
    Config.Checker = CheckerKind::Xcheck;
    ScenarioWorld World(Config);
    runMicrobenchmark(MicroId::PendingException, World);
    std::printf("(a) HotSpot -Xcheck:jni\n\n");
    for (const auto &Detection : World.Xcheck->reporter().detections())
      std::printf("%s\n", Detection.FormattedText.c_str());
    Json.add("hotspot_xcheck_detections",
             static_cast<double>(World.Xcheck->reporter().detections().size()),
             "reports");
  }

  // (b) J9 -Xcheck:jni
  {
    WorldConfig Config;
    Config.Flavor = jvm::VmFlavor::J9Like;
    Config.Checker = CheckerKind::Xcheck;
    ScenarioWorld World(Config);
    runMicrobenchmark(MicroId::PendingException, World);
    bench::printRule();
    std::printf("(b) J9 -Xcheck:jni\n\n");
    for (const auto &Detection : World.Xcheck->reporter().detections())
      std::printf("%s\n", Detection.FormattedText.c_str());
    Json.add("j9_xcheck_detections",
             static_cast<double>(World.Xcheck->reporter().detections().size()),
             "reports");
  }

  // (c) Jinn
  {
    WorldConfig Config;
    Config.Checker = CheckerKind::Jinn;
    ScenarioWorld World(Config);
    runMicrobenchmark(MicroId::PendingException, World);
    bench::printRule();
    std::printf("(c) Jinn\n\n");
    jvm::JThread &Main = World.Vm.mainThread();
    if (!Main.Pending.isNull())
      std::printf("Exception in thread \"main\" %s",
                  World.Vm.describeThrowable(Main.Pending).c_str());
    std::printf("\n(%zu illegal calls reported: ",
                World.Jinn->reporter().reports().size());
    for (size_t I = 0; I < World.Jinn->reporter().reports().size(); ++I)
      std::printf("%s%s", I ? ", " : "",
                  World.Jinn->reporter().reports()[I].Function.c_str());
    std::printf(")\n");
    Json.add("jinn_reports",
             static_cast<double>(World.Jinn->reporter().reports().size()),
             "reports");
  }
  Json.writeFile();
  return 0;
}
