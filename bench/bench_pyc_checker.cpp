//===- bench/bench_pyc_checker.cpp - Python/C checker (Figure 11, §7) ----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §7 generalization experiment: Figure 11's dangle_bug under a
/// production interpreter (silent corruption) and under the synthesized
/// Python/C checker (reported at the faulting call), plus the GIL and
/// exception-state scenarios, and a per-call overhead measurement for the
/// checked table.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "pyjinn/PyChecker.h"
#include "scenarios/PythonScenarios.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace jinn;
using namespace jinn::pyc;
using namespace jinn::pyjinn;

namespace {

void BM_CleanExtension(benchmark::State &State, bool Checked) {
  PyInterp I;
  std::unique_ptr<PyChecker> Checker;
  if (Checked)
    Checker = std::make_unique<PyChecker>(I);
  for (auto _ : State) {
    scenarios::runPyCleanExtension(I);
    benchmark::DoNotOptimize(I.liveCount());
  }
}

} // namespace

int main(int Argc, char **Argv) {
  bench::printHeader("Python/C generalization - Figure 11's dangle_bug "
                     "(paper §7)");

  {
    PyInterp I;
    auto Printed = scenarios::runPyDangleBug(I);
    std::printf("production interpreter:\n  1. first = %s.\n  2. first = "
                "%s.   <- silent corruption (reused slot)\n\n",
                Printed.first.c_str(), Printed.second.c_str());
  }
  bench::JsonResults Json("pyc_checker");
  {
    PyInterp I;
    PyChecker Checker(I);
    auto Printed = scenarios::runPyDangleBug(I);
    std::printf("with the synthesized checker:\n  1. first = %s.\n",
                Printed.first.c_str());
    for (const PyViolation &V : Checker.violations())
      std::printf("  pyjinn: [%s] %s in %s\n", V.Machine.c_str(),
                  V.Message.c_str(), V.Function.c_str());
    Json.add("dangle_bug_violations",
             static_cast<double>(Checker.violations().size()), "reports");
  }
  {
    PyInterp I;
    PyChecker Checker(I);
    scenarios::runPyGilBug(I);
    scenarios::runPyExceptionBug(I);
    std::printf("\nother constraint classes (paper §7.1):\n");
    for (const PyViolation &V : Checker.violations())
      std::printf("  pyjinn: [%s] %s in %s\n", V.Machine.c_str(),
                  V.Message.c_str(), V.Function.c_str());
    Json.add("gil_exception_violations",
             static_cast<double>(Checker.violations().size()), "reports");
  }
  Json.writeFile();

  benchmark::RegisterBenchmark("PyCleanExtension/production",
                               BM_CleanExtension, false);
  benchmark::RegisterBenchmark("PyCleanExtension/checked", BM_CleanExtension,
                               true);
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  std::printf("\nchecker overhead on a correct extension "
              "(google-benchmark):\n");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
