#!/usr/bin/env python3
"""Enforces the mutation-testing kill-rate floor over a jinn-mutate report.

Usage: mutate_gate.py <baseline.json> <fresh.json> [floor]

Both files are jinn-mutate --run --json documents (schema jinn-mutate-v1):
  {"total": N, "killed": K, "survived": S, "errors": E,
   "non_equivalent": M, "kill_rate_non_equivalent": R,
   "mutants": [{"id", "name", "op_class", "target", "site",
                "expect", "status", "killed_by", "details"}, ...]}

Gates, in order of severity:
  1. no campaign errors: every mutant must reach a killed/survived verdict;
  2. kill-rate floor: kill_rate_non_equivalent must reach <floor>
     (default 0.80) — equivalent mutants are excluded from the denominator;
  3. every survivor must be annotated: a mutant whose registry expectation
     is "killed" but which survived is an undetected detector gap;
  4. no kill regression: a mutant killed in the committed baseline must not
     survive the fresh run;
  5. no silent shrinkage: every mutant present in the baseline must appear
     in the fresh report.

The survivor list is always printed, annotated equivalent vs blind-spot,
so a green gate still shows exactly what the detectors cannot see.
"""
import json
import os
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not isinstance(doc.get("mutants"), list):
        raise ValueError("%s: not a jinn-mutate report" % path)
    return doc


def by_id(doc):
    return {int(m["id"]): m for m in doc["mutants"]}


def main():
    if len(sys.argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    floor = float(sys.argv[3]) if len(sys.argv) > 3 else float(
        os.environ.get("JINN_MUTATE_KILL_FLOOR", "0.80"))
    try:
        base, fresh = load(sys.argv[1]), load(sys.argv[2])
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as err:
        print("mutate_gate: %s" % err, file=sys.stderr)
        return 2

    base_rows, fresh_rows = by_id(base), by_id(fresh)
    failures = []

    errors = [m for m in fresh_rows.values()
              if m["status"] not in ("killed", "survived")]
    for m in errors:
        failures.append("mutant %d (%s): campaign error (%s)"
                        % (m["id"], m["name"], m["status"]))

    rate = float(fresh.get("kill_rate_non_equivalent", 0.0))
    if rate < floor:
        failures.append(
            "kill rate %.1f%% on non-equivalent mutants below the %.0f%% "
            "floor" % (100 * rate, 100 * floor))

    survivors = [m for m in fresh_rows.values() if m["status"] == "survived"]
    for m in survivors:
        if m["expect"] == "killed":
            failures.append(
                "mutant %d (%s) survived but is annotated killable — either "
                "fix the detector gap or annotate the blind spot"
                % (m["id"], m["name"]))

    for mid, m in sorted(base_rows.items()):
        if mid not in fresh_rows:
            failures.append("mutant %d (%s) present in the baseline but "
                            "missing from the fresh report" % (mid, m["name"]))
        elif m["status"] == "killed" and fresh_rows[mid]["status"] == "survived":
            failures.append(
                "mutant %d (%s): killed in the baseline but survived the "
                "fresh run (oracle regression)" % (mid, m["name"]))

    annotation = {"survives-equivalent": "equivalent",
                  "survives-blind-spot": "blind spot (filed)",
                  "killed": "UNANNOTATED"}
    print("mutate_gate: %d/%d non-equivalent mutants killed (%.1f%%), "
          "%d survivor(s)" % (
              fresh.get("killed", 0) - sum(
                  1 for m in fresh_rows.values()
                  if m["status"] == "killed"
                  and m["expect"] == "survives-equivalent"),
              fresh.get("non_equivalent", 0), 100 * rate, len(survivors)))
    for m in sorted(survivors, key=lambda m: m["id"]):
        print("mutate_gate: survivor %d (%s): %s — %s"
              % (m["id"], m["name"], m["op_class"],
                 annotation.get(m["expect"], m["expect"])))

    for failure in failures:
        print("mutate_gate: %s" % failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
