//===- tools/jinn_replay_main.cpp - Offline replay checking driver -------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver for the boundary-crossing trace subsystem: runs a
/// scenario (microbenchmark or Table 3 workload) with the trace recorder
/// attached, round-trips the recording through the binary trace file,
/// replays it through a fresh set of synthesized machines, and verifies
/// the determinism guarantee — the replayed report list must be
/// byte-identical to what the inline checker produced.
///
///   jinn-replay                          verify every microbenchmark
///   jinn-replay --micro LocalDangling    just one
///   jinn-replay --workload jack          record+replay a workload
///   jinn-replay --record-only ...        no inline machines; replay is
///                                        the only checker
///   jinn-replay --chrome t.json ...      export chrome://tracing JSON
///   jinn-replay --counters ...           print aggregated trace counters
///
//===----------------------------------------------------------------------===//

#include "scenarios/Scenarios.h"
#include "trace/Export.h"
#include "trace/Replay.h"
#include "trace/TraceFile.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <tuple>
#include <vector>

using namespace jinn;
using scenarios::ScenarioWorld;
using scenarios::WorldConfig;

namespace {

struct DriverOptions {
  std::string Micro;        ///< run one micro by class name (default: all)
  std::string Workload;     ///< run a Table 3 workload instead
  uint64_t Scale = 4096;    ///< workload scale divisor
  unsigned Threads = 1;     ///< >1: concurrent workload driver
  bool RecordOnly = false;  ///< TraceMode::RecordOnly instead of both
  std::string TracePath;    ///< keep the trace file here (default: temp)
  std::string ChromePath;   ///< also export chrome trace JSON
  bool Counters = false;    ///< print the aggregated counters report
  std::vector<std::string> Machines; ///< replay machine filter
};

void printUsage() {
  std::printf(
      "usage: jinn-replay [options]\n"
      "  Records boundary-crossing traces, replays them through freshly\n"
      "  synthesized machines, and verifies the inline/replay report lists\n"
      "  are identical. Default: all microbenchmarks in record+replay mode.\n"
      "\n"
      "  --micro <class>     run one microbenchmark (e.g. LocalDangling)\n"
      "  --workload <name>   record a Table 3 workload (e.g. jack, db)\n"
      "  --scale <n>         workload scale divisor (default 4096)\n"
      "  --threads <n>       drive the workload from <n> OS threads\n"
      "  --record-only       record without inline machines; replay is the\n"
      "                      only checker (no inline comparison)\n"
      "  --trace <path>      keep the binary trace file at <path>\n"
      "  --chrome <path>     write chrome://tracing JSON to <path>\n"
      "  --counters          print the aggregated counters report\n"
      "  --machines <a,b>    replay only these machines\n");
}

bool reportsEqual(const agent::JinnReport &A, const agent::JinnReport &B) {
  return A.Machine == B.Machine && A.Function == B.Function &&
         A.Message == B.Message && A.EndOfRun == B.EndOfRun;
}

bool reportListsEqual(std::vector<agent::JinnReport> A,
                      std::vector<agent::JinnReport> B, bool Sorted) {
  if (A.size() != B.size())
    return false;
  if (Sorted) {
    auto Key = [](const agent::JinnReport &R) {
      return std::make_tuple(R.Machine, R.Function, R.Message, R.EndOfRun);
    };
    auto Less = [&](const agent::JinnReport &X, const agent::JinnReport &Y) {
      return Key(X) < Key(Y);
    };
    std::sort(A.begin(), A.end(), Less);
    std::sort(B.begin(), B.end(), Less);
  }
  for (size_t I = 0; I < A.size(); ++I)
    if (!reportsEqual(A[I], B[I]))
      return false;
  return true;
}

/// Result of one record/round-trip/replay cycle.
struct CycleResult {
  uint64_t Events = 0;
  size_t InlineReports = 0;
  size_t ReplayReports = 0;
  bool Match = false;
  std::string Error; ///< non-empty on file/infrastructure failure
};

/// Records \p Run into \p World's recorder, round-trips the trace through
/// the binary file format, replays it, and compares report lists. The
/// world must be configured with a recording Jinn mode; \p Run executes
/// the scenario (the world is shut down afterwards). \p SortReports
/// relaxes the comparison to multiset equality for concurrent drivers,
/// where cross-thread inline report order is scheduler-dependent.
CycleResult runCycle(ScenarioWorld &World, const DriverOptions &Opts,
                     const std::function<void()> &Run, bool SortReports) {
  CycleResult Out;
  Run();
  World.shutdown();

  trace::Trace Recorded = World.Jinn->recorder()->collect();

  std::string Path = Opts.TracePath.empty() ? "jinn_replay.jinntrace"
                                            : Opts.TracePath;
  std::string Err;
  trace::Trace FromDisk;
  if (!trace::writeTraceFile(Recorded, Path, &Err) ||
      !trace::readTraceFile(FromDisk, Path, &Err)) {
    Out.Error = Err;
    return Out;
  }
  if (Opts.TracePath.empty())
    std::remove(Path.c_str());

  if (!Opts.ChromePath.empty() &&
      !trace::writeChromeTrace(FromDisk, Opts.ChromePath, &Err)) {
    Out.Error = Err;
    return Out;
  }

  trace::ReplayOptions ReplayOpts;
  ReplayOpts.EnabledMachines = Opts.Machines;
  trace::ReplayResult Replayed =
      trace::replayTrace(FromDisk, World.Vm, ReplayOpts);

  if (Opts.Counters) {
    trace::TraceCounters Counters = trace::computeCounters(FromDisk);
    auto Violations = Replayed.violationsPerMachine();
    trace::printCountersReport(stdout, Counters, &Replayed.MachineTransitions,
                               &Violations);
  }

  Out.Events = Replayed.EventsReplayed;
  Out.ReplayReports = Replayed.Reports.size();
  if (World.Jinn->mode() == agent::TraceMode::RecordAndReplay) {
    const auto &Inline = World.Jinn->reporter().reports();
    Out.InlineReports = Inline.size();
    Out.Match = reportListsEqual(Inline, Replayed.Reports, SortReports);
  } else {
    // Record-only: there is no inline list to compare against; replay is
    // the checker. Success means the replay ran the whole trace.
    Out.Match = true;
  }
  return Out;
}

WorldConfig configFor(const DriverOptions &Opts) {
  WorldConfig Config;
  Config.Checker = scenarios::CheckerKind::Jinn;
  Config.JinnMode = Opts.RecordOnly ? agent::TraceMode::RecordOnly
                                    : agent::TraceMode::RecordAndReplay;
  return Config;
}

int runMicros(const DriverOptions &Opts) {
  std::printf("%-22s %8s %8s %8s  %s\n", "microbenchmark", "events", "inline",
              "replay", "verdict");
  int Failures = 0;
  for (const scenarios::MicroInfo &Info : scenarios::allMicrobenchmarks()) {
    if (!Opts.Micro.empty() && Opts.Micro != Info.ClassName)
      continue;
    ScenarioWorld World(configFor(Opts));
    CycleResult R = runCycle(
        World, Opts,
        [&] { scenarios::runMicrobenchmark(Info.Id, World); },
        /*SortReports=*/false);
    bool Pass = R.Error.empty() && R.Match;
    if (Opts.RecordOnly && Info.DetectableAtBoundary)
      Pass = Pass && R.ReplayReports > 0; // replay must catch the bug
    if (!Pass)
      ++Failures;
    std::printf("%-22s %8llu %8zu %8zu  %s%s%s\n", Info.ClassName,
                (unsigned long long)R.Events, R.InlineReports, R.ReplayReports,
                Pass ? "PASS" : "FAIL", R.Error.empty() ? "" : " ",
                R.Error.c_str());
  }
  if (!Opts.Micro.empty() && Failures == 0) {
    // Verify the filter actually matched something.
    bool Known = false;
    for (const scenarios::MicroInfo &Info : scenarios::allMicrobenchmarks())
      Known |= Opts.Micro == Info.ClassName;
    if (!Known) {
      std::fprintf(stderr, "jinn-replay: unknown micro '%s'\n",
                   Opts.Micro.c_str());
      return 1;
    }
  }
  std::printf("%s: %d failure(s)\n",
              Opts.RecordOnly ? "record-only replay" : "replay determinism",
              Failures);
  return Failures ? 1 : 0;
}

int runWorkload(const DriverOptions &Opts) {
  const workloads::WorkloadInfo *Info = workloads::workloadByName(Opts.Workload);
  if (!Info) {
    std::fprintf(stderr, "jinn-replay: unknown workload '%s'\n",
                 Opts.Workload.c_str());
    return 1;
  }
  ScenarioWorld World(configFor(Opts));
  workloads::prepareWorkloadWorld(World);
  workloads::WorkloadRun Run;
  CycleResult R = runCycle(
      World, Opts,
      [&] {
        Run = Opts.Threads > 1
                  ? workloads::runWorkloadConcurrent(*Info, World, Opts.Scale,
                                                     Opts.Threads)
                  : workloads::runWorkload(*Info, World, Opts.Scale);
      },
      /*SortReports=*/Opts.Threads > 1);
  if (!R.Error.empty()) {
    std::fprintf(stderr, "jinn-replay: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("workload %s: %llu crossings, %llu events, inline %zu / "
              "replay %zu reports -> %s\n",
              Info->Name,
              (unsigned long long)(Run.JniCalls + Run.NativeTransitions),
              (unsigned long long)R.Events, R.InlineReports, R.ReplayReports,
              R.Match ? "PASS" : "FAIL");
  return R.Match ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  DriverOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    auto Value = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "jinn-replay: %s needs a value\n", Flag);
        std::exit(1);
      }
      return Argv[++I];
    };
    if (std::strcmp(Argv[I], "--micro") == 0) {
      Opts.Micro = Value("--micro");
    } else if (std::strcmp(Argv[I], "--workload") == 0) {
      Opts.Workload = Value("--workload");
    } else if (std::strcmp(Argv[I], "--scale") == 0) {
      Opts.Scale = std::strtoull(Value("--scale"), nullptr, 10);
      if (!Opts.Scale)
        Opts.Scale = 1;
    } else if (std::strcmp(Argv[I], "--threads") == 0) {
      Opts.Threads = (unsigned)std::strtoul(Value("--threads"), nullptr, 10);
      if (!Opts.Threads)
        Opts.Threads = 1;
    } else if (std::strcmp(Argv[I], "--record-only") == 0) {
      Opts.RecordOnly = true;
    } else if (std::strcmp(Argv[I], "--trace") == 0) {
      Opts.TracePath = Value("--trace");
    } else if (std::strcmp(Argv[I], "--chrome") == 0) {
      Opts.ChromePath = Value("--chrome");
    } else if (std::strcmp(Argv[I], "--counters") == 0) {
      Opts.Counters = true;
    } else if (std::strcmp(Argv[I], "--machines") == 0) {
      std::string List = Value("--machines");
      size_t Pos = 0;
      while (Pos != std::string::npos) {
        size_t Comma = List.find(',', Pos);
        std::string Name = List.substr(
            Pos, Comma == std::string::npos ? Comma : Comma - Pos);
        if (!Name.empty())
          Opts.Machines.push_back(Name);
        Pos = Comma == std::string::npos ? Comma : Comma + 1;
      }
    } else if (std::strcmp(Argv[I], "--help") == 0) {
      printUsage();
      return 0;
    } else {
      std::fprintf(stderr, "jinn-replay: unknown argument '%s'\n", Argv[I]);
      printUsage();
      return 1;
    }
  }

  if (!Opts.Workload.empty())
    return runWorkload(Opts);
  return runMicros(Opts);
}
