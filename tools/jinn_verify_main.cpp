//===- tools/jinn_verify_main.cpp - Static verification CLI --------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// jinn-verify: static abstract interpretation of client crossing programs
/// against the full machine set (analysis/verify). Sources:
///
///   jinn-verify --micros     every Table-1 microbenchmark: the static
///                            must-verdict must equal the dynamic report
///                            list byte-for-byte (buggy micros flagged,
///                            fixed variants and pitfall 8 clean)
///   jinn-verify --corpus     generator-derived fuzz sequences: one clean
///                            path per machine (no verdict allowed) plus
///                            every bug op's path (must == oracle)
///   jinn-verify --examples   branching/looping harness CFGs (may vs must
///                            classification, fixpoints, widening)
///   jinn-verify --trace <f>  lift a recorded binary trace file and print
///                            its static verdict
///   jinn-verify --json       machine-readable report on stdout
///
/// With no source flag, --micros and --examples run. Exit status is 0 iff
/// every checked contract holds.
///
//===----------------------------------------------------------------------===//

#include "analysis/verify/Examples.h"
#include "analysis/verify/Interp.h"
#include "analysis/verify/Lift.h"
#include "fuzz/Generator.h"
#include "scenarios/Scenarios.h"
#include "support/Format.h"
#include "trace/TraceFile.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace jinn;
using namespace jinn::analysis::verify;

namespace {

struct Options {
  bool Micros = false;
  bool Corpus = false;
  bool Examples = false;
  bool Json = false;
  std::string TracePath;
};

/// One verified source program and its contract check.
struct SourceResult {
  std::string Kind;   ///< "micro" / "corpus" / "example" / "trace"
  std::string Source; ///< program name
  Verdict V;
  std::vector<agent::JinnReport> Oracle;
  std::vector<std::string> Failures;

  bool pass() const { return Failures.empty(); }
};

std::string describeReport(const agent::JinnReport &R) {
  return formatString("[%s] %s: %s%s", R.Machine.c_str(), R.Function.c_str(),
                      R.Message.c_str(), R.EndOfRun ? " (end of run)" : "");
}

bool sameReport(const agent::JinnReport &A, const agent::JinnReport &B) {
  return A.Machine == B.Machine && A.Function == B.Function &&
         A.Message == B.Message && A.EndOfRun == B.EndOfRun;
}

/// The straight-line contract shared by micros and corpus paths: the
/// must-verdict is byte-identical to the dynamic oracle and nothing is
/// classified may (one path, so may would contradict the oracle).
void checkAgainstOracle(SourceResult &R) {
  if (R.V.Must.size() != R.Oracle.size()) {
    R.Failures.push_back(formatString(
        "must-verdict count %zu != dynamic report count %zu",
        R.V.Must.size(), R.Oracle.size()));
  } else {
    for (size_t I = 0; I < R.Oracle.size(); ++I)
      if (!sameReport(R.V.Must[I], R.Oracle[I]))
        R.Failures.push_back(formatString(
            "must-verdict %zu diverges: static %s vs dynamic %s", I,
            describeReport(R.V.Must[I]).c_str(),
            describeReport(R.Oracle[I]).c_str()));
  }
  for (const agent::JinnReport &May : R.V.May)
    R.Failures.push_back(formatString(
        "straight-line program classified a report as may: %s",
        describeReport(May).c_str()));
}

std::vector<SourceResult> runMicros(const std::vector<analysis::MachineModel>
                                        &Models) {
  std::vector<SourceResult> Out;
  for (const scenarios::MicroInfo &Info : scenarios::allMicrobenchmarks()) {
    SourceResult R;
    R.Kind = "micro";
    R.Source = Info.ClassName;
    LiftedProgram P = liftMicro(Info.Id);
    R.V = verifyCfg(P.Cfg, Models);
    R.Oracle = P.Oracle;
    checkAgainstOracle(R);
    if (Info.DetectableAtBoundary && R.V.Must.empty())
      R.Failures.push_back("buggy micro not flagged as must-bug");
    if (!Info.DetectableAtBoundary && !R.V.Must.empty())
      R.Failures.push_back(formatString(
          "clean/undetectable micro flagged: %s",
          describeReport(R.V.Must.front()).c_str()));
    Out.push_back(std::move(R));
  }
  return Out;
}

std::vector<SourceResult> runCorpus(const std::vector<analysis::MachineModel>
                                        &Models) {
  std::vector<SourceResult> Out;
  fuzz::Generator Gen(0x76657269667921ULL); // fixed seed: "verify!"

  for (const analysis::MachineModel &Model : Models) {
    SourceResult R;
    R.Kind = "corpus";
    R.Source = "clean:" + Model.Name;
    LiftedProgram P =
        liftJniSequence(Gen.cleanJniSequence(Model.Name, Out.size()));
    R.V = verifyCfg(P.Cfg, Models);
    R.Oracle = P.Oracle;
    checkAgainstOracle(R);
    if (!R.Oracle.empty())
      R.Failures.push_back("clean path produced dynamic reports");
    Out.push_back(std::move(R));
  }

  for (const fuzz::FuzzOp &Op : fuzz::jniOps()) {
    if (Op.Kind != fuzz::OpKind::Bug)
      continue;
    SourceResult R;
    R.Kind = "corpus";
    R.Source = std::string("bug:") + Op.Name;
    LiftedProgram P =
        liftJniSequence(Gen.bugJniSequence(Op.Name, Out.size()));
    R.V = verifyCfg(P.Cfg, Models);
    R.Oracle = P.Oracle;
    checkAgainstOracle(R);
    Out.push_back(std::move(R));
  }
  return Out;
}

std::vector<SourceResult> runExamples(const std::vector<
                                      analysis::MachineModel> &Models) {
  std::vector<SourceResult> Out;
  for (const VerifyExample &E : verifyExamples()) {
    SourceResult R;
    R.Kind = "example";
    R.Source = E.Cfg.Name;
    R.V = verifyCfg(E.Cfg, Models);

    auto FromMachine = [&E](const std::vector<agent::JinnReport> &Reports) {
      for (const agent::JinnReport &Rep : Reports)
        if (Rep.Machine == E.Machine)
          return true;
      return false;
    };
    if (E.ExpectMust != FromMachine(R.V.Must))
      R.Failures.push_back(formatString(
          "expected must=%d from machine \"%s\", got %zu must report(s)",
          E.ExpectMust ? 1 : 0, E.Machine.c_str(), R.V.Must.size()));
    if (E.ExpectMay != FromMachine(R.V.May))
      R.Failures.push_back(formatString(
          "expected may=%d from machine \"%s\", got %zu may report(s)",
          E.ExpectMay ? 1 : 0, E.Machine.c_str(), R.V.May.size()));
    if (!E.ExpectMust && !E.ExpectMay && R.V.flagged())
      R.Failures.push_back("clean example produced a verdict");
    if (E.ExpectWidening && R.V.Stats.Widenings == 0)
      R.Failures.push_back("example expected interval widening; none ran");
    Out.push_back(std::move(R));
  }
  return Out;
}

SourceResult runTraceFile(const std::string &Path,
                          const std::vector<analysis::MachineModel> &Models) {
  SourceResult R;
  R.Kind = "trace";
  R.Source = Path;
  trace::Trace T;
  std::string Err;
  if (!trace::readTraceFile(T, Path, &Err)) {
    R.Failures.push_back("cannot read trace file: " + Err);
    return R;
  }
  // A foreign trace cannot be replayed (its entity words are another
  // process's addresses), so it lifts without witnessed hints and the
  // verdict covers the spec-decidable counter checks only.
  scenarios::WorldConfig Config;
  scenarios::ScenarioWorld World(Config);
  R.V = verifyCfg(liftTrace(T, World.Vm, Path, /*PinWitnessed=*/false),
                  Models);
  return R;
}

std::string jsonEscaped(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

void printReportListJson(const char *Key,
                         const std::vector<agent::JinnReport> &Reports,
                         const char *Trailer) {
  std::printf("      \"%s\": [", Key);
  for (size_t I = 0; I < Reports.size(); ++I)
    std::printf(
        "%s\n        {\"machine\": \"%s\", \"function\": \"%s\", "
        "\"message\": \"%s\", \"end_of_run\": %s}",
        I ? "," : "", jsonEscaped(Reports[I].Machine).c_str(),
        jsonEscaped(Reports[I].Function).c_str(),
        jsonEscaped(Reports[I].Message).c_str(),
        Reports[I].EndOfRun ? "true" : "false");
  std::printf("%s]%s\n", Reports.empty() ? "" : "\n      ", Trailer);
}

void printJson(const std::vector<SourceResult> &Results, bool Pass) {
  std::printf("{\n  \"pass\": %s,\n  \"sources\": [\n",
              Pass ? "true" : "false");
  for (size_t I = 0; I < Results.size(); ++I) {
    const SourceResult &R = Results[I];
    std::printf("    {\n      \"kind\": \"%s\",\n      \"source\": \"%s\",\n"
                "      \"pass\": %s,\n",
                R.Kind.c_str(), jsonEscaped(R.Source).c_str(),
                R.pass() ? "true" : "false");
    printReportListJson("must", R.V.Must, ",");
    printReportListJson("may", R.V.May, ",");
    printReportListJson("oracle", R.Oracle, ",");
    std::printf("      \"failures\": [");
    for (size_t F = 0; F < R.Failures.size(); ++F)
      std::printf("%s\"%s\"", F ? ", " : "",
                  jsonEscaped(R.Failures[F]).c_str());
    std::printf("],\n");
    std::printf("      \"stats\": {\"configs\": %llu, \"iterations\": %llu, "
                "\"widenings\": %llu, \"abstract_reports\": %llu, "
                "\"abstract_confirmed\": %llu}\n    }%s\n",
                static_cast<unsigned long long>(R.V.Stats.ConfigsExplored),
                static_cast<unsigned long long>(R.V.Stats.BlockIterations),
                static_cast<unsigned long long>(R.V.Stats.Widenings),
                static_cast<unsigned long long>(R.V.Stats.AbstractReports),
                static_cast<unsigned long long>(R.V.Stats.AbstractConfirmed),
                I + 1 < Results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

void printText(const std::vector<SourceResult> &Results, bool Pass) {
  size_t MustTotal = 0, MayTotal = 0;
  uint64_t Abstract = 0, Confirmed = 0;
  for (const SourceResult &R : Results) {
    const char *Tag = R.pass() ? "ok  " : "FAIL";
    std::printf("%s %-8s %-28s must=%zu may=%zu oracle=%zu\n", Tag,
                R.Kind.c_str(), R.Source.c_str(), R.V.Must.size(),
                R.V.May.size(), R.Oracle.size());
    for (const std::string &F : R.Failures)
      std::printf("       - %s\n", F.c_str());
    MustTotal += R.V.Must.size();
    MayTotal += R.V.May.size();
    Abstract += R.V.Stats.AbstractReports;
    Confirmed += R.V.Stats.AbstractConfirmed;
  }
  std::printf("\njinn-verify: %s (%zu source(s), %zu must, %zu may; "
              "%llu abstract counter-guard report(s), %llu confirmed "
              "dynamically)\n",
              Pass ? "PASS" : "FAIL", Results.size(), MustTotal, MayTotal,
              static_cast<unsigned long long>(Abstract),
              static_cast<unsigned long long>(Confirmed));
}

int usage() {
  std::fprintf(
      stderr,
      "usage: jinn-verify [--micros] [--corpus] [--examples]\n"
      "                   [--trace <file>] [--json]\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--micros") == 0)
      Opts.Micros = true;
    else if (std::strcmp(Argv[I], "--corpus") == 0)
      Opts.Corpus = true;
    else if (std::strcmp(Argv[I], "--examples") == 0)
      Opts.Examples = true;
    else if (std::strcmp(Argv[I], "--json") == 0)
      Opts.Json = true;
    else if (std::strcmp(Argv[I], "--trace") == 0 && I + 1 < Argc)
      Opts.TracePath = Argv[++I];
    else
      return usage();
  }
  if (!Opts.Micros && !Opts.Corpus && !Opts.Examples &&
      Opts.TracePath.empty()) {
    Opts.Micros = true;
    Opts.Examples = true;
  }

  std::vector<analysis::MachineModel> Models = verifierModels();
  std::vector<SourceResult> Results;
  if (Opts.Micros)
    for (SourceResult &R : runMicros(Models))
      Results.push_back(std::move(R));
  if (Opts.Corpus)
    for (SourceResult &R : runCorpus(Models))
      Results.push_back(std::move(R));
  if (Opts.Examples)
    for (SourceResult &R : runExamples(Models))
      Results.push_back(std::move(R));
  if (!Opts.TracePath.empty())
    Results.push_back(runTraceFile(Opts.TracePath, Models));

  bool Pass = true;
  for (const SourceResult &R : Results)
    Pass &= R.pass();

  if (Opts.Json)
    printJson(Results, Pass);
  else
    printText(Results, Pass);
  return Pass ? 0 : 1;
}
