#!/usr/bin/env python3
"""Gates the production-monitoring soak bench (BENCH_monitor_soak.json).

Usage: monitor_gate.py <baseline.json> <fresh.json> [p99-threshold]

Three checks, all on the fresh run:

1. RSS ceiling: "max_peak_rss_mb" must stay under "rss_ceiling_mb" (both
   are emitted by the bench itself, so the ceiling travels with the run).
2. p99 latency: the sampled16 p99 crossing latency must not regress more
   than the threshold (default 1.25x) against the committed baseline.
   Skipped with a note when either side lacks the entry or the baseline
   is zero (e.g. a run too short to pair any crossings).
3. Detection floor: the seeded-bug tenant must yield at least one report
   at sampling rate 16 ("reports_n16" > 0), and when the bench emitted a
   "replay_verified" flag it must be "true".

Exit codes: 0 pass, 1 gate failure, 2 usage or unreadable/malformed input.
"""
import json
import sys

P99_KEY = "sampled16/p99_crossing_ns"


def load_entries(path):
    """Returns {name: value} (numeric or string); exits 2 on bad input."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as err:
        print("monitor_gate: cannot read %s: %s" % (path, err),
              file=sys.stderr)
        sys.exit(2)
    except ValueError as err:
        print("monitor_gate: %s is not valid JSON: %s" % (path, err),
              file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict) or not isinstance(doc.get("results"), list):
        print("monitor_gate: %s has no \"results\" array" % path,
              file=sys.stderr)
        sys.exit(2)
    out = {}
    for entry in doc["results"]:
        if isinstance(entry, dict) and isinstance(entry.get("name"), str):
            out[entry["name"]] = entry.get("value")
    return out


def number(entries, name):
    try:
        return float(entries[name])
    except (KeyError, TypeError, ValueError):
        return None


def main():
    if len(sys.argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 1.25
    except ValueError:
        print("monitor_gate: threshold %r is not a number" % sys.argv[3],
              file=sys.stderr)
        return 2
    base = load_entries(sys.argv[1])
    fresh = load_entries(sys.argv[2])
    failures = []

    rss = number(fresh, "max_peak_rss_mb")
    ceiling = number(fresh, "rss_ceiling_mb")
    if rss is None or ceiling is None:
        failures.append("fresh run lacks max_peak_rss_mb/rss_ceiling_mb")
    elif rss >= ceiling:
        failures.append("soak RSS %.1f MB breached the %.0f MB ceiling"
                        % (rss, ceiling))

    base_p99 = number(base, P99_KEY)
    fresh_p99 = number(fresh, P99_KEY)
    if base_p99 is None or fresh_p99 is None:
        print("monitor_gate: note: %s missing on one side, p99 not gated"
              % P99_KEY, file=sys.stderr)
    elif base_p99 <= 0:
        print("monitor_gate: note: baseline %s is %g, p99 not gated"
              % (P99_KEY, base_p99), file=sys.stderr)
    elif fresh_p99 > threshold * base_p99:
        failures.append(
            "%s: %.0f ns vs baseline %.0f ns (%.0f%%, limit %.0f%%)"
            % (P99_KEY, fresh_p99, base_p99, 100 * fresh_p99 / base_p99,
               100 * threshold))

    reports_n16 = number(fresh, "reports_n16")
    if reports_n16 is None:
        failures.append("fresh run lacks reports_n16")
    elif reports_n16 <= 0:
        failures.append("seeded-bug tenant yielded zero reports at N=16")

    verified = fresh.get("replay_verified")
    if isinstance(verified, str) and verified != "true":
        failures.append("sampled reports did not replay from the retained "
                        "segments (replay_verified=%s)" % verified)

    for failure in failures:
        print("monitor_gate: %s" % failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
