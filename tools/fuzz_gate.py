#!/usr/bin/env python3
"""Fails when fuzzer transition coverage drops below the committed baseline.

Usage: fuzz_gate.py <baseline.json> <fresh.json> [floor]

Both files are jinn-fuzz --coverage-json documents:
  {"seed": N, "domain": "jni", "machines": [{"name", "covered",
   "reachable", "fraction"}, ...]}

Two gates, both per machine:
  1. absolute floor: fraction must reach <floor> (default 0.90);
  2. no regression: a machine present in the baseline must not cover a
     smaller fraction than the baseline recorded.

A machine present only in the fresh document is gated by the floor alone
(new machines must arrive with coverage); a machine present only in the
baseline is an error — coverage of an existing machine must never
silently disappear from the report.
"""
import json
import sys


def rows(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for entry in doc.get("machines", []):
        out[entry["name"]] = (float(entry["fraction"]),
                              int(entry["covered"]),
                              int(entry["reachable"]))
    return out


def main():
    if len(sys.argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    floor = float(sys.argv[3]) if len(sys.argv) > 3 else 0.90
    base, fresh = rows(sys.argv[1]), rows(sys.argv[2])
    failures = []
    for name, (fraction, covered, reachable) in sorted(fresh.items()):
        if fraction < floor:
            failures.append(
                "%s: %d/%d edges (%.0f%%) below the %.0f%% floor"
                % (name, covered, reachable, 100 * fraction, 100 * floor))
        baseline = base.get(name)
        if baseline is not None and fraction < baseline[0]:
            failures.append(
                "%s: %.0f%% regressed from the committed %.0f%% baseline"
                % (name, 100 * fraction, 100 * baseline[0]))
    for name in sorted(set(base) - set(fresh)):
        failures.append("%s: present in the baseline but missing from the "
                        "fresh coverage report" % name)
    for failure in failures:
        print("fuzz_gate: %s" % failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
