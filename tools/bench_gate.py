#!/usr/bin/env python3
"""Fails when a fresh bench JSON regresses against its committed baseline.

Usage: bench_gate.py <baseline.json> <fresh.json> [threshold]

Three gates run:

1. Throughput: only entries whose unit ends in "/s" are compared: a fresh
   value below threshold * baseline (default 0.75, i.e. a >25% drop) is a
   regression. Counters, most ratios, and latency entries are ignored —
   they vary legitimately with configuration or would need an inverse
   comparison. Entries present only on one side are ignored so adding or
   renaming bench rows never trips the gate, and zero/negative baseline
   entries are skipped with a note instead of dividing by them.

2. Ratio ceiling: entries named "ratio/..." with unit "x" are intra-run
   quotients of two timings from the same process (e.g. fused-tier over
   sparse-tier ns/crossing in bench_crossing_latency), so the host-speed
   factor cancels and they stay meaningful on a loaded runner where raw
   "/s" numbers swing several-fold. Lower is better; a fresh ratio above
   baseline / threshold (default: >1.33x the baseline ratio) is a
   regression. Only the "ratio/" prefix is gated — table-style "x"
   entries (table3 normalized runtimes) remain ungated noise.

3. Scaling-efficiency floor (bench_mt_scaling only): the fresh
   "checking off/8t efficiency" entry must be >= 0.7 speedup per thread.
   The floor is absolute (no baseline needed) but only enforced when the
   fresh run's "hardware_threads" entry reports at least 8 hardware
   threads — a 2-core runner cannot distinguish a lock convoy from a lack
   of cores. Override the floor with JINN_BENCH_EFFICIENCY_FLOOR, and
   note tools/run_benches.sh skips this script entirely under
   JINN_BENCH_NO_GATE=1.

Exit codes: 0 pass, 1 regression, 2 usage or unreadable/malformed input.
"""
import json
import os
import sys

EFFICIENCY_FLOOR = 0.7
EFFICIENCY_THREADS = 8
EFFICIENCY_CONFIG = "checking off"


def load_entries(path):
    """Returns {name: (value, unit)}; exits 2 with a message on bad input."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as err:
        print("bench_gate: cannot read %s: %s" % (path, err), file=sys.stderr)
        sys.exit(2)
    except ValueError as err:
        print("bench_gate: %s is not valid JSON: %s" % (path, err),
              file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict) or not isinstance(doc.get("results"), list):
        print("bench_gate: %s has no \"results\" array" % path,
              file=sys.stderr)
        sys.exit(2)
    out = {}
    for entry in doc["results"]:
        if not isinstance(entry, dict):
            continue
        name, value = entry.get("name"), entry.get("value")
        if not isinstance(name, str):
            print("bench_gate: %s: skipping entry without a name: %r"
                  % (path, entry), file=sys.stderr)
            continue
        unit = entry.get("unit", "")
        unit = unit if isinstance(unit, str) else ""
        try:
            value = float(value)
        except (TypeError, ValueError):
            # String-valued entries (behavior matrix cells, boolean
            # acceptance flags) are legitimate; only a throughput entry
            # with a non-numeric value deserves a warning.
            if unit.endswith("/s"):
                print("bench_gate: %s: skipping %s: non-numeric value %r"
                      % (path, name, value), file=sys.stderr)
            continue
        out[name] = (value, unit)
    return out


def throughput_failures(base, fresh, threshold):
    failures = []
    for name, (baseline, unit) in sorted(base.items()):
        if not unit.endswith("/s"):
            continue
        if name not in fresh:
            continue
        current = fresh[name][0]
        if baseline <= 0:
            print("bench_gate: note: baseline %s is %g, not gated"
                  % (name, baseline), file=sys.stderr)
            continue
        if current < threshold * baseline:
            failures.append(
                "%s: %.0f vs baseline %.0f (%.0f%%, floor %.0f%%)"
                % (name, current, baseline, 100 * current / baseline,
                   100 * threshold))
    return failures


def ratio_failures(base, fresh, threshold):
    """Ceiling on intra-run "ratio/..." entries (lower is better)."""
    failures = []
    for name, (baseline, unit) in sorted(base.items()):
        if unit != "x" or not name.startswith("ratio/"):
            continue
        if name not in fresh:
            continue
        current = fresh[name][0]
        if baseline <= 0:
            print("bench_gate: note: baseline %s is %g, not gated"
                  % (name, baseline), file=sys.stderr)
            continue
        ceiling = baseline / threshold
        if current > ceiling:
            failures.append(
                "%s: %.3fx vs baseline %.3fx (ceiling %.3fx)"
                % (name, current, baseline, ceiling))
    return failures


def efficiency_failures(fresh):
    """Absolute floor on multi-thread scaling efficiency (mt_scaling)."""
    key = "%s/%ut efficiency" % (EFFICIENCY_CONFIG, EFFICIENCY_THREADS)
    if key not in fresh:
        return []  # not an mt_scaling result, or 8 threads were not run
    try:
        floor = float(os.environ.get("JINN_BENCH_EFFICIENCY_FLOOR",
                                     EFFICIENCY_FLOOR))
    except ValueError:
        print("bench_gate: ignoring malformed JINN_BENCH_EFFICIENCY_FLOOR",
              file=sys.stderr)
        floor = EFFICIENCY_FLOOR
    hardware = fresh.get("hardware_threads", (0.0, ""))[0]
    if hardware < EFFICIENCY_THREADS:
        print("bench_gate: note: %g hardware thread(s) < %u, efficiency "
              "floor not enforced" % (hardware, EFFICIENCY_THREADS),
              file=sys.stderr)
        return []
    value = fresh[key][0]
    if value < floor:
        return ["%s: %.2f speedup/thread below the %.2f floor "
                "(lock convoy in the substrate?)" % (key, value, floor)]
    return []


def main():
    if len(sys.argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 0.75
    except ValueError:
        print("bench_gate: threshold %r is not a number" % sys.argv[3],
              file=sys.stderr)
        return 2
    base = load_entries(sys.argv[1])
    fresh = load_entries(sys.argv[2])
    failures = throughput_failures(base, fresh, threshold)
    failures += ratio_failures(base, fresh, threshold)
    failures += efficiency_failures(fresh)
    for failure in failures:
        print("bench_gate: %s" % failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
