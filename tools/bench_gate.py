#!/usr/bin/env python3
"""Fails when a fresh bench JSON regresses against its committed baseline.

Usage: bench_gate.py <baseline.json> <fresh.json> [threshold]

Only throughput-like entries (unit ending in "/s") are gated: a fresh
value below threshold * baseline (default 0.75, i.e. a >25% drop) is a
regression. Counters, ratios, and latency entries are ignored — they vary
legitimately with configuration or would need an inverse comparison.
Entries present only on one side are ignored so adding or renaming bench
rows never trips the gate.
"""
import json
import sys


def rates(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for entry in doc.get("results", []):
        unit = entry.get("unit", "")
        if isinstance(unit, str) and unit.endswith("/s"):
            out[entry["name"]] = float(entry["value"])
    return out


def main():
    if len(sys.argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 0.75
    base, fresh = rates(sys.argv[1]), rates(sys.argv[2])
    failures = []
    for name, baseline in sorted(base.items()):
        current = fresh.get(name)
        if current is None or baseline <= 0:
            continue
        if current < threshold * baseline:
            failures.append((name, baseline, current))
    for name, baseline, current in failures:
        print(
            "bench_gate: %s: %.0f vs baseline %.0f (%.0f%%, floor %.0f%%)"
            % (name, current, baseline, 100 * current / baseline,
               100 * threshold),
            file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
