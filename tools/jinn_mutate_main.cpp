//===- tools/jinn_mutate_main.cpp - Mutation-testing campaign driver -----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// jinn-mutate: runs the mutation-testing campaign of DESIGN.md §16.
///
///   jinn-mutate --list [--json]        print the mutant registry
///   jinn-mutate --apply <id|name>      activate one mutant and print its
///                                      oracle fingerprint (for diffing)
///   jinn-mutate --run [--only a,b,..]  judge mutants: one worker process
///               [--json <path>]        per mutant, verdicts to stdout and
///               [--check-expectations] optionally to a JSON report
///
/// The campaign isolates each mutant in a child process (re-executing this
/// binary via /proc/self/exe --worker) so that a mutant which crashes the
/// substrate is scored killed-by-crash instead of taking the campaign
/// down. The parent computes the unmutated baseline fingerprint exactly
/// once and hands it to every worker through a temp file; a worker flips
/// its mutant on, recomputes the fingerprint, and reports the diff over a
/// line protocol:
///
///   MUTATE-PHASE mutant-start          (mutant active from here on; a
///                                       crash after this marker kills)
///   MUTATE-DETAIL <oracle>: <line>     one per disagreeing oracle
///   MUTATE-VERDICT id=.. name=.. status=killed|survived oracles=a,b
///
/// --check-expectations makes --run exit nonzero when any verdict differs
/// from the registry's annotation (a surviving mutant that is neither
/// equivalent nor a filed blind spot, or a stale annotation on a mutant
/// the oracles now kill). tools/mutate_gate.py layers the kill-rate floor
/// on top of the JSON report.
///
//===----------------------------------------------------------------------===//

#include "mutate/Harness.h"
#include "mutate/Mutation.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

using namespace jinn;
using namespace jinn::mutate;

namespace {

struct CampaignRow {
  const MutantInfo *Info = nullptr;
  std::string Status; ///< "killed" | "survived" | "error" | "build-failed"
  std::vector<std::string> Oracles;
  std::vector<std::string> Details;
};

std::string jsonEscaped(const std::string &S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

void printList(bool Json) {
  const std::vector<MutantInfo> &Mutants = allMutants();
  if (!Json) {
    std::printf("%-3s %-38s %-22s %-6s %s\n", "id", "name", "class", "target",
                "expectation");
    for (const MutantInfo &Info : Mutants)
      std::printf("%-3d %-38s %-22s %-6s %s\n", Info.Id, Info.Name,
                  Info.OpClass, Info.Target, expectName(Info.Expected));
    std::printf("%zu mutant(s)\n", Mutants.size());
    return;
  }
  std::printf("{\n  \"schema\": \"jinn-mutate-corpus-v1\",\n"
              "  \"mutants\": [\n");
  for (size_t I = 0; I < Mutants.size(); ++I) {
    const MutantInfo &Info = Mutants[I];
    std::printf(
        "    {\"id\": %d, \"name\": \"%s\", \"op_class\": \"%s\",\n"
        "     \"target\": \"%s\", \"site\": \"%s\",\n"
        "     \"expect\": \"%s\",\n"
        "     \"original\": \"%s\",\n"
        "     \"mutated\": \"%s\",\n"
        "     \"rationale\": \"%s\"}%s\n",
        Info.Id, jsonEscaped(Info.Name).c_str(),
        jsonEscaped(Info.OpClass).c_str(), jsonEscaped(Info.Target).c_str(),
        jsonEscaped(Info.Site).c_str(), expectName(Info.Expected),
        jsonEscaped(Info.Original).c_str(), jsonEscaped(Info.Mutated).c_str(),
        jsonEscaped(Info.Rationale).c_str(),
        I + 1 < Mutants.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

int runApply(const std::string &Selector) {
  const MutantInfo *Info = findMutant(Selector);
  if (!Info) {
    std::fprintf(stderr, "jinn-mutate: unknown mutant \"%s\"\n",
                 Selector.c_str());
    return 2;
  }
  std::fprintf(stderr, "# mutant %d (%s) active: %s\n", Info->Id, Info->Name,
               Info->Mutated);
  setActiveMutant(Info->Id);
  for (const std::string &Line : computeFingerprint())
    std::printf("%s\n", Line.c_str());
  return 0;
}

/// Worker side: judge exactly one mutant against the baseline fingerprint
/// the parent computed. All output is line-buffered protocol so the parent
/// still sees the phase marker if the mutated run crashes the process.
int runWorker(int Id, const std::string &BaselinePath) {
  const MutantInfo *Info = findMutant(Id);
  if (!Info) {
    std::fprintf(stderr, "jinn-mutate: unknown worker mutant %d\n", Id);
    return 2;
  }
  std::vector<std::string> Base;
  std::ifstream In(BaselinePath);
  if (!In) {
    std::fprintf(stderr, "jinn-mutate: cannot read baseline %s\n",
                 BaselinePath.c_str());
    return 2;
  }
  for (std::string Line; std::getline(In, Line);)
    Base.push_back(Line);

  std::printf("MUTATE-PHASE mutant-start\n");
  std::fflush(stdout);
  setActiveMutant(Id);
  std::vector<std::string> Mutated = computeFingerprint();
  setActiveMutant(0);

  std::vector<OracleKill> Kills = diffFingerprints(Base, Mutated);
  std::string Oracles;
  for (const OracleKill &K : Kills) {
    std::printf("MUTATE-DETAIL %s: %s\n", K.Oracle.c_str(), K.Detail.c_str());
    if (!Oracles.empty())
      Oracles += ',';
    Oracles += K.Oracle;
  }
  std::printf("MUTATE-VERDICT id=%d name=%s status=%s oracles=%s\n", Info->Id,
              Info->Name, Kills.empty() ? "survived" : "killed",
              Oracles.c_str());
  std::fflush(stdout);
  return 0;
}

/// Parent side: spawn one worker for \p Info and parse its protocol lines.
CampaignRow judgeInWorker(const MutantInfo &Info,
                          const std::string &BaselinePath) {
  CampaignRow Row;
  Row.Info = &Info;

  // /proc/self/exe must be resolved here: inside popen's shell it would
  // name the shell binary, not this driver.
  char Self[4096];
  ssize_t Len = readlink("/proc/self/exe", Self, sizeof(Self) - 1);
  if (Len <= 0) {
    Row.Status = "error";
    Row.Details.push_back("cannot resolve /proc/self/exe");
    return Row;
  }
  Self[Len] = '\0';
  std::string Cmd = formatString("'%s' --worker %d --baseline '%s' 2>&1",
                                 Self, Info.Id, BaselinePath.c_str());
  FILE *Pipe = popen(Cmd.c_str(), "r");
  if (!Pipe) {
    Row.Status = "error";
    Row.Details.push_back("popen failed");
    return Row;
  }

  bool SawStart = false, SawVerdict = false;
  std::vector<std::string> Tail; // last few non-protocol lines, for errors
  char Buf[4096];
  while (std::fgets(Buf, sizeof(Buf), Pipe)) {
    std::string Line(Buf);
    while (!Line.empty() && (Line.back() == '\n' || Line.back() == '\r'))
      Line.pop_back();
    if (Line.rfind("MUTATE-PHASE ", 0) == 0) {
      SawStart = true;
    } else if (Line.rfind("MUTATE-DETAIL ", 0) == 0) {
      Row.Details.push_back(Line.substr(std::strlen("MUTATE-DETAIL ")));
    } else if (Line.rfind("MUTATE-VERDICT ", 0) == 0) {
      SawVerdict = true;
      Row.Status =
          Line.find("status=killed") != std::string::npos ? "killed"
                                                          : "survived";
      size_t At = Line.find("oracles=");
      if (At != std::string::npos) {
        std::string List = Line.substr(At + std::strlen("oracles="));
        size_t Pos = 0;
        while (Pos < List.size()) {
          size_t Comma = List.find(',', Pos);
          if (Comma == std::string::npos)
            Comma = List.size();
          if (Comma > Pos)
            Row.Oracles.push_back(List.substr(Pos, Comma - Pos));
          Pos = Comma + 1;
        }
      }
    } else if (!Line.empty()) {
      Tail.push_back(Line);
      if (Tail.size() > 5)
        Tail.erase(Tail.begin());
    }
  }
  int Rc = pclose(Pipe);

  if (!SawVerdict) {
    if (SawStart) {
      // The mutated fingerprint run took the process down — that is a
      // kill (the oracle battery cannot even complete under the mutant).
      Row.Status = "killed";
      Row.Oracles.push_back("crash");
      Row.Details.push_back(formatString(
          "worker died (status %d) after activating the mutant%s%s", Rc,
          Tail.empty() ? "" : ": ", Tail.empty() ? "" : Tail.back().c_str()));
    } else {
      Row.Status = "error";
      Row.Details.push_back(formatString(
          "worker produced no verdict (status %d)%s%s", Rc,
          Tail.empty() ? "" : ": ", Tail.empty() ? "" : Tail.back().c_str()));
    }
  }
  return Row;
}

void writeJsonReport(const std::string &Path,
                     const std::vector<CampaignRow> &Rows) {
  std::ofstream Out(Path);
  int Killed = 0, Survived = 0, Errors = 0;
  int NonEquivalent = 0, NonEquivalentKilled = 0;
  for (const CampaignRow &Row : Rows) {
    if (Row.Status == "killed")
      ++Killed;
    else if (Row.Status == "survived")
      ++Survived;
    else
      ++Errors;
    if (Row.Info->Expected != Expect::SurvivesEquivalent) {
      ++NonEquivalent;
      if (Row.Status == "killed")
        ++NonEquivalentKilled;
    }
  }
  double KillRate = NonEquivalent
                        ? static_cast<double>(NonEquivalentKilled) /
                              static_cast<double>(NonEquivalent)
                        : 1.0;
  Out << formatString(
      "{\n  \"schema\": \"jinn-mutate-v1\",\n  \"total\": %zu,\n"
      "  \"killed\": %d,\n  \"survived\": %d,\n  \"errors\": %d,\n"
      "  \"non_equivalent\": %d,\n"
      "  \"kill_rate_non_equivalent\": %.4f,\n  \"mutants\": [\n",
      Rows.size(), Killed, Survived, Errors, NonEquivalent, KillRate);
  for (size_t I = 0; I < Rows.size(); ++I) {
    const CampaignRow &Row = Rows[I];
    const MutantInfo &Info = *Row.Info;
    Out << formatString(
        "    {\"id\": %d, \"name\": \"%s\", \"op_class\": \"%s\",\n"
        "     \"target\": \"%s\", \"site\": \"%s\",\n"
        "     \"expect\": \"%s\", \"status\": \"%s\",\n     \"killed_by\": [",
        Info.Id, jsonEscaped(Info.Name).c_str(),
        jsonEscaped(Info.OpClass).c_str(), jsonEscaped(Info.Target).c_str(),
        jsonEscaped(Info.Site).c_str(), expectName(Info.Expected),
        Row.Status.c_str());
    for (size_t O = 0; O < Row.Oracles.size(); ++O)
      Out << formatString("%s\"%s\"", O ? ", " : "",
                          jsonEscaped(Row.Oracles[O]).c_str());
    Out << "],\n     \"details\": [";
    for (size_t D = 0; D < Row.Details.size(); ++D)
      Out << formatString("%s\"%s\"", D ? ", " : "",
                          jsonEscaped(Row.Details[D]).c_str());
    Out << formatString("]}%s\n", I + 1 < Rows.size() ? "," : "");
  }
  Out << "  ]\n}\n";
}

int runCampaign(const std::string &Only, const std::string &JsonPath,
                bool CheckExpectations) {
  // Select the corpus subset.
  std::vector<const MutantInfo *> Selected;
  if (Only.empty()) {
    for (const MutantInfo &Info : allMutants())
      Selected.push_back(&Info);
  } else {
    size_t Pos = 0;
    while (Pos < Only.size()) {
      size_t Comma = Only.find(',', Pos);
      if (Comma == std::string::npos)
        Comma = Only.size();
      std::string Token = Only.substr(Pos, Comma - Pos);
      Pos = Comma + 1;
      if (Token.empty())
        continue;
      const MutantInfo *Info = findMutant(Token);
      if (!Info) {
        std::fprintf(stderr, "jinn-mutate: unknown mutant \"%s\" in --only\n",
                     Token.c_str());
        return 2;
      }
      Selected.push_back(Info);
    }
  }

  // One baseline for the whole campaign: the oracles are deterministic,
  // so every worker diffs against the same unmutated fingerprint.
  std::fprintf(stderr, "jinn-mutate: computing baseline fingerprint...\n");
  std::vector<std::string> Base = computeFingerprint();

  std::string BaselinePath =
      formatString("/tmp/jinn-mutate-baseline.%ld", static_cast<long>(getpid()));
  {
    std::ofstream Out(BaselinePath);
    if (!Out) {
      std::fprintf(stderr, "jinn-mutate: cannot write %s\n",
                   BaselinePath.c_str());
      return 2;
    }
    for (const std::string &Line : Base)
      Out << Line << '\n';
  }
  std::fprintf(stderr, "jinn-mutate: baseline has %zu oracle line(s)\n",
               Base.size());

  std::vector<CampaignRow> Rows;
  for (const MutantInfo *Info : Selected) {
    CampaignRow Row = judgeInWorker(*Info, BaselinePath);
    std::string Oracles;
    for (const std::string &O : Row.Oracles) {
      if (!Oracles.empty())
        Oracles += ',';
      Oracles += O;
    }
    std::printf("%-8s %2d %-38s expect=%-18s %s%s\n", Row.Status.c_str(),
                Info->Id, Info->Name, expectName(Info->Expected),
                Oracles.empty() ? "" : "killed-by=", Oracles.c_str());
    for (const std::string &D : Row.Details)
      std::printf("         - %s\n", D.c_str());
    Rows.push_back(std::move(Row));
  }
  std::remove(BaselinePath.c_str());

  int Killed = 0, Survived = 0, Errors = 0, Mismatches = 0;
  for (const CampaignRow &Row : Rows) {
    if (Row.Status == "killed")
      ++Killed;
    else if (Row.Status == "survived")
      ++Survived;
    else
      ++Errors;
    const char *Expected =
        Row.Info->Expected == Expect::Killed ? "killed" : "survived";
    if (Row.Status != "error" && Row.Status != Expected) {
      ++Mismatches;
      std::printf("MISMATCH mutant %d (%s): annotated %s but %s\n",
                  Row.Info->Id, Row.Info->Name, expectName(Row.Info->Expected),
                  Row.Status.c_str());
    }
  }
  std::printf("jinn-mutate: %d killed, %d survived, %d error(s) of %zu\n",
              Killed, Survived, Errors, Rows.size());

  if (!JsonPath.empty())
    writeJsonReport(JsonPath, Rows);

  if (Errors)
    return 1;
  if (CheckExpectations && Mismatches)
    return 1;
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: jinn-mutate --list [--json]\n"
               "       jinn-mutate --apply <id|name>\n"
               "       jinn-mutate --run [--only id,id,...] [--json <path>]\n"
               "                   [--check-expectations]\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  bool List = false, Run = false, Json = false, CheckExpectations = false;
  std::string Apply, Only, JsonPath, BaselinePath;
  int WorkerId = 0;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--list") == 0)
      List = true;
    else if (std::strcmp(Argv[I], "--run") == 0)
      Run = true;
    else if (std::strcmp(Argv[I], "--json") == 0 && Run && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (std::strcmp(Argv[I], "--json") == 0)
      Json = true;
    else if (std::strcmp(Argv[I], "--apply") == 0 && I + 1 < Argc)
      Apply = Argv[++I];
    else if (std::strcmp(Argv[I], "--only") == 0 && I + 1 < Argc)
      Only = Argv[++I];
    else if (std::strcmp(Argv[I], "--check-expectations") == 0)
      CheckExpectations = true;
    else if (std::strcmp(Argv[I], "--worker") == 0 && I + 1 < Argc)
      WorkerId = std::atoi(Argv[++I]);
    else if (std::strcmp(Argv[I], "--baseline") == 0 && I + 1 < Argc)
      BaselinePath = Argv[++I];
    else
      return usage();
  }

  if (WorkerId)
    return runWorker(WorkerId, BaselinePath);
  if (List) {
    printList(Json);
    return 0;
  }
  if (!Apply.empty())
    return runApply(Apply);
  if (Run)
    return runCampaign(Only, JsonPath, CheckExpectations);
  return usage();
}
