//===- tools/jinn_synth_main.cpp - The Jinn synthesizer CLI --------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end for the synthesizer (paper Figure 5): loads the
/// fourteen state machine specifications and emits the synthesized wrapper
/// source plus a synthesis report.
///
///   jinn-synth [-o wrappers.cpp] [--report]
///
//===----------------------------------------------------------------------===//

#include "jinn/Machines.h"
#include "synth/Emitter.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

using namespace jinn;

int main(int Argc, char **Argv) {
  std::string OutPath;
  bool Report = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "-o") == 0 && I + 1 < Argc) {
      OutPath = Argv[++I];
    } else if (std::strcmp(Argv[I], "--report") == 0) {
      Report = true;
    } else if (std::strcmp(Argv[I], "--help") == 0) {
      std::printf("usage: jinn-synth [-o <file>] [--report]\n"
                  "  Synthesizes the dynamic JNI analysis from the fourteen\n"
                  "  state machine specifications and emits the wrapper\n"
                  "  source (stdout unless -o is given).\n");
      return 0;
    } else {
      std::fprintf(stderr, "jinn-synth: unknown argument '%s'\n", Argv[I]);
      return 1;
    }
  }

  agent::MachineSet Machines;
  std::vector<const spec::MachineBase *> Specs;
  for (spec::MachineBase *Machine : Machines.all())
    Specs.push_back(Machine);

  synth::CodeEmitter Emitter(std::move(Specs));
  std::string Code = Emitter.emit();

  if (Report) {
    std::fprintf(stderr,
                 "jinn-synth: %zu machines -> %zu wrappers, %zu check "
                 "functions, %zu lines\n",
                 Machines.all().size(), Emitter.stats().WrapperFunctions,
                 Emitter.stats().CheckFunctions,
                 Emitter.stats().TotalLines);
  }

  if (OutPath.empty()) {
    std::fwrite(Code.data(), 1, Code.size(), stdout);
    return 0;
  }
  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "jinn-synth: cannot open %s\n", OutPath.c_str());
    return 1;
  }
  Out << Code;
  return 0;
}
