#!/usr/bin/env python3
"""Generates src/jni/JniFunctions.def: the X-macro registry of all 229 JNI
functions in JNIEnv function-table order (JNI 1.6).

Entry forms:
  JNI_FN(Name, Ret, Params, Args)       -- directly wrappable function
  JNI_FN_VA(Name, Ret, Params, Args)    -- variadic ('...') form; delegates
  JNI_FN_VL(Name, Ret, Params, Args)    -- va_list form; delegates

Params is the full parenthesized parameter list including JNIEnv *env;
Args is the matching forwarding list.
"""

TYPES = [
    ("Object", "jobject"),
    ("Boolean", "jboolean"),
    ("Byte", "jbyte"),
    ("Char", "jchar"),
    ("Short", "jshort"),
    ("Int", "jint"),
    ("Long", "jlong"),
    ("Float", "jfloat"),
    ("Double", "jdouble"),
]
CALL_TYPES = TYPES + [("Void", "void")]
PRIM_TYPES = TYPES[1:]  # Boolean..Double

ENTRIES = []


def fn(name, ret, params, kind="JNI_FN"):
    decls = ["JNIEnv *env"]
    args = ["env"]
    for decl, argname in params:
        decls.append(decl)
        args.append(argname)
    ENTRIES.append((kind, name, ret, ", ".join(decls), ", ".join(args)))


def p(decl, name):
    return (decl, name)


# --- 1..30 ---------------------------------------------------------------
fn("GetVersion", "jint", [])
fn("DefineClass", "jclass", [p("const char *name", "name"),
                             p("jobject loader", "loader"),
                             p("const jbyte *buf", "buf"),
                             p("jsize bufLen", "bufLen")])
fn("FindClass", "jclass", [p("const char *name", "name")])
fn("FromReflectedMethod", "jmethodID", [p("jobject method", "method")])
fn("FromReflectedField", "jfieldID", [p("jobject field", "field")])
fn("ToReflectedMethod", "jobject", [p("jclass cls", "cls"),
                                    p("jmethodID methodID", "methodID"),
                                    p("jboolean isStatic", "isStatic")])
fn("GetSuperclass", "jclass", [p("jclass cls", "cls")])
fn("IsAssignableFrom", "jboolean", [p("jclass sub", "sub"),
                                    p("jclass sup", "sup")])
fn("ToReflectedField", "jobject", [p("jclass cls", "cls"),
                                   p("jfieldID fieldID", "fieldID"),
                                   p("jboolean isStatic", "isStatic")])
fn("Throw", "jint", [p("jthrowable obj", "obj")])
fn("ThrowNew", "jint", [p("jclass cls", "cls"),
                        p("const char *message", "message")])
fn("ExceptionOccurred", "jthrowable", [])
fn("ExceptionDescribe", "void", [])
fn("ExceptionClear", "void", [])
fn("FatalError", "void", [p("const char *msg", "msg")])
fn("PushLocalFrame", "jint", [p("jint capacity", "capacity")])
fn("PopLocalFrame", "jobject", [p("jobject result", "result")])
fn("NewGlobalRef", "jobject", [p("jobject obj", "obj")])
fn("DeleteGlobalRef", "void", [p("jobject obj", "obj")])
fn("DeleteLocalRef", "void", [p("jobject obj", "obj")])
fn("IsSameObject", "jboolean", [p("jobject obj1", "obj1"),
                                p("jobject obj2", "obj2")])
fn("NewLocalRef", "jobject", [p("jobject obj", "obj")])
fn("EnsureLocalCapacity", "jint", [p("jint capacity", "capacity")])
fn("AllocObject", "jobject", [p("jclass cls", "cls")])
fn("NewObject", "jobject", [p("jclass cls", "cls"),
                            p("jmethodID methodID", "methodID"),
                            p("...", "...")], kind="JNI_FN_VA")
fn("NewObjectV", "jobject", [p("jclass cls", "cls"),
                             p("jmethodID methodID", "methodID"),
                             p("va_list args", "args")], kind="JNI_FN_VL")
fn("NewObjectA", "jobject", [p("jclass cls", "cls"),
                             p("jmethodID methodID", "methodID"),
                             p("const jvalue *args", "args")])
fn("GetObjectClass", "jclass", [p("jobject obj", "obj")])
fn("IsInstanceOf", "jboolean", [p("jobject obj", "obj"),
                                p("jclass cls", "cls")])
fn("GetMethodID", "jmethodID", [p("jclass cls", "cls"),
                                p("const char *name", "name"),
                                p("const char *sig", "sig")])

# --- Call<T>Method families ----------------------------------------------
def call_family(prefix, recv_decl, recv_name, extra=None):
    for tname, tret in CALL_TYPES:
        base = [p(recv_decl, recv_name)]
        if extra:
            base.append(p(extra[0], extra[1]))
        base.append(p("jmethodID methodID", "methodID"))
        fn(f"{prefix}{tname}Method", tret, base + [p("...", "...")],
           kind="JNI_FN_VA")
        fn(f"{prefix}{tname}MethodV", tret, base + [p("va_list args", "args")],
           kind="JNI_FN_VL")
        fn(f"{prefix}{tname}MethodA", tret,
           base + [p("const jvalue *args", "args")])


call_family("Call", "jobject obj", "obj")
call_family("CallNonvirtual", "jobject obj", "obj", ("jclass cls", "cls"))

fn("GetFieldID", "jfieldID", [p("jclass cls", "cls"),
                              p("const char *name", "name"),
                              p("const char *sig", "sig")])
for tname, tret in TYPES:
    fn(f"Get{tname}Field", tret, [p("jobject obj", "obj"),
                                  p("jfieldID fieldID", "fieldID")])
for tname, tret in TYPES:
    fn(f"Set{tname}Field", "void", [p("jobject obj", "obj"),
                                    p("jfieldID fieldID", "fieldID"),
                                    p(f"{tret} value", "value")])

fn("GetStaticMethodID", "jmethodID", [p("jclass cls", "cls"),
                                      p("const char *name", "name"),
                                      p("const char *sig", "sig")])
call_family("CallStatic", "jclass cls", "cls")

fn("GetStaticFieldID", "jfieldID", [p("jclass cls", "cls"),
                                    p("const char *name", "name"),
                                    p("const char *sig", "sig")])
for tname, tret in TYPES:
    fn(f"GetStatic{tname}Field", tret, [p("jclass cls", "cls"),
                                        p("jfieldID fieldID", "fieldID")])
for tname, tret in TYPES:
    fn(f"SetStatic{tname}Field", "void", [p("jclass cls", "cls"),
                                          p("jfieldID fieldID", "fieldID"),
                                          p(f"{tret} value", "value")])

# --- Strings --------------------------------------------------------------
fn("NewString", "jstring", [p("const jchar *unicodeChars", "unicodeChars"),
                            p("jsize len", "len")])
fn("GetStringLength", "jsize", [p("jstring str", "str")])
fn("GetStringChars", "const jchar *", [p("jstring str", "str"),
                                       p("jboolean *isCopy", "isCopy")])
fn("ReleaseStringChars", "void", [p("jstring str", "str"),
                                  p("const jchar *chars", "chars")])
fn("NewStringUTF", "jstring", [p("const char *bytes", "bytes")])
fn("GetStringUTFLength", "jsize", [p("jstring str", "str")])
fn("GetStringUTFChars", "const char *", [p("jstring str", "str"),
                                         p("jboolean *isCopy", "isCopy")])
fn("ReleaseStringUTFChars", "void", [p("jstring str", "str"),
                                     p("const char *utf", "utf")])

# --- Arrays ---------------------------------------------------------------
fn("GetArrayLength", "jsize", [p("jarray array", "array")])
fn("NewObjectArray", "jobjectArray", [p("jsize length", "length"),
                                      p("jclass elementClass", "elementClass"),
                                      p("jobject initialElement",
                                        "initialElement")])
fn("GetObjectArrayElement", "jobject", [p("jobjectArray array", "array"),
                                        p("jsize index", "index")])
fn("SetObjectArrayElement", "void", [p("jobjectArray array", "array"),
                                     p("jsize index", "index"),
                                     p("jobject value", "value")])
for tname, tret in PRIM_TYPES:
    fn(f"New{tname}Array", f"j{tname.lower()}Array",
       [p("jsize length", "length")])
for tname, tret in PRIM_TYPES:
    fn(f"Get{tname}ArrayElements", f"{tret} *",
       [p(f"j{tname.lower()}Array array", "array"),
        p("jboolean *isCopy", "isCopy")])
for tname, tret in PRIM_TYPES:
    fn(f"Release{tname}ArrayElements", "void",
       [p(f"j{tname.lower()}Array array", "array"),
        p(f"{tret} *elems", "elems"),
        p("jint mode", "mode")])
for tname, tret in PRIM_TYPES:
    fn(f"Get{tname}ArrayRegion", "void",
       [p(f"j{tname.lower()}Array array", "array"),
        p("jsize start", "start"), p("jsize len", "len"),
        p(f"{tret} *buf", "buf")])
for tname, tret in PRIM_TYPES:
    fn(f"Set{tname}ArrayRegion", "void",
       [p(f"j{tname.lower()}Array array", "array"),
        p("jsize start", "start"), p("jsize len", "len"),
        p(f"const {tret} *buf", "buf")])

# --- Natives, monitors, VM, regions, criticals, weak, misc ----------------
fn("RegisterNatives", "jint", [p("jclass cls", "cls"),
                               p("const JNINativeMethod *methods", "methods"),
                               p("jint nMethods", "nMethods")])
fn("UnregisterNatives", "jint", [p("jclass cls", "cls")])
fn("MonitorEnter", "jint", [p("jobject obj", "obj")])
fn("MonitorExit", "jint", [p("jobject obj", "obj")])
fn("GetJavaVM", "jint", [p("JavaVM **vm", "vm")])
fn("GetStringRegion", "void", [p("jstring str", "str"),
                               p("jsize start", "start"),
                               p("jsize len", "len"),
                               p("jchar *buf", "buf")])
fn("GetStringUTFRegion", "void", [p("jstring str", "str"),
                                  p("jsize start", "start"),
                                  p("jsize len", "len"),
                                  p("char *buf", "buf")])
fn("GetPrimitiveArrayCritical", "void *", [p("jarray array", "array"),
                                           p("jboolean *isCopy", "isCopy")])
fn("ReleasePrimitiveArrayCritical", "void", [p("jarray array", "array"),
                                             p("void *carray", "carray"),
                                             p("jint mode", "mode")])
fn("GetStringCritical", "const jchar *", [p("jstring str", "str"),
                                          p("jboolean *isCopy", "isCopy")])
fn("ReleaseStringCritical", "void", [p("jstring str", "str"),
                                     p("const jchar *carray", "carray")])
fn("NewWeakGlobalRef", "jweak", [p("jobject obj", "obj")])
fn("DeleteWeakGlobalRef", "void", [p("jweak obj", "obj")])
fn("ExceptionCheck", "jboolean", [])
fn("NewDirectByteBuffer", "jobject", [p("void *address", "address"),
                                      p("jlong capacity", "capacity")])
fn("GetDirectBufferAddress", "void *", [p("jobject buf", "buf")])
fn("GetDirectBufferCapacity", "jlong", [p("jobject buf", "buf")])
fn("GetObjectRefType", "jobjectRefType", [p("jobject obj", "obj")])

HEADER = """\
//===- jni/JniFunctions.def - All 229 JNI functions (X-macro) ------------===//
//
// Part of the Jinn reproduction project. MIT license.
// GENERATED by tools/gen_jni_def.py -- do not edit by hand.
//
// One entry per JNI function in JNIEnv function-table order (JNI 1.6).
// This single registry is the analogue of the paper's scanned jni.h: the
// env vtable, the interposition wrappers, the per-function traits, the
// Table 2 constraint census, and the code emitter all derive from it.
//
//   JNI_FN(Name, Ret, Params, Args)    directly wrappable function
//   JNI_FN_VA(Name, Ret, Params, Args) variadic '...' form (delegates to A)
//   JNI_FN_VL(Name, Ret, Params, Args) va_list form (delegates to A)
//
//===----------------------------------------------------------------------===//

#if !defined(JNI_FN)
#error "define JNI_FN(Name, Ret, Params, Args) before including"
#endif
#if !defined(JNI_FN_VA)
#define JNI_FN_VA(Name, Ret, Params, Args) JNI_FN(Name, Ret, Params, Args)
#define JNI_FN_VA_DEFAULTED 1
#endif
#if !defined(JNI_FN_VL)
#define JNI_FN_VL(Name, Ret, Params, Args) JNI_FN(Name, Ret, Params, Args)
#define JNI_FN_VL_DEFAULTED 1
#endif
"""

FOOTER = """
#if defined(JNI_FN_VA_DEFAULTED)
#undef JNI_FN_VA
#undef JNI_FN_VA_DEFAULTED
#endif
#if defined(JNI_FN_VL_DEFAULTED)
#undef JNI_FN_VL
#undef JNI_FN_VL_DEFAULTED
#endif
"""

import sys

out = [HEADER]
for kind, name, ret, params, args in ENTRIES:
    out.append(f"{kind}({name}, {ret}, ({params}), ({args}))")
out.append(FOOTER)
text = "\n".join(out)

assert len(ENTRIES) == 229, f"expected 229 JNI functions, got {len(ENTRIES)}"

with open(sys.argv[1] if len(sys.argv) > 1 else
          "src/jni/JniFunctions.def", "w") as f:
    f.write(text)
print(f"wrote {len(ENTRIES)} entries")
