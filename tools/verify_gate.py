#!/usr/bin/env python3
"""Independently re-checks the jinn-verify static-vs-dynamic contract.

Usage: verify_gate.py <jinn-verify binary> [source-flags...]

Runs the binary with --json (default sources: --micros --examples) and
re-derives the acceptance conditions from the raw document, so a bug in
the CLI's own pass/fail logic cannot silently weaken the gate:

  1. every lifted source (micro/corpus/trace) has must == oracle,
     report-for-report and field-for-field;
  2. no may-verdict appears on a straight-line lifted source (one path:
     may would contradict the dynamic oracle);
  3. every source whose oracle is non-empty is flagged (must non-empty);
  4. at least one counter-guard report was derived abstractly AND
     confirmed by the dynamic oracle (the pushdown cross-validation
     actually exercised the interval domain).
"""
import json
import subprocess
import sys


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    binary = sys.argv[1]
    flags = sys.argv[2:] or ["--micros", "--examples"]
    proc = subprocess.run([binary, "--json"] + flags,
                          capture_output=True, text=True)
    try:
        doc = json.loads(proc.stdout)
    except ValueError as exc:
        print("verify_gate: unparseable --json output: %s" % exc,
              file=sys.stderr)
        return 1

    failures = []
    abstract_confirmed = 0
    for src in doc.get("sources", []):
        name = "%s %s" % (src.get("kind"), src.get("source"))
        lifted = src.get("kind") in ("micro", "corpus", "trace")
        must, may = src.get("must", []), src.get("may", [])
        oracle = src.get("oracle", [])
        stats = src.get("stats", {})
        abstract_confirmed += int(stats.get("abstract_confirmed", 0))
        if lifted:
            if must != oracle:
                failures.append("%s: must-verdict differs from the dynamic "
                                "oracle" % name)
            if may:
                failures.append("%s: may-verdict on a straight-line lifted "
                                "program" % name)
            if oracle and not must:
                failures.append("%s: dynamic reports but no static "
                                "must-verdict" % name)
        if not src.get("pass", False):
            for failure in src.get("failures", []):
                failures.append("%s: %s" % (name, failure))

    if abstract_confirmed < 1:
        failures.append("no abstractly derived counter-guard report was "
                        "confirmed dynamically")
    if not doc.get("pass", False) and not failures:
        failures.append("document reports pass=false with no source failure")

    for failure in failures:
        print("verify_gate: %s" % failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
