#!/usr/bin/env python3
"""Unit tests for the CI gate scripts (registered as jinn_gate_script_tests).

The gates (bench_gate, fuzz_gate, verify_gate, monitor_gate, mutate_gate,
gen_fused_checks --check) are the repository's acceptance layer: a silent
bug in one of them weakens every suite they guard. Each test drives the
real script as a subprocess against canned good/bad fixtures and asserts
the documented exit codes: 0 pass, 1 gate failure, 2 usage/malformed.

The fused-plan negative test needs the built jinn-speclint binary and the
checked-in plan; ctest passes both via JINN_SPECLINT_BIN and
JINN_FUSED_PLAN (plus JINN_GEN_FUSED for the generator path). Those cases
skip when the environment lacks the binary so the suite still runs
standalone:  python3 tools/test_gate_scripts.py -v
"""
import json
import os
import re
import subprocess
import sys
import tempfile
import unittest

TOOLS = os.path.dirname(os.path.abspath(__file__))


def run_gate(script, *args):
    """Runs tools/<script> with args; returns (exit code, stdout, stderr)."""
    proc = subprocess.run(
        [sys.executable, os.path.join(TOOLS, script)] + list(args),
        capture_output=True, text=True)
    return proc.returncode, proc.stdout, proc.stderr


class GateFixtureTest(unittest.TestCase):
    """Base: write JSON fixtures into a per-test temp directory."""

    def setUp(self):
        self._dir = tempfile.TemporaryDirectory(prefix="jinn-gate-test-")
        self.addCleanup(self._dir.cleanup)

    def write(self, name, doc):
        path = os.path.join(self._dir.name, name)
        with open(path, "w") as f:
            if isinstance(doc, str):
                f.write(doc)
            else:
                json.dump(doc, f)
        return path


def bench_doc(**entries):
    results = [{"name": k, "value": v, "unit": u}
               for k, (v, u) in entries.items()]
    return {"results": results}


class BenchGateTest(GateFixtureTest):
    def test_equal_runs_pass(self):
        base = self.write("base.json", bench_doc(**{
            "crossings": (1e6, "ops/s"), "ratio/fused_vs_sparse": (0.5, "x")}))
        rc, _, err = run_gate("bench_gate.py", base, base)
        self.assertEqual(rc, 0, err)

    def test_throughput_regression_fails(self):
        base = self.write("base.json", bench_doc(x=(1000.0, "ops/s")))
        fresh = self.write("fresh.json", bench_doc(x=(500.0, "ops/s")))
        rc, _, err = run_gate("bench_gate.py", base, fresh)
        self.assertEqual(rc, 1)
        self.assertIn("floor", err)

    def test_small_dip_within_threshold_passes(self):
        base = self.write("base.json", bench_doc(x=(1000.0, "ops/s")))
        fresh = self.write("fresh.json", bench_doc(x=(800.0, "ops/s")))
        rc, _, err = run_gate("bench_gate.py", base, fresh)
        self.assertEqual(rc, 0, err)

    def test_ratio_ceiling_fails(self):
        base = self.write("base.json",
                          bench_doc(**{"ratio/jinn": (0.5, "x")}))
        fresh = self.write("fresh.json",
                           bench_doc(**{"ratio/jinn": (0.9, "x")}))
        rc, _, err = run_gate("bench_gate.py", base, fresh)
        self.assertEqual(rc, 1)
        self.assertIn("ceiling", err)

    def test_non_ratio_x_entries_are_not_gated(self):
        base = self.write("base.json", bench_doc(table3=(1.0, "x")))
        fresh = self.write("fresh.json", bench_doc(table3=(99.0, "x")))
        rc, _, err = run_gate("bench_gate.py", base, fresh)
        self.assertEqual(rc, 0, err)

    def test_efficiency_floor_enforced_with_enough_threads(self):
        doc = bench_doc(**{"checking off/8t efficiency": (0.4, ""),
                           "hardware_threads": (8.0, "")})
        base = self.write("base.json", bench_doc())
        fresh = self.write("fresh.json", doc)
        rc, _, err = run_gate("bench_gate.py", base, fresh)
        self.assertEqual(rc, 1)
        self.assertIn("speedup/thread", err)

    def test_efficiency_floor_skipped_on_small_hosts(self):
        doc = bench_doc(**{"checking off/8t efficiency": (0.4, ""),
                           "hardware_threads": (2.0, "")})
        base = self.write("base.json", bench_doc())
        fresh = self.write("fresh.json", doc)
        rc, _, err = run_gate("bench_gate.py", base, fresh)
        self.assertEqual(rc, 0, err)
        self.assertIn("not enforced", err)

    def test_malformed_input_is_usage_error(self):
        base = self.write("base.json", bench_doc())
        bad = self.write("bad.json", "not json at all {")
        self.assertEqual(run_gate("bench_gate.py", base, bad)[0], 2)
        noresults = self.write("noresults.json", {"data": []})
        self.assertEqual(run_gate("bench_gate.py", base, noresults)[0], 2)

    def test_usage_without_args(self):
        self.assertEqual(run_gate("bench_gate.py")[0], 2)


def fuzz_doc(**machines):
    rows = [{"name": k, "covered": c, "reachable": r,
             "fraction": c / float(r)} for k, (c, r) in machines.items()]
    return {"seed": 1, "domain": "jni", "machines": rows}


class FuzzGateTest(GateFixtureTest):
    def test_full_coverage_passes(self):
        base = self.write("base.json", fuzz_doc(m=(9, 10)))
        rc, _, err = run_gate("fuzz_gate.py", base, base)
        self.assertEqual(rc, 0, err)

    def test_floor_breach_fails(self):
        base = self.write("base.json", fuzz_doc(m=(5, 10)))
        rc, _, err = run_gate("fuzz_gate.py", base, base)
        self.assertEqual(rc, 1)
        self.assertIn("floor", err)

    def test_regression_against_baseline_fails(self):
        base = self.write("base.json", fuzz_doc(m=(10, 10)))
        fresh = self.write("fresh.json", fuzz_doc(m=(9, 10)))
        rc, _, err = run_gate("fuzz_gate.py", base, fresh)
        self.assertEqual(rc, 1)
        self.assertIn("regressed", err)

    def test_machine_vanishing_fails(self):
        base = self.write("base.json", fuzz_doc(m=(10, 10), gone=(10, 10)))
        fresh = self.write("fresh.json", fuzz_doc(m=(10, 10)))
        rc, _, err = run_gate("fuzz_gate.py", base, fresh)
        self.assertEqual(rc, 1)
        self.assertIn("missing", err)


def verify_source(kind="micro", must=1, oracle=1, may=0, confirmed=1):
    report = {"machine": "M", "function": "f", "message": "boom",
              "end_of_run": False}
    return {"kind": kind, "source": "s", "pass": True,
            "must": [report] * must, "may": [report] * may,
            "oracle": [report] * oracle, "failures": [],
            "stats": {"abstract_confirmed": confirmed}}


class VerifyGateTest(GateFixtureTest):
    """verify_gate runs a binary; a tiny stub script plays jinn-verify."""

    def stub(self, doc):
        path = os.path.join(self._dir.name, "fake-verify")
        with open(path, "w") as f:
            f.write("#!%s\nimport json\nprint(json.dumps(%r))\n"
                    % (sys.executable, doc))
        os.chmod(path, 0o755)
        return path

    def test_agreeing_document_passes(self):
        binary = self.stub({"pass": True, "sources": [verify_source()]})
        rc, _, err = run_gate("verify_gate.py", binary)
        self.assertEqual(rc, 0, err)

    def test_must_oracle_divergence_fails(self):
        binary = self.stub({"pass": True,
                            "sources": [verify_source(must=0, oracle=1)]})
        rc, _, err = run_gate("verify_gate.py", binary)
        self.assertEqual(rc, 1)
        self.assertIn("differs from the dynamic oracle", err)

    def test_may_on_straight_line_fails(self):
        binary = self.stub({"pass": True,
                            "sources": [verify_source(may=1)]})
        rc, _, err = run_gate("verify_gate.py", binary)
        self.assertEqual(rc, 1)
        self.assertIn("may-verdict", err)

    def test_unconfirmed_abstract_reports_fail(self):
        binary = self.stub({"pass": True,
                            "sources": [verify_source(confirmed=0)]})
        rc, _, err = run_gate("verify_gate.py", binary)
        self.assertEqual(rc, 1)
        self.assertIn("confirmed", err)

    def test_unparseable_output_fails(self):
        path = os.path.join(self._dir.name, "broken-verify")
        with open(path, "w") as f:
            f.write("#!%s\nprint('not json')\n" % sys.executable)
        os.chmod(path, 0o755)
        self.assertEqual(run_gate("verify_gate.py", path)[0], 1)


def monitor_doc(rss=100.0, ceiling=512.0, p99=4000.0, reports=3.0,
                verified="true"):
    return {"results": [
        {"name": "max_peak_rss_mb", "value": rss, "unit": "MB"},
        {"name": "rss_ceiling_mb", "value": ceiling, "unit": "MB"},
        {"name": "sampled16/p99_crossing_ns", "value": p99, "unit": "ns"},
        {"name": "reports_n16", "value": reports, "unit": ""},
        {"name": "replay_verified", "value": verified, "unit": ""},
    ]}


class MonitorGateTest(GateFixtureTest):
    def test_healthy_soak_passes(self):
        base = self.write("base.json", monitor_doc())
        rc, _, err = run_gate("monitor_gate.py", base, base)
        self.assertEqual(rc, 0, err)

    def test_rss_breach_fails(self):
        base = self.write("base.json", monitor_doc())
        fresh = self.write("fresh.json", monitor_doc(rss=600.0))
        rc, _, err = run_gate("monitor_gate.py", base, fresh)
        self.assertEqual(rc, 1)
        self.assertIn("ceiling", err)

    def test_p99_regression_fails(self):
        base = self.write("base.json", monitor_doc(p99=1000.0))
        fresh = self.write("fresh.json", monitor_doc(p99=2000.0))
        rc, _, err = run_gate("monitor_gate.py", base, fresh)
        self.assertEqual(rc, 1)
        self.assertIn("p99", err)

    def test_zero_reports_fail(self):
        base = self.write("base.json", monitor_doc())
        fresh = self.write("fresh.json", monitor_doc(reports=0.0))
        rc, _, err = run_gate("monitor_gate.py", base, fresh)
        self.assertEqual(rc, 1)
        self.assertIn("zero reports", err)

    def test_failed_replay_verification_fails(self):
        base = self.write("base.json", monitor_doc())
        fresh = self.write("fresh.json", monitor_doc(verified="false"))
        rc, _, err = run_gate("monitor_gate.py", base, fresh)
        self.assertEqual(rc, 1)
        self.assertIn("replay", err)

    def test_malformed_input_is_usage_error(self):
        base = self.write("base.json", monitor_doc())
        bad = self.write("bad.json", "[1, 2, 3]")
        self.assertEqual(run_gate("monitor_gate.py", base, bad)[0], 2)


def mutate_doc(rows, errors=0):
    killed = sum(1 for r in rows if r["status"] == "killed")
    survived = sum(1 for r in rows if r["status"] == "survived")
    noneq = [r for r in rows if r["expect"] != "survives-equivalent"]
    noneq_killed = sum(1 for r in noneq if r["status"] == "killed")
    return {"schema": "jinn-mutate-v1", "total": len(rows),
            "killed": killed, "survived": survived, "errors": errors,
            "non_equivalent": len(noneq),
            "kill_rate_non_equivalent":
                (noneq_killed / float(len(noneq))) if noneq else 1.0,
            "mutants": rows}


def mutant_row(mid, status="killed", expect="killed"):
    return {"id": mid, "name": "m%d" % mid, "op_class": "dropped-check",
            "target": "spec", "site": "s", "expect": expect,
            "status": status, "killed_by": ["probes"], "details": []}


class MutateGateTest(GateFixtureTest):
    def test_all_killed_passes(self):
        doc = mutate_doc([mutant_row(1), mutant_row(2)])
        base = self.write("base.json", doc)
        rc, out, err = run_gate("mutate_gate.py", base, base)
        self.assertEqual(rc, 0, err)
        self.assertIn("2/2", out)

    def test_annotated_survivors_pass_and_are_printed(self):
        doc = mutate_doc([
            mutant_row(1),
            mutant_row(2, "survived", "survives-equivalent"),
            mutant_row(3, "survived", "survives-blind-spot"),
            mutant_row(4), mutant_row(5), mutant_row(6), mutant_row(7)])
        base = self.write("base.json", doc)
        rc, out, err = run_gate("mutate_gate.py", base, base)
        self.assertEqual(rc, 0, err)
        self.assertIn("equivalent", out)
        self.assertIn("blind spot", out)

    def test_unannotated_survivor_fails(self):
        good = mutate_doc([mutant_row(i) for i in range(1, 7)])
        bad_rows = [mutant_row(i) for i in range(1, 6)]
        bad_rows.append(mutant_row(6, "survived", "killed"))
        base = self.write("base.json", good)
        fresh = self.write("fresh.json", mutate_doc(bad_rows))
        rc, _, err = run_gate("mutate_gate.py", base, fresh)
        self.assertEqual(rc, 1)
        self.assertIn("annotated killable", err)

    def test_kill_rate_floor_fails(self):
        rows = [mutant_row(1),
                mutant_row(2, "survived", "survives-blind-spot"),
                mutant_row(3, "survived", "survives-blind-spot")]
        base = self.write("base.json", mutate_doc(rows))
        rc, _, err = run_gate("mutate_gate.py", base, base)
        self.assertEqual(rc, 1)
        self.assertIn("kill rate", err)

    def test_kill_regression_fails(self):
        base = self.write("base.json", mutate_doc(
            [mutant_row(i) for i in range(1, 7)]))
        rows = [mutant_row(i) for i in range(1, 6)]
        rows.append(mutant_row(6, "survived", "survives-blind-spot"))
        fresh = self.write("fresh.json", mutate_doc(rows))
        rc, _, err = run_gate("mutate_gate.py", base, fresh)
        self.assertEqual(rc, 1)
        self.assertIn("regression", err)

    def test_campaign_error_fails(self):
        rows = [mutant_row(1), mutant_row(2, "build-failed")]
        base = self.write("base.json", mutate_doc(rows, errors=1))
        rc, _, err = run_gate("mutate_gate.py", base, base)
        self.assertEqual(rc, 1)
        self.assertIn("campaign error", err)

    def test_missing_mutant_fails(self):
        base = self.write("base.json", mutate_doc(
            [mutant_row(1), mutant_row(2)]))
        fresh = self.write("fresh.json", mutate_doc([mutant_row(1)]))
        rc, _, err = run_gate("mutate_gate.py", base, fresh)
        self.assertEqual(rc, 1)
        self.assertIn("missing", err)

    def test_malformed_input_is_usage_error(self):
        base = self.write("base.json", mutate_doc([mutant_row(1)]))
        bad = self.write("bad.json", "{}")
        self.assertEqual(run_gate("mutate_gate.py", base, bad)[0], 2)


@unittest.skipUnless(
    os.environ.get("JINN_SPECLINT_BIN") and os.environ.get("JINN_FUSED_PLAN"),
    "needs the built jinn-speclint (set JINN_SPECLINT_BIN/JINN_FUSED_PLAN)")
class FusedPlanGateTest(GateFixtureTest):
    """The drift gate must reject a hand-mutated FusedPlan.inc row."""

    def run_check(self, plan_path):
        gen = os.environ.get("JINN_GEN_FUSED",
                             os.path.join(TOOLS, "gen_fused_checks.py"))
        proc = subprocess.run(
            [sys.executable, gen,
             "--speclint", os.environ["JINN_SPECLINT_BIN"],
             "--check", plan_path],
            capture_output=True, text=True)
        return proc.returncode, proc.stderr + proc.stdout

    def test_checked_in_plan_passes(self):
        rc, out = self.run_check(os.environ["JINN_FUSED_PLAN"])
        self.assertEqual(rc, 0, out)

    def test_mutated_plan_row_is_rejected(self):
        with open(os.environ["JINN_FUSED_PLAN"]) as f:
            text = f.read()
        # Flip the first plan row's Post flag: {fn, machine, transition, 0}
        # becomes a post-hook slot the live walk never emits.
        mutated, n = re.subn(r"\{(\d+), (\d+), (\d+), 0\},",
                             r"{\1, \2, \3, 1},", text, count=1)
        self.assertEqual(n, 1, "no mutable row found in FusedPlan.inc")
        self.assertNotEqual(mutated, text)
        path = self.write("FusedPlanMutated.inc", mutated)
        rc, out = self.run_check(path)
        self.assertNotEqual(rc, 0,
                            "drift gate accepted a hand-mutated plan row")

    def test_truncated_plan_is_rejected(self):
        with open(os.environ["JINN_FUSED_PLAN"]) as f:
            lines = f.read().splitlines(True)
        row_indices = [i for i, line in enumerate(lines)
                       if re.match(r"\s*\{\d+, \d+, \d+, [01]\},", line)]
        self.assertGreater(len(row_indices), 1)
        del lines[row_indices[-1]]
        path = self.write("FusedPlanTruncated.inc", "".join(lines))
        rc, out = self.run_check(path)
        self.assertNotEqual(rc, 0,
                            "drift gate accepted a truncated plan")


if __name__ == "__main__":
    unittest.main()
