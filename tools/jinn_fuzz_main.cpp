//===- tools/jinn_fuzz_main.cpp - Spec-guided differential fuzzer CLI ----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver for the jinn-fuzz campaign:
///
///   jinn-fuzz                               smoke campaign, fixed seed
///   jinn-fuzz --seed 7 --iters 50           long run, 50 extra rounds
///   jinn-fuzz --machines "Monitor,Nullness" restrict JNI focus machines
///   jinn-fuzz --coverage-json cov.json      emit the gate's input document
///   jinn-fuzz --no-xcheck / --no-replay     drop an oracle
///   jinn-fuzz --no-python                   JNI domain only
///   jinn-fuzz --list-machines               print machine names and exit
///
/// Exit status is nonzero when the op table is inconsistent with the spec
/// models or any sequence produced an oracle disagreement; each finding is
/// printed as its minimized .jfz reproducer, ready to drop into
/// fuzz/corpus/.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/Fuzzer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace jinn;
using namespace jinn::fuzz;

namespace {

void printUsage() {
  std::printf(
      "usage: jinn-fuzz [options]\n"
      "  Generates spec-guided FFI call sequences (clean paths and one-\n"
      "  transition-to-error bug paths), executes them against the real\n"
      "  VM/JNI layer under three agreeing oracles (inline Jinn checking,\n"
      "  -Xcheck:jni, trace record+replay), shrinks any disagreement, and\n"
      "  reports spec transition coverage.\n"
      "\n"
      "  --seed <n>           campaign seed (default 1)\n"
      "  --iters <n>          extra rounds beyond the smoke budget\n"
      "  --machines <a,b>     restrict JNI focus machines\n"
      "  --coverage-json <p>  write the JNI coverage JSON for fuzz_gate.py\n"
      "  --py-coverage-json <p>  same for the Python domain\n"
      "  --no-xcheck          skip the -Xcheck:jni oracle\n"
      "  --no-replay          skip the record+replay oracle\n"
      "  --no-python          skip the Python/C domain\n"
      "  --list-machines      print the JNI machine names and exit\n");
}

std::vector<std::string> splitList(const std::string &Arg) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (Start <= Arg.size()) {
    size_t Comma = Arg.find(',', Start);
    if (Comma == std::string::npos)
      Comma = Arg.size();
    if (Comma > Start)
      Out.push_back(Arg.substr(Start, Comma - Start));
    Start = Comma + 1;
  }
  return Out;
}

bool writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path);
  Out << Text;
  return Out.good();
}

} // namespace

int main(int Argc, char **Argv) {
  CampaignOptions Opts;
  std::string CoverageJson, PyCoverageJson;
  bool ListMachines = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto nextValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "jinn-fuzz: %s needs a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--seed")
      Opts.Seed = std::strtoull(nextValue("--seed"), nullptr, 0);
    else if (Arg == "--iters")
      Opts.Iterations = std::strtoull(nextValue("--iters"), nullptr, 0);
    else if (Arg == "--machines")
      Opts.Machines = splitList(nextValue("--machines"));
    else if (Arg == "--coverage-json")
      CoverageJson = nextValue("--coverage-json");
    else if (Arg == "--py-coverage-json")
      PyCoverageJson = nextValue("--py-coverage-json");
    else if (Arg == "--no-xcheck")
      Opts.RunXcheck = false;
    else if (Arg == "--no-replay")
      Opts.RunReplay = false;
    else if (Arg == "--no-python")
      Opts.RunPython = false;
    else if (Arg == "--list-machines")
      ListMachines = true;
    else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else {
      std::fprintf(stderr, "jinn-fuzz: unknown option %s\n", Arg.c_str());
      printUsage();
      return 2;
    }
  }

  if (ListMachines) {
    for (const analysis::MachineModel &Model : jniMachineModels())
      std::printf("%s\n", Model.Name.c_str());
    return 0;
  }

  CampaignResult Result = runCampaign(Opts);

  if (!Result.TableIssues.empty()) {
    std::fprintf(stderr,
                 "jinn-fuzz: op table inconsistent with the spec models:\n");
    for (const std::string &Issue : Result.TableIssues)
      std::fprintf(stderr, "  %s\n", Issue.c_str());
    return 1;
  }

  std::printf("jinn-fuzz: seed %llu, %zu sequence(s), %zu finding(s)\n",
              static_cast<unsigned long long>(Opts.Seed), Result.SequencesRun,
              Result.Findings.size());
  std::printf("\nJNI transition coverage:\n%s",
              Result.JniCov.toTable().c_str());
  if (Opts.RunPython)
    std::printf("\nPython transition coverage:\n%s",
                Result.PyCov.toTable().c_str());

  if (!CoverageJson.empty() &&
      !writeFile(CoverageJson, Result.JniCov.toJson(Opts.Seed, "jni"))) {
    std::fprintf(stderr, "jinn-fuzz: cannot write %s\n", CoverageJson.c_str());
    return 2;
  }
  if (!PyCoverageJson.empty() && Opts.RunPython &&
      !writeFile(PyCoverageJson, Result.PyCov.toJson(Opts.Seed, "py"))) {
    std::fprintf(stderr, "jinn-fuzz: cannot write %s\n",
                 PyCoverageJson.c_str());
    return 2;
  }

  for (size_t I = 0; I < Result.Findings.size(); ++I) {
    const CampaignFinding &F = Result.Findings[I];
    std::printf("\nfinding %zu (%zu -> %zu op(s), %zu minimizer test(s)):\n",
                I + 1, F.Original.OpNames.size(), F.Minimized.OpNames.size(),
                F.MinimizerTests);
    for (const std::string &Failure : F.Failures)
      std::printf("  %s\n", Failure.c_str());
    std::printf("minimized reproducer (.jfz):\n%s",
                serializeSequence(F.Minimized).c_str());
  }

  return Result.Pass ? 0 : 1;
}
