#!/usr/bin/env sh
# Builds the bench binaries, runs each one, and aggregates every
# BENCH_<name>.json they emit into one summary file.
#
#   tools/run_benches.sh [build-dir] [summary-path]
#
# Environment:
#   JINN_BENCH_SCALE   workload scale divisor forwarded to the benches
#                      (default here: 16384, i.e. a quick smoke pass;
#                      unset it in the benches themselves for full runs)
#   JINN_BENCH_ONLY    space-separated bench names to restrict the run
#                      (e.g. "bench_trace_modes bench_coverage")
#   JINN_BENCH_NO_GATE set non-empty to skip the throughput regression
#                      gate against bench/baselines/
#   JINN_MUTATE_NO_GATE set non-empty to skip the mutation-testing
#                      kill-rate gate against mutants/baseline.json
set -eu
# POSIX sh has no pipefail; enable it where the shell provides it (dash
# does not, bash/ksh/zsh do) so a bench dying inside a pipeline cannot be
# masked by the tail/sed consumers downstream.
(set -o pipefail) 2>/dev/null && set -o pipefail

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build"}
SUMMARY=${2:-"$BUILD/BENCH_SUMMARY.json"}
: "${JINN_BENCH_SCALE:=16384}"
export JINN_BENCH_SCALE

cmake -S "$ROOT" -B "$BUILD" >/dev/null
cmake --build "$BUILD" -j >/dev/null

BENCHES="bench_table1_pitfalls bench_table2_constraints \
bench_table3_overhead bench_crossing_latency bench_coverage \
bench_fig9_messages \
bench_fig10_localrefs bench_synthesis_loc bench_ablation_machines \
bench_mt_scaling bench_pyc_checker bench_trace_modes \
bench_speclint_elision bench_monitor_soak"
if [ -n "${JINN_BENCH_ONLY:-}" ]; then
  BENCHES=$JINN_BENCH_ONLY
fi

RUNDIR="$BUILD/bench"
FAILED=""
for BENCH in $BENCHES; do
  BIN="$RUNDIR/$BENCH"
  if [ ! -x "$BIN" ]; then
    echo "run_benches: missing $BIN" >&2
    FAILED="$FAILED $BENCH"
    continue
  fi
  echo "== $BENCH (scale 1/$JINN_BENCH_SCALE) =="
  # bench_trace_modes exits nonzero when its acceptance criterion fails;
  # record that but keep collecting the other benches.
  if ! (cd "$RUNDIR" && "./$BENCH" >"$BENCH.log" 2>&1); then
    echo "run_benches: $BENCH failed (see $RUNDIR/$BENCH.log)" >&2
    FAILED="$FAILED $BENCH"
  fi
  tail -n 3 "$RUNDIR/$BENCH.log" | sed 's/^/    /'
  # Every bench must leave a non-empty, well-formed BENCH_<name>.json
  # behind; a bench that silently stopped emitting results is a failure
  # even when its exit code says otherwise.
  JSON="$RUNDIR/BENCH_${BENCH#bench_}.json"
  if [ ! -s "$JSON" ]; then
    echo "run_benches: $BENCH produced no $JSON" >&2
    FAILED="$FAILED $BENCH(json-missing)"
  elif ! grep -q '"bench"' "$JSON" || ! grep -q '"results"' "$JSON"; then
    echo "run_benches: $JSON is malformed (missing bench/results keys)" >&2
    FAILED="$FAILED $BENCH(json-malformed)"
  fi
  # Throughput regression gate: every "/s" entry in the fresh JSON must
  # stay within 25% of the committed baseline snapshot. Baselines were
  # recorded at the scale in bench/baselines/SCALE; a run at any other
  # scale skips the gate rather than comparing apples to oranges.
  BASELINE="$ROOT/bench/baselines/BENCH_${BENCH#bench_}.json"
  BASESCALE=$(cat "$ROOT/bench/baselines/SCALE" 2>/dev/null || true)
  if [ -z "${JINN_BENCH_NO_GATE:-}" ] && [ -s "$BASELINE" ] \
      && [ -s "$JSON" ] && [ "$BASESCALE" = "$JINN_BENCH_SCALE" ] \
      && command -v python3 >/dev/null 2>&1; then
    if python3 "$ROOT/tools/bench_gate.py" "$BASELINE" "$JSON"; then
      echo "run_benches: gate bench_gate($BENCH): PASS"
    else
      echo "run_benches: gate bench_gate($BENCH): FAIL (set" \
           "JINN_BENCH_NO_GATE=1 to bypass)" >&2
      FAILED="$FAILED $BENCH(regression)"
    fi
    # The monitoring soak has its own gate on top of the throughput one:
    # RSS ceiling, sampled p99 latency, and the seeded-bug detection floor.
    if [ "$BENCH" = "bench_monitor_soak" ]; then
      if python3 "$ROOT/tools/monitor_gate.py" "$BASELINE" "$JSON"; then
        echo "run_benches: gate monitor_gate: PASS"
      else
        echo "run_benches: gate monitor_gate: FAIL (set" \
             "JINN_BENCH_NO_GATE=1 to bypass)" >&2
        FAILED="$FAILED $BENCH(monitor-gate)"
      fi
    fi
  fi
done

# Static-verifier agreement gate: jinn-verify's must-verdicts must match
# the dynamic oracles byte-for-byte on the micros and corpus. Cheap (a
# few seconds) and scale-independent, so it runs on every bench pass.
if [ -z "${JINN_BENCH_NO_GATE:-}" ] && [ -x "$BUILD/tools/jinn-verify" ] \
    && command -v python3 >/dev/null 2>&1; then
  echo "== verify_gate (jinn-verify static-vs-dynamic agreement) =="
  if python3 "$ROOT/tools/verify_gate.py" "$BUILD/tools/jinn-verify" \
      --micros --examples --corpus; then
    echo "run_benches: gate verify_gate: PASS"
  else
    echo "run_benches: gate verify_gate: FAIL — jinn-verify disagreed" \
         "with the dynamic oracles (set JINN_BENCH_NO_GATE=1 to bypass)" >&2
    FAILED="$FAILED verify_gate"
  fi
fi

# Mutation-testing gate: re-judge the checked-in mutant corpus against the
# live oracle battery and hold the kill rate to the committed baseline.
# Scale-independent and a few seconds long; JINN_MUTATE_NO_GATE skips it.
if [ -z "${JINN_MUTATE_NO_GATE:-}" ] && [ -x "$BUILD/tools/jinn-mutate" ] \
    && [ -s "$ROOT/mutants/baseline.json" ] \
    && command -v python3 >/dev/null 2>&1; then
  echo "== mutate_gate (detector kill rate over the mutant corpus) =="
  MUTATE_JSON="$BUILD/MUTATE_CAMPAIGN.json"
  if ! "$BUILD/tools/jinn-mutate" --run --json "$MUTATE_JSON"; then
    echo "run_benches: gate mutate_gate: FAIL — campaign errored (set" \
         "JINN_MUTATE_NO_GATE=1 to bypass)" >&2
    FAILED="$FAILED mutate_campaign"
  elif python3 "$ROOT/tools/mutate_gate.py" \
      "$ROOT/mutants/baseline.json" "$MUTATE_JSON"; then
    echo "run_benches: gate mutate_gate: PASS"
  else
    echo "run_benches: gate mutate_gate: FAIL — kill rate regressed or a" \
         "survivor lost its annotation (set JINN_MUTATE_NO_GATE=1 to" \
         "bypass)" >&2
    FAILED="$FAILED mutate_gate"
  fi
fi

# Merge every BENCH_*.json into one summary document.
{
  echo '{'
  echo "  \"scale\": $JINN_BENCH_SCALE,"
  printf '  "benches": ['
  FIRST=1
  for JSON in "$RUNDIR"/BENCH_*.json; do
    [ -e "$JSON" ] || continue
    [ "$FIRST" = 1 ] || printf ','
    FIRST=0
    printf '\n'
    sed 's/^/    /' "$JSON" | sed '${/^[[:space:]]*$/d}'
  done
  printf '\n  ]\n}\n'
} >"$SUMMARY"

COUNT=$(ls "$RUNDIR"/BENCH_*.json 2>/dev/null | wc -l)
echo "run_benches: aggregated $COUNT result file(s) into $SUMMARY"
if [ -n "$FAILED" ]; then
  echo "run_benches: failures:$FAILED" >&2
  exit 1
fi
