//===- tools/jinn_monitor_main.cpp - Production monitoring CLI -----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// jinn-monitor: run the multi-tenant server soak under the production
/// monitoring configuration — deterministic sampled checking, streaming
/// recorder, bounded trace sink, periodic JSON snapshots — and print the
/// final snapshot. The command-line shape a deployment's sidecar would
/// have.
///
///   jinn-monitor [options]
///     --workers N        concurrent request workers        (default 4)
///     --requests N       total requests                    (default 800)
///     --duration-ms N    run under load for N ms instead   (default off)
///     --ops N            JNI ops per request               (default 24)
///     --tenants N        tenants sharing global state      (default 4)
///     --sample-rate N    check 1-in-N request threads      (default 16)
///     --sample-seed N    sampling stream root seed
///     --bug-every N      seeded-bug every Nth request      (default 0)
///     --sink-dir PATH    rotating file sink directory (default: in-memory)
///     --rotate-bytes N   segment file rotation threshold   (default 4 MiB)
///     --segments N       segment files retained            (default 8)
///     --interval-ms N    monitor tick period               (default 100)
///     --snapshots PATH   JSONL snapshot stream file
///     --replay           verify sampled reports replay from the sink
///
/// Exits 0 on success; 2 on usage errors; 1 when --replay verification
/// fails or a seeded-bug run produced no reports.
///
//===----------------------------------------------------------------------===//

#include "monitor/Monitor.h"
#include "monitor/TraceSink.h"
#include "trace/Replay.h"
#include "workloads/ServerSoak.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

using namespace jinn;
using namespace jinn::scenarios;
using namespace jinn::workloads;

namespace {

struct CliOptions {
  SoakOptions Soak;
  uint32_t SampleRate = 16;
  uint64_t SampleSeed = 0x6a696e6e5eedULL;
  std::string SinkDir;
  size_t RotateBytes = 4u << 20;
  size_t Segments = 8;
  uint64_t IntervalMs = 100;
  std::string SnapshotPath;
  bool Replay = false;
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--requests N] [--duration-ms N]\n"
               "          [--ops N] [--tenants N] [--sample-rate N]\n"
               "          [--sample-seed N] [--bug-every N] [--sink-dir P]\n"
               "          [--rotate-bytes N] [--segments N] [--interval-ms N]\n"
               "          [--snapshots P] [--replay]\n",
               Argv0);
  return 2;
}

bool parseUint(const char *Text, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(Text, &End, 10);
  return End && *End == '\0' && End != Text;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  Cli.Soak.Requests = 800;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto NextUint = [&](uint64_t &Out) {
      return I + 1 < Argc && parseUint(Argv[++I], Out);
    };
    uint64_t V = 0;
    if (Arg == "--workers" && NextUint(V))
      Cli.Soak.Workers = static_cast<unsigned>(V);
    else if (Arg == "--requests" && NextUint(V))
      Cli.Soak.Requests = V;
    else if (Arg == "--duration-ms" && NextUint(V))
      Cli.Soak.DurationMs = V;
    else if (Arg == "--ops" && NextUint(V))
      Cli.Soak.OpsPerRequest = V;
    else if (Arg == "--tenants" && NextUint(V))
      Cli.Soak.Tenants = static_cast<unsigned>(V);
    else if (Arg == "--sample-rate" && NextUint(V))
      Cli.SampleRate = static_cast<uint32_t>(V);
    else if (Arg == "--sample-seed" && NextUint(V))
      Cli.SampleSeed = V;
    else if (Arg == "--bug-every" && NextUint(V))
      Cli.Soak.BugEveryNRequests = V;
    else if (Arg == "--sink-dir" && I + 1 < Argc)
      Cli.SinkDir = Argv[++I];
    else if (Arg == "--rotate-bytes" && NextUint(V))
      Cli.RotateBytes = static_cast<size_t>(V);
    else if (Arg == "--segments" && NextUint(V))
      Cli.Segments = static_cast<size_t>(V);
    else if (Arg == "--interval-ms" && NextUint(V))
      Cli.IntervalMs = V;
    else if (Arg == "--snapshots" && I + 1 < Argc)
      Cli.SnapshotPath = Argv[++I];
    else if (Arg == "--replay")
      Cli.Replay = true;
    else
      return usage(Argv[0]);
  }

  WorldConfig Config;
  Config.Checker = CheckerKind::Jinn;
  Config.JinnSampleRate = Cli.SampleRate;
  Config.JinnSampleSeed = Cli.SampleSeed;
  // Sampling promotes to record+replay by itself; record even at rate 1 so
  // the monitor always has a stream to aggregate.
  Config.JinnMode = agent::TraceMode::RecordAndReplay;
  Config.JinnRecorder.StreamChunks = true;
  ScenarioWorld World(Config);

  std::unique_ptr<monitor::TraceSink> Sink;
  if (!Cli.SinkDir.empty()) {
    monitor::RotatingFileSink::Options SinkOpts;
    SinkOpts.Directory = Cli.SinkDir;
    SinkOpts.RotateBytes = Cli.RotateBytes;
    SinkOpts.MaxSegments = Cli.Segments;
    Sink = std::make_unique<monitor::RotatingFileSink>(SinkOpts);
  } else {
    monitor::RingSink::Options SinkOpts;
    SinkOpts.MaxSegments = Cli.Segments ? Cli.Segments * 64 : 0;
    Sink = std::make_unique<monitor::RingSink>(SinkOpts);
  }

  monitor::MonitorOptions MonOpts;
  MonOpts.IntervalMs = Cli.IntervalMs;
  MonOpts.SnapshotPath = Cli.SnapshotPath;
  monitor::JinnMonitor Monitor(World.Vm, *World.Jinn, *Sink, MonOpts);
  Monitor.start();

  SoakStats Stats = runServerSoak(World, Cli.Soak);
  Monitor.finish();

  std::vector<agent::JinnReport> Inline = World.Jinn->reporter().reports();
  World.shutdown();

  monitor::MonitorSnapshot Snap = Monitor.snapshot();
  std::printf("%s\n", Snap.toJson().c_str());
  std::fprintf(stderr,
               "jinn-monitor: %llu requests in %.2fs (%.0f req/s), "
               "%llu JNI calls, %llu seeded bugs, %llu reports\n",
               static_cast<unsigned long long>(Stats.Requests), Stats.Seconds,
               Stats.Seconds > 0
                   ? static_cast<double>(Stats.Requests) / Stats.Seconds
                   : 0.0,
               static_cast<unsigned long long>(Stats.JniCalls),
               static_cast<unsigned long long>(Stats.SeededBugs),
               static_cast<unsigned long long>(Stats.Reports));

  int Exit = 0;
  if (Cli.Soak.BugEveryNRequests && Cli.SampleRate > 0 && Stats.Reports == 0 &&
      Stats.SeededBugs >= Cli.SampleRate) {
    std::fprintf(stderr, "jinn-monitor: seeded-bug run produced no reports\n");
    Exit = 1;
  }

  if (Cli.Replay) {
    trace::Trace Retained = Sink->retained();
    trace::ReplayResult Replayed = trace::replayTrace(Retained, World.Vm);
    size_t Matched = 0, InlineViolations = 0;
    std::vector<const agent::JinnReport *> Pool;
    for (const agent::JinnReport &R : Replayed.Reports)
      if (!R.EndOfRun)
        Pool.push_back(&R);
    for (const agent::JinnReport &R : Inline) {
      if (R.EndOfRun)
        continue;
      ++InlineViolations;
      for (auto It = Pool.begin(); It != Pool.end(); ++It)
        if ((*It)->Machine == R.Machine && (*It)->Function == R.Function &&
            (*It)->Message == R.Message) {
          Pool.erase(It);
          ++Matched;
          break;
        }
    }
    bool Ok = Matched == InlineViolations;
    std::fprintf(stderr,
                 "jinn-monitor: replay: %zu/%zu inline reports reproduced "
                 "from %llu retained events (%zu replay reports): %s\n",
                 Matched, InlineViolations,
                 static_cast<unsigned long long>(Retained.Events.size()),
                 Replayed.Reports.size(), Ok ? "PASS" : "FAIL");
    if (!Ok)
      Exit = 1;
  }
  return Exit;
}
