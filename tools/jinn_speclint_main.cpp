//===- tools/jinn_speclint_main.cpp - Spec static analyzer CLI -----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// jinn-speclint: loads the fourteen JNI machine specifications and the
/// Python checker's machines into the analysis model, runs every lint
/// pass (reachability, determinism, coverage, cross-machine consistency),
/// and prints the relevance matrix the synthesis-time check elision is
/// driven by. Exits non-zero when any ERROR-class finding is present, so
/// registering it as a ctest makes a malformed specification fail tier-1.
///
//===----------------------------------------------------------------------===//

#include "analysis/SpecLint.h"
#include "jinn/Census.h"
#include "jinn/Machines.h"
#include "jvmti/Interpose.h"
#include "synth/FusedChecks.h"
#include "synth/Synthesizer.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace jinn;
using namespace jinn::analysis;

namespace {

/// The synthesizer needs a reporter; static analysis never fires one.
class NullReporter : public spec::Reporter {
  void violation(spec::TransitionContext &, const spec::StateMachineSpec &,
                 const std::string &) override {}
  void endOfRun(const spec::StateMachineSpec &, const std::string &) override {
  }
};

struct UniverseReport {
  std::string Name;
  std::vector<MachineModel> Models;
  RelevanceMatrix Matrix;
  LintReport Lint;
};

/// Cross-checks the dispatcher's sparse hook table against the relevance
/// matrix: a function must carry a pre/post hook exactly when some
/// machine's matrix row observes it there.
void checkDispatcherAgainstMatrix(const jvmti::InterposeDispatcher &Dispatcher,
                                  const RelevanceMatrix &Matrix,
                                  LintReport &Lint) {
  size_t Mismatches = 0;
  for (size_t I = 0; I < jni::NumJniFunctions; ++I) {
    jni::FnId Id = static_cast<jni::FnId>(I);
    bool HookPre = Dispatcher.preCount(Id) > 0;
    bool HookPost = Dispatcher.postCount(Id) > 0;
    if (HookPre != Matrix.AnyPre.test(I) ||
        HookPost != Matrix.AnyPost.test(I)) {
      ++Mismatches;
      Lint.Findings.push_back(
          {Severity::Error, "consistency/dispatcher-mask", "",
           std::string("function ") + Matrix.Universe->Functions[I] +
               ": installed hooks disagree with the relevance matrix"});
    }
  }
  if (!Mismatches)
    Lint.Findings.push_back(
        {Severity::Info, "consistency/dispatcher-mask", "",
         "the dispatcher's per-function hook table matches the relevance "
         "matrix for all 229 functions (elision is report-preserving)"});
}

std::string jsonEscaped(const std::string &Text);

/// Cross-checks the fused (tier-1) dispatch against the analysis:
///  - the checked-in FusedPlan.inc must match the live Algorithm-1 walk
///    (regeneration drift is an error — the fused compiler would refuse
///    to install and silently fall back to dynamic dispatch);
///  - each machine's compiled-in fused function set must equal its
///    relevance-matrix row, pre and post;
///  - the compiled table's per-function slot counts must equal the plan's
///    row counts.
void checkFusedAgainstMatrix(const std::vector<spec::MachineBase *> &Machines,
                             const RelevanceMatrix &Matrix,
                             spec::Reporter &Reporter, LintReport &Lint) {
  std::string Drift;
  if (!synth::checkAgainstFusedPlan(Machines, Drift)) {
    Lint.Findings.push_back(
        {Severity::Error, "consistency/fused-plan", "", Drift});
    return;
  }

  synth::DerivedFusedPlan Plan = synth::deriveFusedPlan(Machines);
  size_t Mismatches = 0;
  for (size_t M = 0; M < Machines.size(); ++M) {
    const std::string &Name = Machines[M]->spec().Name;
    const MachineRelevance *Row = Matrix.rowFor(Name);
    if (!Row) {
      Lint.Findings.push_back({Severity::Error, "consistency/fused-machine-set",
                               Name, "machine has no relevance-matrix row"});
      ++Mismatches;
      continue;
    }
    FnSet FusedPre(Matrix.Universe->size());
    FnSet FusedPost(Matrix.Universe->size());
    for (const synth::FusedPlanRow &R : Plan.Rows) {
      if (R.Machine != M)
        continue;
      (R.Post ? FusedPost : FusedPre).set(R.Fn);
    }
    for (size_t I = 0; I < Matrix.Universe->size(); ++I) {
      if (FusedPre.test(I) == Row->Pre.test(I) &&
          FusedPost.test(I) == Row->Post.test(I))
        continue;
      ++Mismatches;
      Lint.Findings.push_back(
          {Severity::Error, "consistency/fused-machine-set", Name,
           std::string("function ") + Matrix.Universe->Functions[I] +
               ": the fused wrapper's compiled-in machine set disagrees "
               "with the relevance matrix"});
    }
  }

  synth::FusedCompileResult Compiled =
      synth::compileFusedChecks(Machines, Reporter);
  if (!Compiled.Table) {
    Lint.Findings.push_back({Severity::Error, "consistency/fused-compile", "",
                             Compiled.Error});
    return;
  }
  for (size_t I = 0; I < jni::NumJniFunctions; ++I) {
    size_t PlanPre = 0, PlanPost = 0;
    for (const synth::FusedPlanRow &R : Plan.Rows)
      if (R.Fn == I)
        ++(R.Post ? PlanPost : PlanPre);
    const jvmti::FusedTable::FnRec &Rec = Compiled.Table->Fns[I];
    if (Rec.PreCount == PlanPre && Rec.PostCount == PlanPost)
      continue;
    ++Mismatches;
    Lint.Findings.push_back(
        {Severity::Error, "consistency/fused-slot-count", "",
         std::string("function ") + Matrix.Universe->Functions[I] +
             ": compiled slot counts disagree with the fused plan"});
  }

  if (!Mismatches)
    Lint.Findings.push_back(
        {Severity::Info, "consistency/fused-plan", "",
         "the checked-in fused plan matches the live specs (" +
             std::to_string(Plan.Rows.size()) + " rows, " +
             std::to_string(Compiled.SlotCount) + " compiled slots over " +
             std::to_string(Compiled.CheckedFunctions) +
             " functions); every fused wrapper's machine set equals its "
             "relevance-matrix row"});
}

/// --fused-plan: dump the live Algorithm-1 walk as JSON for
/// tools/gen_fused_checks.py, which turns it into src/synth/FusedPlan.inc.
int printFusedPlan(const std::vector<spec::MachineBase *> &Machines) {
  synth::DerivedFusedPlan Plan = synth::deriveFusedPlan(Machines);
  std::printf("{\n  \"tool\": \"jinn-speclint\",\n  \"fusedPlan\": {\n");
  std::printf("    \"machines\": [");
  for (size_t I = 0; I < Plan.MachineNames.size(); ++I)
    std::printf("%s\"%s\"", I ? ", " : "",
                jsonEscaped(Plan.MachineNames[I]).c_str());
  std::printf("],\n    \"functions\": [");
  for (size_t I = 0; I < jni::NumJniFunctions; ++I)
    std::printf("%s\"%s\"", I ? ", " : "",
                jni::fnName(static_cast<jni::FnId>(I)));
  std::printf("],\n    \"rows\": [\n");
  for (size_t I = 0; I < Plan.Rows.size(); ++I) {
    const synth::FusedPlanRow &R = Plan.Rows[I];
    std::printf("      [%u, %u, %u, %u]%s\n", R.Fn, R.Machine, R.Transition,
                R.Post, I + 1 < Plan.Rows.size() ? "," : "");
  }
  std::printf("    ]\n  }\n}\n");
  return 0;
}

void printFindings(const LintReport &Lint) {
  for (Severity S : {Severity::Error, Severity::Warning, Severity::Info})
    for (const Finding &F : Lint.Findings) {
      if (F.S != S)
        continue;
      std::printf("  %-7s %-33s %s%s%s\n", severityName(F.S),
                  F.Check.c_str(), F.Machine.empty() ? "" : "[",
                  F.Machine.empty() ? "" : (F.Machine + "] ").c_str(),
                  F.Detail.c_str());
    }
  if (Lint.Findings.empty())
    std::printf("  (no findings)\n");
}

void printMatrix(const UniverseReport &Report) {
  std::printf("\nRelevance matrix (%s universe, %zu functions):\n",
              Report.Name.c_str(), Report.Matrix.Universe->size());
  std::printf("  %-36s | %7s %8s | %9s %10s | %5s %5s\n", "machine",
              "pre fns", "post fns", "pre hooks", "post hooks", "entry",
              "exit");
  for (const MachineRelevance &Row : Report.Matrix.Machines)
    std::printf("  %-36s | %7zu %8zu | %9zu %10zu | %5zu %5zu\n",
                Row.Machine.c_str(), Row.Pre.count(), Row.Post.count(),
                Row.PreHooks, Row.PostHooks, Row.NativeEntryTriggers,
                Row.NativeExitTriggers);
  std::printf("  %-36s | %7zu %8zu | %9zu %10zu | %5zu %5zu\n", "union / total",
              Report.Matrix.AnyPre.count(), Report.Matrix.AnyPost.count(),
              Report.Matrix.TotalPreHooks, Report.Matrix.TotalPostHooks,
              Report.Matrix.TotalNativeEntry, Report.Matrix.TotalNativeExit);
  size_t N = Report.Matrix.Universe->size();
  std::printf("  observed: %zu/%zu functions (%zu by function-specific "
              "selectors); elidable without the all-function machines: %zu\n",
              Report.Matrix.Any.count(), N, Report.Matrix.SpecificAny.count(),
              N - Report.Matrix.SpecificAny.count());
}

void printCensusJoin(const RelevanceMatrix &Matrix) {
  std::printf("\nTable 2 constraint classes vs relevance matrix:\n");
  std::printf("  %-12s %-36s | %6s %6s | %7s %8s\n", "class", "machine",
              "rules", "paper", "pre fns", "post fns");
  for (const agent::CensusRow &Row : agent::computeConstraintCensus()) {
    const MachineRelevance *Rel = nullptr;
    for (const MachineRelevance &R : Matrix.Machines)
      if (R.Machine.rfind(Row.Name, 0) == 0 ||
          Row.Name.rfind(R.Machine, 0) == 0)
        Rel = &R;
    std::printf("  %-12s %-36s | %6zu %6zu | %7zu %8zu\n",
                Row.ConstraintClass.c_str(), Row.Name.c_str(), Row.Count,
                Row.PaperCount, Rel ? Rel->Pre.count() : 0,
                Rel ? Rel->Post.count() : 0);
  }
}

std::string jsonEscaped(const std::string &Text) {
  std::string Out;
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20)
      Out += ' ';
    else
      Out += C;
  }
  return Out;
}

void printJson(const std::vector<UniverseReport> &Reports,
               const synth::SynthesisStats &Stats) {
  std::printf("{\n  \"tool\": \"jinn-speclint\",\n");
  std::printf("  \"synthesis\": {\"machines\": %zu, \"transitions\": %zu, "
              "\"preHooks\": %zu, \"postHooks\": %zu, \"nativeEntry\": %zu, "
              "\"nativeExit\": %zu, \"points\": %zu},\n",
              Stats.MachineCount, Stats.StateTransitionCount,
              Stats.JniPreHooks, Stats.JniPostHooks, Stats.NativeEntryActions,
              Stats.NativeExitActions, Stats.instrumentationPoints());
  std::printf("  \"universes\": [\n");
  for (size_t U = 0; U < Reports.size(); ++U) {
    const UniverseReport &Report = Reports[U];
    std::printf("    {\"name\": \"%s\", \"functions\": %zu, \"observed\": "
                "%zu,\n     \"machines\": [\n",
                jsonEscaped(Report.Name).c_str(),
                Report.Matrix.Universe->size(), Report.Matrix.Any.count());
    for (size_t M = 0; M < Report.Matrix.Machines.size(); ++M) {
      const MachineRelevance &Row = Report.Matrix.Machines[M];
      std::string Counter; // additive: present only for pushdown machines
      if (M < Report.Models.size() && Report.Models[M].hasCounter()) {
        char Buf[128];
        std::snprintf(Buf, sizeof(Buf),
                      ", \"counter\": {\"name\": \"%s\", \"bound\": %u}",
                      jsonEscaped(Report.Models[M].Counter.Name).c_str(),
                      Report.Models[M].Counter.Bound);
        Counter = Buf;
      }
      std::printf("       {\"name\": \"%s\", \"preFns\": %zu, \"postFns\": "
                  "%zu, \"preHooks\": %zu, \"postHooks\": %zu, "
                  "\"nativeEntry\": %zu, \"nativeExit\": %zu%s}%s\n",
                  jsonEscaped(Row.Machine).c_str(), Row.Pre.count(),
                  Row.Post.count(), Row.PreHooks, Row.PostHooks,
                  Row.NativeEntryTriggers, Row.NativeExitTriggers,
                  Counter.c_str(),
                  M + 1 < Report.Matrix.Machines.size() ? "," : "");
    }
    std::printf("     ],\n     \"findings\": [\n");
    for (size_t F = 0; F < Report.Lint.Findings.size(); ++F) {
      const Finding &Finding = Report.Lint.Findings[F];
      std::printf("       {\"severity\": \"%s\", \"check\": \"%s\", "
                  "\"machine\": \"%s\", \"detail\": \"%s\"}%s\n",
                  severityName(Finding.S), jsonEscaped(Finding.Check).c_str(),
                  jsonEscaped(Finding.Machine).c_str(),
                  jsonEscaped(Finding.Detail).c_str(),
                  F + 1 < Report.Lint.Findings.size() ? "," : "");
    }
    std::printf("     ]}%s\n", U + 1 < Reports.size() ? "," : "");
  }
  size_t Errors = 0, Warnings = 0;
  for (const UniverseReport &Report : Reports) {
    Errors += Report.Lint.count(Severity::Error);
    Warnings += Report.Lint.count(Severity::Warning);
  }
  std::printf("  ],\n  \"errors\": %zu,\n  \"warnings\": %zu\n}\n", Errors,
              Warnings);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = false;
  bool FusedPlanMode = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0) {
      Json = true;
    } else if (std::strcmp(Argv[I], "--fused-plan") == 0) {
      FusedPlanMode = true;
    } else if (std::strcmp(Argv[I], "--help") == 0 ||
               std::strcmp(Argv[I], "-h") == 0) {
      std::printf(
          "usage: jinn-speclint [--json] [--fused-plan]\n\n"
          "Statically analyzes the fourteen JNI machine specifications and\n"
          "the Python checker's machines: reachability, determinism,\n"
          "coverage (the per-function relevance matrix), and consistency\n"
          "with what Algorithm 1 synthesizes — including the fused\n"
          "(tier-1) check plan checked in at src/synth/FusedPlan.inc.\n"
          "Exits non-zero on any ERROR-class finding.\n\n"
          "--fused-plan dumps the live Algorithm-1 walk as JSON for\n"
          "tools/gen_fused_checks.py, which regenerates FusedPlan.inc.\n");
      return 0;
    } else {
      std::fprintf(stderr, "jinn-speclint: unknown option %s\n", Argv[I]);
      return 2;
    }
  }

  if (FusedPlanMode) {
    agent::MachineSet PlanMachines;
    return printFusedPlan(PlanMachines.all());
  }

  // Load the fourteen machines and run Algorithm 1 against a scratch
  // dispatcher — both the stats-consistency lint and the hook-table
  // cross-check compare static derivation against the real synthesis.
  agent::MachineSet Machines;
  NullReporter Reporter;
  synth::Synthesizer Synth(Machines.all(), Reporter);
  jvmti::InterposeDispatcher Scratch;
  synth::SynthesisStats Stats = Synth.installInto(Scratch);

  std::vector<UniverseReport> Reports(2);
  UniverseReport &Jni = Reports[0];
  Jni.Name = "JNI";
  for (spec::MachineBase *Machine : Machines.all())
    Jni.Models.push_back(buildModel(Machine->spec()));
  Jni.Matrix = buildRelevanceMatrix(Jni.Models);
  LintOptions JniOpts;
  JniOpts.Stats = &Stats;
  Jni.Lint = lintMachines(Jni.Models, JniOpts);
  checkDispatcherAgainstMatrix(Scratch, Jni.Matrix, Jni.Lint);
  checkFusedAgainstMatrix(Machines.all(), Jni.Matrix, Reporter, Jni.Lint);

  UniverseReport &Py = Reports[1];
  Py.Name = "Python/C";
  Py.Models = buildPythonModels();
  Py.Matrix = buildRelevanceMatrix(Py.Models);
  Py.Lint = lintMachines(Py.Models);

  if (Json) {
    printJson(Reports, Stats);
  } else {
    std::printf("jinn-speclint: %zu JNI machines, %zu Python/C machines\n",
                Jni.Models.size(), Py.Models.size());
    std::printf("synthesis: %zu transitions -> %zu pre + %zu post JNI hooks, "
                "%zu native entry + %zu exit actions (%zu points)\n",
                Stats.StateTransitionCount, Stats.JniPreHooks,
                Stats.JniPostHooks, Stats.NativeEntryActions,
                Stats.NativeExitActions, Stats.instrumentationPoints());
    for (const UniverseReport &Report : Reports) {
      printMatrix(Report);
      std::printf("\nFindings (%s):\n", Report.Name.c_str());
      printFindings(Report.Lint);
    }
    printCensusJoin(Jni.Matrix);
  }

  bool Failed = false;
  for (const UniverseReport &Report : Reports)
    Failed |= Report.Lint.hasErrors();
  if (!Json)
    std::printf("\njinn-speclint: %s\n", Failed ? "FAIL" : "PASS");
  return Failed ? 1 : 0;
}
