//===- tests/handle_test.cpp - Handle encoding unit/property tests -------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jvm/Handle.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace jinn;
using namespace jinn::jvm;

namespace {

TEST(Handle, NullEncodesToZero) {
  HandleBits Bits;
  EXPECT_EQ(encodeHandle(Bits), 0u);
  auto Decoded = decodeHandle(0);
  ASSERT_TRUE(Decoded.has_value());
  EXPECT_EQ(Decoded->Kind, RefKind::Null);
}

TEST(Handle, RoundTripAllKinds) {
  for (RefKind Kind : {RefKind::Local, RefKind::Global,
                       RefKind::WeakGlobal}) {
    HandleBits In;
    In.Kind = Kind;
    In.Thread = 17;
    In.Slot = 12345;
    In.Gen = 999;
    auto Out = decodeHandle(encodeHandle(In));
    ASSERT_TRUE(Out.has_value());
    EXPECT_EQ(Out->Kind, Kind);
    EXPECT_EQ(Out->Thread, 17u);
    EXPECT_EQ(Out->Slot, 12345u);
    EXPECT_EQ(Out->Gen, 999u);
  }
}

TEST(Handle, HeapPointersAreNotHandles) {
  // Canonical x86-64 heap/stack addresses have zero top bits — no magic.
  int Local = 0;
  auto P1 = decodeHandle(reinterpret_cast<uintptr_t>(&Local));
  EXPECT_FALSE(P1.has_value());
  auto Heap = std::make_unique<int>(7);
  auto P2 = decodeHandle(reinterpret_cast<uintptr_t>(Heap.get()));
  EXPECT_FALSE(P2.has_value());
}

TEST(Handle, WrongMagicRejected) {
  HandleBits In;
  In.Kind = RefKind::Local;
  In.Slot = 5;
  In.Gen = 1;
  uint64_t Word = encodeHandle(In);
  // Flip the magic nibble.
  EXPECT_FALSE(decodeHandle(Word ^ (0xFULL << 60)).has_value());
}

TEST(Handle, KindZeroWithMagicRejected) {
  // Magic present but kind bits 00: not a valid handle.
  uint64_t Word = 0xAULL << 60;
  EXPECT_FALSE(decodeHandle(Word).has_value());
}

TEST(Handle, FieldRangesRoundTripUnderRandomSweep) {
  SplitMix64 Rng(42);
  for (int I = 0; I < 2000; ++I) {
    HandleBits In;
    In.Kind = static_cast<RefKind>(1 + Rng.nextBelow(3));
    In.Thread = static_cast<uint32_t>(Rng.nextBelow(MaxThreadIds));
    In.Slot = static_cast<uint32_t>(
        Rng.nextBelow(handle_detail::SlotMask + 1));
    In.Gen = static_cast<uint32_t>(Rng.nextBelow(handle_detail::GenMask + 1));
    if (In.Gen == 0)
      In.Gen = 1;
    auto Out = decodeHandle(encodeHandle(In));
    ASSERT_TRUE(Out.has_value());
    EXPECT_EQ(Out->Kind, In.Kind);
    EXPECT_EQ(Out->Thread, In.Thread);
    EXPECT_EQ(Out->Slot, In.Slot);
    EXPECT_EQ(Out->Gen, In.Gen);
  }
}

TEST(Handle, DistinctFieldsGiveDistinctWords) {
  HandleBits A, B;
  A.Kind = B.Kind = RefKind::Local;
  A.Thread = B.Thread = 1;
  A.Slot = 7;
  B.Slot = 7;
  A.Gen = 1;
  B.Gen = 2; // recycled slot: new generation
  EXPECT_NE(encodeHandle(A), encodeHandle(B));
}

} // namespace
