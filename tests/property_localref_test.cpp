//===- tests/property_localref_test.cpp - Local-ref fuzz properties ------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for the local-reference machine against randomized
/// programs:
///
///  1. No false positives: any *legal* sequence of acquire / delete /
///     push / pop / use operations produces zero Jinn reports.
///  2. No false negatives (for this machine's errors): injecting exactly
///     one use-after-delete or delete-after-delete into an otherwise legal
///     sequence always produces a report.
///
//===----------------------------------------------------------------------===//

#include "TestHarness.h"
#include "support/Rng.h"

using namespace jinn;
using namespace jinn::testing;

namespace {

/// Drives a random legal local-reference workout; returns live handles.
void runLegalOps(JinnWorld &W, SplitMix64 &Rng, int Steps) {
  JNIEnv *Env = W.env();
  const JNINativeInterface_ *Fns = Env->functions;
  Fns->EnsureLocalCapacity(Env, 4096); // legality: never overflow

  struct Frame {
    std::vector<jstring> Live;
  };
  std::vector<Frame> Frames(1);

  for (int I = 0; I < Steps; ++I) {
    switch (Rng.nextBelow(6)) {
    case 0:
    case 1: { // acquire
      jstring S = Fns->NewStringUTF(Env, "payload");
      ASSERT_NE(S, nullptr);
      Frames.back().Live.push_back(S);
      break;
    }
    case 2: { // legal use of a live reference
      if (!Frames.back().Live.empty()) {
        jstring S =
            Frames.back().Live[Rng.nextBelow(Frames.back().Live.size())];
        EXPECT_EQ(Fns->GetStringUTFLength(Env, S), 7);
      }
      break;
    }
    case 3: { // delete a live reference of the top frame
      if (!Frames.back().Live.empty()) {
        size_t Pick = Rng.nextBelow(Frames.back().Live.size());
        Fns->DeleteLocalRef(Env, Frames.back().Live[Pick]);
        Frames.back().Live.erase(Frames.back().Live.begin() + Pick);
      }
      break;
    }
    case 4: // push a frame
      if (Frames.size() < 6 && Fns->PushLocalFrame(Env, 4096) == JNI_OK)
        Frames.emplace_back();
      break;
    default: // pop a frame (its refs die legally)
      if (Frames.size() > 1) {
        Fns->PopLocalFrame(Env, nullptr);
        Frames.pop_back();
      }
      break;
    }
  }
  while (Frames.size() > 1) {
    Fns->PopLocalFrame(Env, nullptr);
    Frames.pop_back();
  }
  for (jstring S : Frames.back().Live)
    Fns->DeleteLocalRef(Env, S);
}

TEST(LocalRefProperty, LegalSequencesNeverReport) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    JinnWorld W;
    SplitMix64 Rng(Seed);
    runLegalOps(W, Rng, 300);
    W.Vm.shutdown();
    EXPECT_EQ(W.reportCount(), 0u) << "seed " << Seed;
  }
}

TEST(LocalRefProperty, InjectedUseAfterDeleteAlwaysReports) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    JinnWorld W;
    JNIEnv *Env = W.env();
    const JNINativeInterface_ *Fns = Env->functions;
    SplitMix64 Rng(Seed * 77);
    runLegalOps(W, Rng, static_cast<int>(Rng.nextBelow(100)));
    ASSERT_EQ(W.reportCount(), 0u);
    // Inject the bug.
    jstring Victim = Fns->NewStringUTF(Env, "victim!");
    Fns->DeleteLocalRef(Env, Victim);
    Fns->GetStringUTFLength(Env, Victim);
    EXPECT_EQ(W.Jinn.reporter().countFor("Local reference"), 1u)
        << "seed " << Seed;
  }
}

TEST(LocalRefProperty, InjectedDoubleDeleteAlwaysReports) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    JinnWorld W;
    JNIEnv *Env = W.env();
    const JNINativeInterface_ *Fns = Env->functions;
    SplitMix64 Rng(Seed * 131);
    runLegalOps(W, Rng, static_cast<int>(Rng.nextBelow(100)));
    jstring Victim = Fns->NewStringUTF(Env, "victim!");
    Fns->DeleteLocalRef(Env, Victim);
    Fns->DeleteLocalRef(Env, Victim);
    EXPECT_EQ(W.Jinn.reporter().countFor("Local reference"), 1u)
        << "seed " << Seed;
  }
}

TEST(LocalRefProperty, ShadowCountAgreesWithVmGroundTruth) {
  JinnWorld W;
  JNIEnv *Env = W.env();
  const JNINativeInterface_ *Fns = Env->functions;
  Fns->EnsureLocalCapacity(Env, 4096);
  SplitMix64 Rng(5);
  std::vector<jstring> Live;
  for (int I = 0; I < 400; ++I) {
    if (Rng.chance(3, 5)) {
      Live.push_back(Fns->NewStringUTF(Env, "x"));
    } else if (!Live.empty()) {
      size_t Pick = Rng.nextBelow(Live.size());
      Fns->DeleteLocalRef(Env, Live[Pick]);
      Live.erase(Live.begin() + Pick);
    }
    // Jinn's shadow bookkeeping vs. the VM's arena.
    EXPECT_EQ(W.Jinn.machines().LocalRef.liveCount(W.main().id()),
              W.main().liveLocalCount());
  }
}

} // namespace
