//===- tests/jni_field_test.cpp - Field accessor unit tests ---------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

using namespace jinn;
using namespace jinn::testing;

namespace {

struct JniField : ::testing::Test {
  VmWorld W;
  JNIEnv *Env = W.env();
  const JNINativeInterface_ *Fns = W.env()->functions;
  jclass Box = nullptr;
  jobject Obj = nullptr;

  void SetUp() override {
    jvm::ClassDef Def;
    Def.Name = "t/Box";
    Def.field("z", "Z").field("b", "B").field("c", "C").field("s", "S");
    Def.field("i", "I").field("j", "J").field("f", "F").field("d", "D");
    Def.field("ref", "Ljava/lang/String;");
    Def.field("COUNT", "I", /*IsStatic=*/true);
    Def.field("NAME", "Ljava/lang/String;", /*IsStatic=*/true);
    Def.field("LIMIT", "I", /*IsStatic=*/true, /*IsFinal=*/true);
    W.define(Def);
    Box = Fns->FindClass(Env, "t/Box");
    Obj = Fns->AllocObject(Env, Box);
  }
};

TEST_F(JniField, AllPrimitiveInstanceFieldsRoundTrip) {
  Fns->SetBooleanField(Env, Obj, Fns->GetFieldID(Env, Box, "z", "Z"),
                       JNI_TRUE);
  Fns->SetByteField(Env, Obj, Fns->GetFieldID(Env, Box, "b", "B"), -7);
  Fns->SetCharField(Env, Obj, Fns->GetFieldID(Env, Box, "c", "C"), 'Q');
  Fns->SetShortField(Env, Obj, Fns->GetFieldID(Env, Box, "s", "S"), -1234);
  Fns->SetIntField(Env, Obj, Fns->GetFieldID(Env, Box, "i", "I"), 42);
  Fns->SetLongField(Env, Obj, Fns->GetFieldID(Env, Box, "j", "J"),
                    1LL << 40);
  Fns->SetFloatField(Env, Obj, Fns->GetFieldID(Env, Box, "f", "F"), 0.5f);
  Fns->SetDoubleField(Env, Obj, Fns->GetFieldID(Env, Box, "d", "D"), 2.75);

  EXPECT_EQ(Fns->GetBooleanField(Env, Obj,
                                 Fns->GetFieldID(Env, Box, "z", "Z")),
            JNI_TRUE);
  EXPECT_EQ(Fns->GetByteField(Env, Obj, Fns->GetFieldID(Env, Box, "b", "B")),
            -7);
  EXPECT_EQ(Fns->GetCharField(Env, Obj, Fns->GetFieldID(Env, Box, "c", "C")),
            'Q');
  EXPECT_EQ(Fns->GetShortField(Env, Obj,
                               Fns->GetFieldID(Env, Box, "s", "S")),
            -1234);
  EXPECT_EQ(Fns->GetIntField(Env, Obj, Fns->GetFieldID(Env, Box, "i", "I")),
            42);
  EXPECT_EQ(Fns->GetLongField(Env, Obj, Fns->GetFieldID(Env, Box, "j", "J")),
            1LL << 40);
  EXPECT_FLOAT_EQ(
      Fns->GetFloatField(Env, Obj, Fns->GetFieldID(Env, Box, "f", "F")),
      0.5f);
  EXPECT_DOUBLE_EQ(
      Fns->GetDoubleField(Env, Obj, Fns->GetFieldID(Env, Box, "d", "D")),
      2.75);
}

TEST_F(JniField, ObjectFieldRoundTripAndNull) {
  jfieldID Ref = Fns->GetFieldID(Env, Box, "ref", "Ljava/lang/String;");
  jstring S = Fns->NewStringUTF(Env, "payload");
  Fns->SetObjectField(Env, Obj, Ref, S);
  jobject Out = Fns->GetObjectField(Env, Obj, Ref);
  EXPECT_EQ(Fns->IsSameObject(Env, S, Out), JNI_TRUE);
  Fns->SetObjectField(Env, Obj, Ref, nullptr); // storing null is legal
  EXPECT_EQ(Fns->GetObjectField(Env, Obj, Ref), nullptr);
}

TEST_F(JniField, StaticFieldsRoundTrip) {
  jfieldID Count = Fns->GetStaticFieldID(Env, Box, "COUNT", "I");
  Fns->SetStaticIntField(Env, Box, Count, 7);
  EXPECT_EQ(Fns->GetStaticIntField(Env, Box, Count), 7);

  jfieldID Name =
      Fns->GetStaticFieldID(Env, Box, "NAME", "Ljava/lang/String;");
  jstring S = Fns->NewStringUTF(Env, "static payload");
  Fns->SetStaticObjectField(Env, Box, Name, S);
  jobject Out = Fns->GetStaticObjectField(Env, Box, Name);
  EXPECT_EQ(Fns->IsSameObject(Env, S, Out), JNI_TRUE);
}

TEST_F(JniField, StaticFieldSurvivesGc) {
  jfieldID Name =
      Fns->GetStaticFieldID(Env, Box, "NAME", "Ljava/lang/String;");
  jstring S = Fns->NewStringUTF(Env, "rooted by the static");
  Fns->SetStaticObjectField(Env, Box, Name, S);
  Fns->DeleteLocalRef(Env, S);
  W.Vm.gc();
  jobject Out = Fns->GetStaticObjectField(Env, Box, Name);
  EXPECT_EQ(W.Vm.utf8Of(W.Rt.deref(Env, Out)), "rooted by the static");
}

TEST_F(JniField, FinalFieldWriteIsAccessControlViolation) {
  jfieldID Limit = Fns->GetStaticFieldID(Env, Box, "LIMIT", "I");
  Fns->SetStaticIntField(Env, Box, Limit, 99);
  // Table 1 row 9: production surfaces an NPE; the write is suppressed.
  EXPECT_EQ(W.pendingClass(), "java/lang/NullPointerException");
  W.main().Pending = jvm::ObjectId();
  EXPECT_EQ(Fns->GetStaticIntField(Env, Box, Limit), 0);
}

TEST_F(JniField, StaticnessMismatchIsUndefined) {
  jfieldID Count = Fns->GetStaticFieldID(Env, Box, "COUNT", "I");
  Fns->GetIntField(Env, Obj, Count); // static id through instance getter
  EXPECT_TRUE(W.Vm.diags().has(IncidentKind::UndefinedState));
}

TEST_F(JniField, NullObjectThrowsNpe) {
  jfieldID I = Fns->GetFieldID(Env, Box, "i", "I");
  Fns->GetIntField(Env, nullptr, I);
  EXPECT_EQ(W.pendingClass(), "java/lang/NullPointerException");
}

TEST_F(JniField, MissingFieldThrows) {
  EXPECT_EQ(Fns->GetFieldID(Env, Box, "nope", "I"), nullptr);
  EXPECT_EQ(W.pendingClass(), "java/lang/NoSuchFieldError");
  W.main().Pending = jvm::ObjectId();
  // Wrong descriptor also misses.
  EXPECT_EQ(Fns->GetFieldID(Env, Box, "i", "J"), nullptr);
}

TEST_F(JniField, InheritedFieldsAccessibleThroughSubclass) {
  jvm::ClassDef Sub;
  Sub.Name = "t/SubBox";
  Sub.Super = "t/Box";
  Sub.field("extra", "I");
  W.define(Sub);
  jclass SubCls = Fns->FindClass(Env, "t/SubBox");
  jobject SubObj = Fns->AllocObject(Env, SubCls);
  jfieldID I = Fns->GetFieldID(Env, SubCls, "i", "I"); // inherited
  ASSERT_NE(I, nullptr);
  Fns->SetIntField(Env, SubObj, I, 5);
  EXPECT_EQ(Fns->GetIntField(Env, SubObj, I), 5);
  jfieldID Extra = Fns->GetFieldID(Env, SubCls, "extra", "I");
  Fns->SetIntField(Env, SubObj, Extra, 6);
  EXPECT_EQ(Fns->GetIntField(Env, SubObj, Extra), 6);
  EXPECT_EQ(Fns->GetIntField(Env, SubObj, I), 5); // distinct slots
}

} // namespace
