//===- tests/jthread_test.cpp - Thread & local-ref frame unit tests ------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jvm/Vm.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace jinn;
using namespace jinn::jvm;

namespace {

struct JThreadTest : ::testing::Test {
  Vm V;
  JThread &Main = V.mainThread();
  ObjectId Obj = V.newString("target");

  HandleBits bitsOf(uint64_t Word) {
    auto Decoded = decodeHandle(Word);
    EXPECT_TRUE(Decoded.has_value());
    return *Decoded;
  }
};

TEST_F(JThreadTest, MainThreadHasABaseFrame) {
  EXPECT_EQ(Main.frameDepth(), 1u);
  EXPECT_EQ(Main.topFrameCapacity(), 16u);
}

TEST_F(JThreadTest, NewLocalRefResolves) {
  uint64_t Word = Main.newLocalRef(Obj);
  ASSERT_NE(Word, 0u);
  HandleBits Bits = bitsOf(Word);
  EXPECT_EQ(Bits.Kind, RefKind::Local);
  EXPECT_EQ(Bits.Thread, Main.id());
  EXPECT_EQ(Main.localRefState(Bits), LocalRefState::Live);
  EXPECT_EQ(Main.resolveLocal(Bits), Obj);
}

TEST_F(JThreadTest, NullTargetYieldsNullHandle) {
  EXPECT_EQ(Main.newLocalRef(ObjectId()), 0u);
}

TEST_F(JThreadTest, DeleteInvalidatesHandle) {
  uint64_t Word = Main.newLocalRef(Obj);
  HandleBits Bits = bitsOf(Word);
  EXPECT_TRUE(Main.deleteLocal(Bits));
  EXPECT_EQ(Main.localRefState(Bits), LocalRefState::Stale);
  EXPECT_FALSE(Main.deleteLocal(Bits)); // double delete fails
  EXPECT_TRUE(Main.resolveLocal(Bits).isNull());
}

TEST_F(JThreadTest, FramePopInvalidatesAllItsRefs) {
  Main.pushFrame(16, /*Explicit=*/true);
  uint64_t W1 = Main.newLocalRef(Obj);
  uint64_t W2 = Main.newLocalRef(Obj);
  EXPECT_TRUE(Main.popFrame());
  EXPECT_EQ(Main.localRefState(bitsOf(W1)), LocalRefState::Stale);
  EXPECT_EQ(Main.localRefState(bitsOf(W2)), LocalRefState::Stale);
}

TEST_F(JThreadTest, RefsInOuterFramesSurviveInnerPop) {
  uint64_t Outer = Main.newLocalRef(Obj);
  Main.pushFrame(16, true);
  Main.newLocalRef(Obj);
  Main.popFrame();
  EXPECT_EQ(Main.localRefState(bitsOf(Outer)), LocalRefState::Live);
}

TEST_F(JThreadTest, RecycledSlotsGetNewGenerations) {
  uint64_t W1 = Main.newLocalRef(Obj);
  HandleBits B1 = bitsOf(W1);
  Main.deleteLocal(B1);
  uint64_t W2 = Main.newLocalRef(Obj); // reuses the slot
  HandleBits B2 = bitsOf(W2);
  EXPECT_EQ(B2.Slot, B1.Slot);
  EXPECT_GT(B2.Gen, B1.Gen);
  EXPECT_EQ(Main.localRefState(B1), LocalRefState::Stale);
  EXPECT_EQ(Main.localRefState(B2), LocalRefState::Live);
}

TEST_F(JThreadTest, NeverIssuedIsDistinguishedFromStale) {
  HandleBits Future;
  Future.Kind = RefKind::Local;
  Future.Thread = Main.id();
  Future.Slot = 0;
  Future.Gen = 1 << 20; // a generation far in the future
  EXPECT_EQ(Main.localRefState(Future), LocalRefState::NeverIssued);
}

TEST_F(JThreadTest, CapacityAccountingAndOverflowFlag) {
  EXPECT_FALSE(Main.everOverflowedCapacity());
  Main.pushFrame(4, true);
  for (int I = 0; I < 4; ++I)
    Main.newLocalRef(Obj);
  EXPECT_FALSE(Main.everOverflowedCapacity());
  Main.newLocalRef(Obj); // fifth exceeds the declared capacity
  EXPECT_TRUE(Main.everOverflowedCapacity());
  EXPECT_EQ(Main.liveLocalsInTopFrame(), 5u); // the VM does not reject it
  Main.popFrame();
}

TEST_F(JThreadTest, EnsureLocalCapacityGrowsTopFrame) {
  EXPECT_TRUE(Main.ensureLocalCapacity(64));
  EXPECT_EQ(Main.topFrameCapacity(), 64u);
  EXPECT_TRUE(Main.ensureLocalCapacity(8)); // never shrinks
  EXPECT_EQ(Main.topFrameCapacity(), 64u);
}

TEST_F(JThreadTest, DeleteAccountsToTheOwningFrame) {
  uint64_t Outer = Main.newLocalRef(Obj);
  Main.pushFrame(16, true);
  Main.newLocalRef(Obj);
  // Delete the OUTER reference while the inner frame is active.
  EXPECT_TRUE(Main.deleteLocal(bitsOf(Outer)));
  EXPECT_EQ(Main.liveLocalsInTopFrame(), 1u);
  Main.popFrame();
  EXPECT_EQ(Main.liveLocalCount(), 0u);
}

TEST_F(JThreadTest, CollectRootsIncludesLiveLocalsAndPending) {
  Main.newLocalRef(Obj);
  V.throwNew(Main, "java/lang/RuntimeException", "boom");
  std::vector<ObjectId> Roots;
  Main.collectRoots(Roots);
  bool SawObj = false, SawPending = false;
  for (ObjectId Id : Roots) {
    SawObj |= Id == Obj;
    SawPending |= Id == Main.Pending;
  }
  EXPECT_TRUE(SawObj);
  EXPECT_TRUE(SawPending);
}

TEST_F(JThreadTest, GcKeepsLocallyReferencedObjectsAlive) {
  ObjectId Temp = V.newString("kept by a local ref");
  Main.newLocalRef(Temp);
  V.gc();
  EXPECT_NE(V.heap().resolve(Temp), nullptr);

  ObjectId Dropped = V.newString("no refs");
  V.gc();
  EXPECT_EQ(V.heap().resolve(Dropped), nullptr);
}

TEST_F(JThreadTest, RenderStackInnermostFirst) {
  Main.Stack.push_back({false, "A.main(A.java:1)"});
  Main.Stack.push_back({true, "A.native(Native Method)"});
  EXPECT_EQ(Main.renderStack(),
            "\tat A.native(Native Method)\n\tat A.main(A.java:1)\n");
}

// Property: a random legal sequence of push/new/delete/pop operations
// never leaves a live handle unresolvable, and staleness is permanent.
TEST_F(JThreadTest, RandomFrameOperationsProperty) {
  SplitMix64 Rng(99);
  std::vector<std::pair<uint64_t, bool>> Issued; // (word, expectLive)
  size_t ExplicitFrames = 0;
  for (int Step = 0; Step < 500; ++Step) {
    switch (Rng.nextBelow(4)) {
    case 0: {
      uint64_t Word = Main.newLocalRef(Obj);
      if (Word)
        Issued.push_back({Word, true});
      break;
    }
    case 1:
      Main.pushFrame(16, true);
      ++ExplicitFrames;
      break;
    case 2:
      if (ExplicitFrames > 0) {
        // Everything issued since the frame was pushed dies; approximate
        // by re-verifying all handles against the thread afterwards.
        Main.popFrame();
        --ExplicitFrames;
        for (auto &Entry : Issued)
          Entry.second = Main.localRefState(*decodeHandle(Entry.first)) ==
                         LocalRefState::Live;
      }
      break;
    default:
      if (!Issued.empty()) {
        auto &Entry = Issued[Rng.nextBelow(Issued.size())];
        if (Entry.second) {
          EXPECT_TRUE(Main.deleteLocal(*decodeHandle(Entry.first)));
          Entry.second = false;
        } else {
          EXPECT_FALSE(Main.deleteLocal(*decodeHandle(Entry.first)));
        }
      }
      break;
    }
    // Invariant: expectation matches the thread's classification.
    for (const auto &Entry : Issued) {
      LocalRefState State = Main.localRefState(*decodeHandle(Entry.first));
      EXPECT_EQ(State == LocalRefState::Live, Entry.second);
    }
  }
}

} // namespace
