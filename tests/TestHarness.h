//===- tests/TestHarness.h - Shared fixtures for the test suite ----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common fixtures: a bare VM+JNI world, and one with the Jinn agent
/// loaded. Tests drive JNI through env->functions exactly as the paper's C
/// examples do.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_TESTS_TESTHARNESS_H
#define JINN_TESTS_TESTHARNESS_H

#include "jinn/JinnAgent.h"
#include "jni/JniRuntime.h"
#include "jvm/Vm.h"
#include "jvmti/Jvmti.h"

#include <gtest/gtest.h>

#include <memory>

namespace jinn::testing {

/// A VM + JNI runtime with no agent: the "production JVM" of Table 1.
class VmWorld {
public:
  explicit VmWorld(jvm::VmOptions Options = jvm::VmOptions())
      : Vm(Options), Rt(Vm) {}

  jvm::Vm Vm;
  jni::JniRuntime Rt;

  JNIEnv *env() { return Rt.mainEnv(); }
  jvm::JThread &main() { return Vm.mainThread(); }

  /// Defines a class and returns its metadata.
  jvm::Klass *define(const jvm::ClassDef &Def) { return Vm.defineClass(Def); }

  /// Registers a native method implementation.
  bool bindNative(const char *ClassName, const char *Method, const char *Sig,
                  jni::JniNativeStdFn Fn) {
    return Rt.registerNative(Vm.findClass(ClassName), Method, Sig,
                             std::move(Fn));
  }

  /// Calls a (Java or native) method by name from the main thread.
  jvm::Value call(const char *ClassName, const char *Method, const char *Sig,
                  jvm::Value Self = jvm::Value::makeNull(),
                  std::vector<jvm::Value> Args = {}) {
    return Vm.invokeByName(main(), ClassName, Method, Sig, Self, Args);
  }

  /// The class of the main thread's pending exception ("" when none).
  std::string pendingClass() {
    if (main().Pending.isNull())
      return "";
    jvm::Klass *Kl = Vm.klassOf(main().Pending);
    return Kl ? Kl->name() : "";
  }

  std::string pendingMessage() {
    return Vm.throwableMessage(main().Pending);
  }
};

/// A VM with the Jinn agent installed (the "-agentlib:jinn" run).
class JinnWorld : public VmWorld {
public:
  explicit JinnWorld(jvm::VmOptions Options = jvm::VmOptions())
      : VmWorld(Options), Host(Rt),
        Jinn(static_cast<agent::JinnAgent &>(
            Host.load(std::make_unique<agent::JinnAgent>()))) {}

  jvmti::AgentHost Host;
  agent::JinnAgent &Jinn;

  const std::vector<agent::JinnReport> &reports() {
    return Jinn.reporter().reports();
  }
  size_t reportCount() { return reports().size(); }
  std::string firstReportMachine() {
    return reports().empty() ? "" : reports().front().Machine;
  }
};

} // namespace jinn::testing

#endif // JINN_TESTS_TESTHARNESS_H
