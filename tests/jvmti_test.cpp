//===- tests/jvmti_test.cpp - JVMTI layer unit tests ----------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

using namespace jinn;
using namespace jinn::testing;
using jinn::jni::FnId;

namespace {

struct JvmtiTest : ::testing::Test {
  VmWorld W;
  JNIEnv *Env = W.env();
  jvmti::JvmtiEnv Jvmti{W.Rt};
};

TEST_F(JvmtiTest, ThreadEventsFire) {
  std::vector<std::string> Log;
  jvmti::EventCallbacks Cb;
  Cb.ThreadStart = [&](jvm::JThread &T) { Log.push_back("start:" + T.name()); };
  Cb.ThreadEnd = [&](jvm::JThread &T) { Log.push_back("end:" + T.name()); };
  Jvmti.setEventCallbacks(std::move(Cb));
  jvm::JThread &Worker = W.Vm.attachThread("worker");
  W.Vm.detachThread(Worker);
  ASSERT_EQ(Log.size(), 2u);
  EXPECT_EQ(Log[0], "start:worker");
  EXPECT_EQ(Log[1], "end:worker");
}

TEST_F(JvmtiTest, VmDeathAndGcEventsFire) {
  int Deaths = 0, Gcs = 0;
  jvmti::EventCallbacks Cb;
  Cb.VmDeath = [&] { ++Deaths; };
  Cb.GcFinish = [&] { ++Gcs; };
  Jvmti.setEventCallbacks(std::move(Cb));
  Jvmti.forceGarbageCollection();
  W.Vm.shutdown();
  W.Vm.shutdown();
  EXPECT_EQ(Gcs, 1);
  EXPECT_EQ(Deaths, 1);
}

TEST_F(JvmtiTest, ObjectIdentityIsStableAcrossHandles) {
  jstring S = Env->functions->NewStringUTF(Env, "tagged");
  jobject G = Env->functions->NewGlobalRef(Env, S);
  int64_t IdLocal = Jvmti.getObjectIdentity(S);
  int64_t IdGlobal = Jvmti.getObjectIdentity(G);
  EXPECT_NE(IdLocal, 0);
  EXPECT_EQ(IdLocal, IdGlobal);
  Env->functions->DeleteLocalRef(Env, S);
  EXPECT_EQ(Jvmti.getObjectIdentity(S), 0); // dead handle: no identity
  EXPECT_EQ(Jvmti.getObjectIdentity(G), IdGlobal);
}

TEST_F(JvmtiTest, DispatcherInstallsInterposedTable) {
  const JNINativeInterface_ *Before = W.Rt.activeTable();
  EXPECT_EQ(Before, W.Rt.defaultTable());
  Jvmti.dispatcher();
  EXPECT_EQ(W.Rt.activeTable(), jvmti::interposedTable());
  EXPECT_EQ(Env->functions, jvmti::interposedTable());
  jvmti::removeInterposition(W.Rt);
  EXPECT_EQ(W.Rt.activeTable(), W.Rt.defaultTable());
}

TEST_F(JvmtiTest, PreHooksSeeClassifiedArguments) {
  jvmti::InterposeDispatcher &D = Jvmti.dispatcher();
  std::vector<uint64_t> SeenWords;
  D.addPre(FnId::GetStringUTFLength, [&](jvmti::CapturedCall &Call) {
    ASSERT_EQ(Call.numArgs(), 1u);
    EXPECT_EQ(Call.arg(0).Cls, jni::ArgClass::Ref);
    SeenWords.push_back(Call.refWord(0));
  });
  jstring S = Env->functions->NewStringUTF(Env, "abc");
  Env->functions->GetStringUTFLength(Env, S);
  ASSERT_EQ(SeenWords.size(), 1u);
  EXPECT_EQ(SeenWords[0], jni::handleWord(S));
}

TEST_F(JvmtiTest, PostHooksSeeReturnValues) {
  jvmti::InterposeDispatcher &D = Jvmti.dispatcher();
  uint64_t RetWord = 0;
  bool RetIsRef = false;
  jint Scalar = -1;
  D.addPost(FnId::NewStringUTF, [&](jvmti::CapturedCall &Call) {
    RetIsRef = Call.returnIsRef();
    RetWord = Call.returnWord();
  });
  D.addPost(FnId::GetStringUTFLength, [&](jvmti::CapturedCall &Call) {
    Scalar = static_cast<jint>(Call.returnWord());
  });
  jstring S = Env->functions->NewStringUTF(Env, "abcd");
  Env->functions->GetStringUTFLength(Env, S);
  EXPECT_TRUE(RetIsRef);
  EXPECT_EQ(RetWord, jni::handleWord(S));
  EXPECT_EQ(Scalar, 4);
}

TEST_F(JvmtiTest, AbortSuppressesTheUnderlyingCall) {
  jvmti::InterposeDispatcher &D = Jvmti.dispatcher();
  D.addPre(FnId::NewStringUTF,
           [](jvmti::CapturedCall &Call) { Call.abortCall(); });
  int PostRuns = 0;
  D.addPost(FnId::NewStringUTF,
            [&](jvmti::CapturedCall &) { ++PostRuns; });
  jstring S = Env->functions->NewStringUTF(Env, "never created");
  EXPECT_EQ(S, nullptr);
  EXPECT_EQ(PostRuns, 0); // post hooks do not run for aborted calls
  EXPECT_EQ(W.Vm.heap().stats().TotalAllocated,
            W.Vm.heap().stats().TotalAllocated); // and nothing allocated
}

TEST_F(JvmtiTest, AbortStopsLaterPreHooks) {
  jvmti::InterposeDispatcher &D = Jvmti.dispatcher();
  int Later = 0;
  D.addPre(FnId::GetVersion,
           [](jvmti::CapturedCall &Call) { Call.abortCall(); });
  D.addPre(FnId::GetVersion, [&](jvmti::CapturedCall &) { ++Later; });
  EXPECT_EQ(Env->functions->GetVersion(Env), 0); // default value
  EXPECT_EQ(Later, 0);
}

TEST_F(JvmtiTest, PreAllRunsBeforePerFunctionHooks) {
  jvmti::InterposeDispatcher &D = Jvmti.dispatcher();
  std::vector<int> Order;
  D.addPreAll([&](jvmti::CapturedCall &) { Order.push_back(1); });
  D.addPre(FnId::GetVersion,
           [&](jvmti::CapturedCall &) { Order.push_back(2); });
  Env->functions->GetVersion(Env);
  ASSERT_EQ(Order.size(), 2u);
  EXPECT_EQ(Order[0], 1);
  EXPECT_EQ(Order[1], 2);
}

TEST_F(JvmtiTest, MaterializeCallArgsDecodesAgainstTheSignature) {
  jvm::ClassDef Def;
  Def.Name = "t/Args";
  Def.method("m", "(ILjava/lang/String;)V",
             [](jvm::Vm &, jvm::JThread &, const jvm::Value &,
                const std::vector<jvm::Value> &) {
               return jvm::Value::makeVoid();
             },
             true);
  W.define(Def);
  jvmti::InterposeDispatcher &D = Jvmti.dispatcher();
  std::vector<jvalue> Seen;
  D.addPre(FnId::CallStaticVoidMethodA, [&](jvmti::CapturedCall &Call) {
    if (Call.materializeCallArgs())
      Seen = Call.callArgs();
    EXPECT_NE(Call.methodArg(), nullptr);
  });
  jclass Cls = Env->functions->FindClass(Env, "t/Args");
  jmethodID M =
      Env->functions->GetStaticMethodID(Env, Cls, "m",
                                        "(ILjava/lang/String;)V");
  jstring S = Env->functions->NewStringUTF(Env, "x");
  jvalue Args[2];
  Args[0].i = 77;
  Args[1].l = S;
  Env->functions->CallStaticVoidMethodA(Env, Cls, M, Args);
  ASSERT_EQ(Seen.size(), 2u);
  EXPECT_EQ(Seen[0].i, 77);
  EXPECT_EQ(Seen[1].l, S);
}

TEST_F(JvmtiTest, NativeMethodBindEventCanWrap) {
  std::vector<std::string> Trace;
  jvmti::EventCallbacks Cb;
  Cb.NativeMethodBind = [&](jvm::MethodInfo &Method,
                            jni::JniNativeStdFn &Bound) {
    Trace.push_back("bind:" + Method.Name);
    jni::JniNativeStdFn Original = std::move(Bound);
    Bound = [&Trace, Original](JNIEnv *E, jobject Self,
                               const jvalue *Args) -> jvalue {
      Trace.push_back("enter");
      jvalue R = Original(E, Self, Args);
      Trace.push_back("exit");
      return R;
    };
  };
  Jvmti.setEventCallbacks(std::move(Cb));

  jvm::ClassDef Def;
  Def.Name = "t/N";
  Def.nativeMethod("n", "()I", true);
  W.define(Def);
  W.bindNative("t/N", "n", "()I",
               [&](JNIEnv *, jobject, const jvalue *) -> jvalue {
                 Trace.push_back("body");
                 jvalue R;
                 R.i = 5;
                 return R;
               });
  jvm::Value Out = W.call("t/N", "n", "()I");
  EXPECT_EQ(Out.I, 5);
  ASSERT_EQ(Trace.size(), 4u);
  EXPECT_EQ(Trace[0], "bind:n");
  EXPECT_EQ(Trace[1], "enter");
  EXPECT_EQ(Trace[2], "body");
  EXPECT_EQ(Trace[3], "exit");
}

TEST_F(JvmtiTest, VariadicFormsDelegateThroughTheWrappedAForm) {
  jvm::ClassDef Def;
  Def.Name = "t/V";
  Def.method("add", "(II)I",
             [](jvm::Vm &, jvm::JThread &, const jvm::Value &,
                const std::vector<jvm::Value> &Args) {
               return jvm::Value::makeInt(
                   static_cast<int32_t>(Args[0].I + Args[1].I));
             },
             true);
  W.define(Def);

  jvmti::InterposeDispatcher &D = Jvmti.dispatcher();
  int AFormChecks = 0;
  D.addPre(FnId::CallStaticIntMethodA,
           [&](jvmti::CapturedCall &) { ++AFormChecks; });

  jclass Cls = Env->functions->FindClass(Env, "t/V");
  jmethodID M = Env->functions->GetStaticMethodID(Env, Cls, "add", "(II)I");
  EXPECT_EQ(Env->functions->CallStaticIntMethod(Env, Cls, M, 2, 3), 5);
  EXPECT_EQ(AFormChecks, 1); // exactly once per logical call
}

TEST_F(JvmtiTest, HookCountsReflectRegistration) {
  jvmti::InterposeDispatcher &D = Jvmti.dispatcher();
  size_t Before = D.hookCount();
  D.addPre(FnId::FindClass, [](jvmti::CapturedCall &) {});
  D.addPostAll([](jvmti::CapturedCall &) {});
  EXPECT_EQ(D.hookCount(), Before + 2);
  EXPECT_EQ(D.preCount(FnId::FindClass), 1u);
  D.clear();
  EXPECT_EQ(D.hookCount(), 0u);
}

} // namespace
