//===- tests/trace_replay_test.cpp - Trace record/replay determinism -----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The determinism guarantee of the boundary-crossing trace subsystem:
/// replaying a record+replay trace — directly or after a round trip
/// through the binary trace file — reproduces the inline checker's report
/// list byte-for-byte, for every microbenchmark and for the concurrent
/// workload driver. Also covers record-only traces (replay is the only
/// checker), the file format's rejection of corrupt input, and the
/// Chrome-trace and counters exporters. Meant to run clean under
/// -fsanitize=thread (configure with -DJINN_TSAN=ON).
///
//===----------------------------------------------------------------------===//

#include "TestHarness.h"
#include "scenarios/Scenarios.h"
#include "trace/Export.h"
#include "trace/Replay.h"
#include "trace/TraceFile.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <tuple>

using namespace jinn;
using namespace jinn::scenarios;

namespace {

WorldConfig recordingConfig(agent::TraceMode Mode) {
  WorldConfig Config;
  Config.Checker = CheckerKind::Jinn;
  Config.JinnMode = Mode;
  return Config;
}

/// gtest-friendly equality over full report structs.
void expectReportsEqual(const std::vector<agent::JinnReport> &Expected,
                        const std::vector<agent::JinnReport> &Actual,
                        const char *Label) {
  ASSERT_EQ(Expected.size(), Actual.size()) << Label;
  for (size_t I = 0; I < Expected.size(); ++I) {
    EXPECT_EQ(Expected[I].Machine, Actual[I].Machine) << Label << " #" << I;
    EXPECT_EQ(Expected[I].Function, Actual[I].Function) << Label << " #" << I;
    EXPECT_EQ(Expected[I].Message, Actual[I].Message) << Label << " #" << I;
    EXPECT_EQ(Expected[I].EndOfRun, Actual[I].EndOfRun) << Label << " #" << I;
  }
}

std::vector<agent::JinnReport> sorted(std::vector<agent::JinnReport> Reports) {
  std::sort(Reports.begin(), Reports.end(),
            [](const agent::JinnReport &A, const agent::JinnReport &B) {
              return std::make_tuple(A.Machine, A.Function, A.Message,
                                     A.EndOfRun) <
                     std::make_tuple(B.Machine, B.Function, B.Message,
                                     B.EndOfRun);
            });
  return Reports;
}

/// A scratch trace-file path unique to this test binary.
std::string tracePath(const char *Tag) {
  return std::string("trace_replay_test_") + Tag + ".jinntrace";
}

// Every microbenchmark, recorded in record+replay mode, must replay to the
// inline checker's exact report list — both from the in-memory trace and
// after a round trip through the binary file format.
TEST(ReplayDeterminism, AllMicrosByteIdentical) {
  for (const MicroInfo &Info : allMicrobenchmarks()) {
    SCOPED_TRACE(Info.ClassName);
    ScenarioWorld World(recordingConfig(agent::TraceMode::RecordAndReplay));
    runMicrobenchmark(Info.Id, World);
    World.shutdown();

    const std::vector<agent::JinnReport> &Inline =
        World.Jinn->reporter().reports();
    if (Info.DetectableAtBoundary) {
      EXPECT_FALSE(Inline.empty()) << "inline checker missed the bug";
    }

    trace::Trace Recorded = World.Jinn->recorder()->collect();
    EXPECT_FALSE(Recorded.Events.empty());

    trace::ReplayResult Direct = trace::replayTrace(Recorded, World.Vm);
    expectReportsEqual(Inline, Direct.Reports, "direct replay");

    std::string Path = tracePath(Info.ClassName);
    std::string Err;
    ASSERT_TRUE(trace::writeTraceFile(Recorded, Path, &Err)) << Err;
    trace::Trace FromDisk;
    ASSERT_TRUE(trace::readTraceFile(FromDisk, Path, &Err)) << Err;
    std::remove(Path.c_str());

    trace::ReplayResult RoundTrip = trace::replayTrace(FromDisk, World.Vm);
    expectReportsEqual(Inline, RoundTrip.Reports, "file round-trip replay");
  }
}

// Record-only traces carry no inline verdicts (no machines ran), but
// replaying them must still catch every boundary-detectable bug.
TEST(ReplayDeterminism, RecordOnlyReplayCatchesBugs) {
  for (const MicroInfo &Info : allMicrobenchmarks()) {
    SCOPED_TRACE(Info.ClassName);
    ScenarioWorld World(recordingConfig(agent::TraceMode::RecordOnly));
    runMicrobenchmark(Info.Id, World);
    World.shutdown();

    EXPECT_TRUE(World.Jinn->reporter().reports().empty())
        << "record-only must not check inline";

    trace::Trace Recorded = World.Jinn->recorder()->collect();
    trace::ReplayResult Replayed = trace::replayTrace(Recorded, World.Vm);
    if (Info.DetectableAtBoundary)
      EXPECT_GT(Replayed.Reports.size(), 0u)
          << "offline replay missed a detectable bug";
    else
      EXPECT_EQ(Replayed.Reports.size(), 0u);
  }
}

// The concurrent workload driver: record+replay across several OS threads,
// deterministic-merge the trace, and verify the replay reproduces the
// inline reports. Cross-thread inline report order is scheduler-dependent,
// so the comparison is over sorted lists (the workload is correct JNI, so
// both lists are normally empty — the assertion is that replay invents
// nothing and loses nothing).
TEST(ReplayDeterminism, ConcurrentWorkloadRecordReplay) {
  ScenarioWorld World(recordingConfig(agent::TraceMode::RecordAndReplay));
  workloads::prepareWorkloadWorld(World);
  const workloads::WorkloadInfo &Info = *workloads::workloadByName("jack");
  workloads::WorkloadRun Run =
      workloads::runWorkloadConcurrent(Info, World, /*ScaleDivisor=*/8192,
                                       /*NumThreads=*/4);
  World.shutdown();
  EXPECT_GT(Run.JniCalls + Run.NativeTransitions, 0u);

  trace::Trace Recorded = World.Jinn->recorder()->collect();
  EXPECT_GT(Recorded.Events.size(), 0u);

  // The merged order must be a valid total order: per-thread sequence
  // numbers strictly increase along the epoch order.
  std::map<uint32_t, uint64_t> LastSeq;
  for (size_t I = 0; I < Recorded.Events.size(); ++I) {
    const trace::TraceEvent &Ev = Recorded.Events[I];
    EXPECT_EQ(Ev.Epoch, I);
    auto It = LastSeq.find(Ev.ThreadId);
    if (It != LastSeq.end()) {
      EXPECT_GT(Ev.Seq, It->second) << "per-thread order broken at " << I;
    }
    LastSeq[Ev.ThreadId] = Ev.Seq;
  }

  trace::ReplayResult Replayed = trace::replayTrace(Recorded, World.Vm);
  EXPECT_EQ(Replayed.EventsReplayed, Recorded.Events.size());
  expectReportsEqual(sorted(World.Jinn->reporter().reports()),
                     sorted(Replayed.Reports), "concurrent replay");
}

// The binary file format: a round trip preserves the header, the thread
// names, and every event byte.
TEST(TraceFileFormat, RoundTripPreservesEverything) {
  ScenarioWorld World(recordingConfig(agent::TraceMode::RecordAndReplay));
  runMicrobenchmark(MicroId::LocalDangling, World);
  World.shutdown();
  trace::Trace Recorded = World.Jinn->recorder()->collect();

  std::string Path = tracePath("roundtrip");
  std::string Err;
  ASSERT_TRUE(trace::writeTraceFile(Recorded, Path, &Err)) << Err;
  trace::Trace FromDisk;
  ASSERT_TRUE(trace::readTraceFile(FromDisk, Path, &Err)) << Err;
  std::remove(Path.c_str());

  EXPECT_EQ(Recorded.Head.Version, FromDisk.Head.Version);
  EXPECT_EQ(Recorded.Head.NativeFrameCapacity,
            FromDisk.Head.NativeFrameCapacity);
  EXPECT_EQ(Recorded.Head.DroppedEvents, FromDisk.Head.DroppedEvents);
  EXPECT_EQ(Recorded.ThreadNames, FromDisk.ThreadNames);
  ASSERT_EQ(Recorded.Events.size(), FromDisk.Events.size());
  // Records are written verbatim, so even the indeterminate slack bytes
  // past each array's count survive — memcmp is exact.
  for (size_t I = 0; I < Recorded.Events.size(); ++I)
    EXPECT_EQ(std::memcmp(&Recorded.Events[I], &FromDisk.Events[I],
                          sizeof(trace::TraceEvent)),
              0)
        << "event " << I;
}

TEST(TraceFileFormat, RejectsCorruptMagic) {
  ScenarioWorld World(recordingConfig(agent::TraceMode::RecordOnly));
  runMicrobenchmark(MicroId::NullArgument, World);
  World.shutdown();
  trace::Trace Recorded = World.Jinn->recorder()->collect();

  std::string Path = tracePath("corrupt");
  std::string Err;
  ASSERT_TRUE(trace::writeTraceFile(Recorded, Path, &Err)) << Err;
  {
    std::fstream File(Path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(File.is_open());
    File.put('X'); // clobber the first magic byte
  }
  trace::Trace Out;
  EXPECT_FALSE(trace::readTraceFile(Out, Path, &Err));
  EXPECT_FALSE(Err.empty());
  std::remove(Path.c_str());
}

TEST(TraceFileFormat, MissingFileFails) {
  trace::Trace Out;
  std::string Err;
  EXPECT_FALSE(
      trace::readTraceFile(Out, "trace_replay_test_nonexistent.jinntrace",
                           &Err));
  EXPECT_FALSE(Err.empty());
}

// The exporters: chrome trace JSON materializes with the expected
// skeleton, and the counters add up.
TEST(TraceExport, ChromeTraceAndCounters) {
  ScenarioWorld World(recordingConfig(agent::TraceMode::RecordAndReplay));
  runMicrobenchmark(MicroId::LocalOverflow, World);
  World.shutdown();
  trace::Trace Recorded = World.Jinn->recorder()->collect();

  std::string Path = "trace_replay_test_chrome.json";
  std::string Err;
  ASSERT_TRUE(trace::writeChromeTrace(Recorded, Path, &Err)) << Err;
  std::ifstream File(Path);
  std::string Text((std::istreambuf_iterator<char>(File)),
                   std::istreambuf_iterator<char>());
  std::remove(Path.c_str());
  EXPECT_NE(Text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Text.find("thread_name"), std::string::npos);

  trace::TraceCounters Counters = trace::computeCounters(Recorded);
  EXPECT_EQ(Counters.TotalEvents, Recorded.Events.size());
  uint64_t KindSum = 0;
  for (size_t K = 0; K < trace::NumEventKinds; ++K)
    KindSum += Counters.KindCounts[K];
  EXPECT_EQ(KindSum, Counters.TotalEvents);
  EXPECT_EQ(Counters.DroppedEvents, Recorded.Head.DroppedEvents);
}

// Bounded recording drops whole chunks (oldest first) and reports the
// loss; the remaining suffix still replays without crashing.
TEST(TraceExport, BoundedRecordingCountsDrops) {
  WorldConfig Config = recordingConfig(agent::TraceMode::RecordOnly);
  Config.JinnRecorder.RingCapacity = 8;
  Config.JinnRecorder.MaxChunksPerThread = 2;
  ScenarioWorld World(Config);
  workloads::prepareWorkloadWorld(World);
  const workloads::WorkloadInfo &Info = *workloads::workloadByName("db");
  workloads::runWorkload(Info, World, /*ScaleDivisor=*/4096);
  World.shutdown();

  trace::Trace Recorded = World.Jinn->recorder()->collect();
  EXPECT_GT(Recorded.Head.DroppedEvents, 0u);
  trace::ReplayResult Replayed = trace::replayTrace(Recorded, World.Vm);
  EXPECT_EQ(Replayed.EventsReplayed, Recorded.Events.size());
}

} // namespace
