//===- tests/jni_core_test.cpp - JNI core function unit tests ------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"
#include "jni/Marshal.h"

using namespace jinn;
using namespace jinn::testing;

namespace {

struct JniCore : ::testing::Test {
  VmWorld W;
  JNIEnv *Env = W.env();
  const JNINativeInterface_ *Fns = W.env()->functions;
};

TEST_F(JniCore, GetVersion) {
  EXPECT_EQ(Fns->GetVersion(Env), JNI_VERSION_1_6);
}

TEST_F(JniCore, FindClassAndMiss) {
  jclass Str = Fns->FindClass(Env, "java/lang/String");
  ASSERT_NE(Str, nullptr);
  EXPECT_EQ(W.Vm.klassFromMirror(W.Rt.deref(Env, Str)), W.Vm.stringClass());

  EXPECT_EQ(Fns->FindClass(Env, "no/Such"), nullptr);
  EXPECT_EQ(W.pendingClass(), "java/lang/NoClassDefFoundError");
}

TEST_F(JniCore, GetSuperclassChain) {
  jclass Npe = Fns->FindClass(Env, "java/lang/NullPointerException");
  jclass Rte = Fns->GetSuperclass(Env, Npe);
  ASSERT_NE(Rte, nullptr);
  EXPECT_EQ(W.Vm.klassFromMirror(W.Rt.deref(Env, Rte))->name(),
            "java/lang/RuntimeException");
  jclass Obj = Fns->FindClass(Env, "java/lang/Object");
  EXPECT_EQ(Fns->GetSuperclass(Env, Obj), nullptr);
}

TEST_F(JniCore, IsAssignableFrom) {
  jclass Npe = Fns->FindClass(Env, "java/lang/NullPointerException");
  jclass Thr = Fns->FindClass(Env, "java/lang/Throwable");
  EXPECT_EQ(Fns->IsAssignableFrom(Env, Npe, Thr), JNI_TRUE);
  EXPECT_EQ(Fns->IsAssignableFrom(Env, Thr, Npe), JNI_FALSE);
  EXPECT_EQ(Fns->IsAssignableFrom(Env, Thr, Thr), JNI_TRUE);
}

TEST_F(JniCore, ThrowAndExceptionLifecycle) {
  jclass Rte = Fns->FindClass(Env, "java/lang/RuntimeException");
  EXPECT_EQ(Fns->ExceptionCheck(Env), JNI_FALSE);
  EXPECT_EQ(Fns->ThrowNew(Env, Rte, "kaboom"), JNI_OK);
  EXPECT_EQ(Fns->ExceptionCheck(Env), JNI_TRUE);
  jthrowable Ex = Fns->ExceptionOccurred(Env);
  ASSERT_NE(Ex, nullptr);
  EXPECT_EQ(W.Vm.throwableMessage(W.Rt.deref(Env, Ex)), "kaboom");
  Fns->ExceptionClear(Env);
  EXPECT_EQ(Fns->ExceptionCheck(Env), JNI_FALSE);

  // Throw an existing throwable object.
  EXPECT_EQ(Fns->Throw(Env, Ex), JNI_OK);
  EXPECT_EQ(Fns->ExceptionCheck(Env), JNI_TRUE);
  Fns->ExceptionClear(Env);
}

TEST_F(JniCore, ThrowNonThrowableIsUndefined) {
  jclass Obj = Fns->FindClass(Env, "java/lang/Object");
  jobject Plain = Fns->AllocObject(Env, Obj);
  Fns->Throw(Env, static_cast<jthrowable>(Plain));
  EXPECT_TRUE(W.Vm.diags().has(IncidentKind::SimulatedCrash)); // row 3
}

TEST_F(JniCore, LocalRefLifecycle) {
  jstring S = Fns->NewStringUTF(Env, "x");
  EXPECT_EQ(Fns->GetObjectRefType(Env, S), JNILocalRefType);
  jobject S2 = Fns->NewLocalRef(Env, S);
  EXPECT_EQ(Fns->IsSameObject(Env, S, S2), JNI_TRUE);
  Fns->DeleteLocalRef(Env, S);
  EXPECT_EQ(Fns->GetObjectRefType(Env, S), JNIInvalidRefType);
  EXPECT_EQ(Fns->GetObjectRefType(Env, S2), JNILocalRefType);
}

TEST_F(JniCore, PushPopLocalFrameTransfersResult) {
  ASSERT_EQ(Fns->PushLocalFrame(Env, 8), JNI_OK);
  jstring Inner = Fns->NewStringUTF(Env, "escapes");
  jobject Escaped = Fns->PopLocalFrame(Env, Inner);
  ASSERT_NE(Escaped, nullptr);
  EXPECT_EQ(Fns->GetObjectRefType(Env, Inner), JNIInvalidRefType);
  EXPECT_EQ(Fns->GetObjectRefType(Env, Escaped), JNILocalRefType);
  EXPECT_EQ(Fns->GetStringUTFLength(Env, static_cast<jstring>(Escaped)), 7);
}

TEST_F(JniCore, GlobalAndWeakRefs) {
  jstring S = Fns->NewStringUTF(Env, "g");
  jobject G = Fns->NewGlobalRef(Env, S);
  jweak Wk = Fns->NewWeakGlobalRef(Env, S);
  EXPECT_EQ(Fns->GetObjectRefType(Env, G), JNIGlobalRefType);
  EXPECT_EQ(Fns->GetObjectRefType(Env, Wk), JNIWeakGlobalRefType);
  EXPECT_EQ(Fns->IsSameObject(Env, G, S), JNI_TRUE);

  // Drop the local; the global keeps the object across GC.
  Fns->DeleteLocalRef(Env, S);
  W.Vm.gc();
  EXPECT_EQ(Fns->GetStringUTFLength(Env, static_cast<jstring>(G)), 1);
  // The weak also still resolves (the global keeps the target alive).
  EXPECT_EQ(Fns->IsSameObject(Env, Wk, G), JNI_TRUE);

  Fns->DeleteGlobalRef(Env, G);
  W.Vm.gc();
  // Now the weak target is gone: it resolves to null.
  EXPECT_EQ(Fns->IsSameObject(Env, Wk, nullptr), JNI_TRUE);
  Fns->DeleteWeakGlobalRef(Env, Wk);
}

TEST_F(JniCore, EnsureLocalCapacity) {
  EXPECT_EQ(Fns->EnsureLocalCapacity(Env, 100), JNI_OK);
  EXPECT_EQ(W.main().topFrameCapacity(), 100u);
  EXPECT_EQ(Fns->EnsureLocalCapacity(Env, -1), JNI_ERR);
}

TEST_F(JniCore, AllocObjectAndIsInstanceOf) {
  jclass Rte = Fns->FindClass(Env, "java/lang/RuntimeException");
  jobject Obj = Fns->AllocObject(Env, Rte);
  ASSERT_NE(Obj, nullptr);
  jclass Thr = Fns->FindClass(Env, "java/lang/Throwable");
  EXPECT_EQ(Fns->IsInstanceOf(Env, Obj, Thr), JNI_TRUE);
  jclass Str = Fns->FindClass(Env, "java/lang/String");
  EXPECT_EQ(Fns->IsInstanceOf(Env, Obj, Str), JNI_FALSE);
  EXPECT_EQ(Fns->IsInstanceOf(Env, nullptr, Str), JNI_TRUE); // null conforms
  jclass Cls = Fns->GetObjectClass(Env, Obj);
  EXPECT_EQ(W.Vm.klassFromMirror(W.Rt.deref(Env, Cls))->name(),
            "java/lang/RuntimeException");
}

TEST_F(JniCore, ReflectionBridges) {
  jclass Thr = Fns->FindClass(Env, "java/lang/Throwable");
  jfieldID Msg =
      Fns->GetFieldID(Env, Thr, "message", "Ljava/lang/String;");
  ASSERT_NE(Msg, nullptr);
  jobject Reflected = Fns->ToReflectedField(Env, Thr, Msg, JNI_FALSE);
  ASSERT_NE(Reflected, nullptr);
  EXPECT_EQ(Fns->FromReflectedField(Env, Reflected), Msg);

  // Method reflection via a class that has a method.
  jvm::ClassDef Def;
  Def.Name = "t/M";
  Def.method("m", "()V",
             [](jvm::Vm &, jvm::JThread &, const jvm::Value &,
                const std::vector<jvm::Value> &) {
               return jvm::Value::makeVoid();
             });
  W.define(Def);
  jclass M = Fns->FindClass(Env, "t/M");
  jmethodID Mid = Fns->GetMethodID(Env, M, "m", "()V");
  jobject RMethod = Fns->ToReflectedMethod(Env, M, Mid, JNI_FALSE);
  EXPECT_EQ(Fns->FromReflectedMethod(Env, RMethod), Mid);
}

TEST_F(JniCore, MonitorsThroughJni) {
  jclass Obj = Fns->FindClass(Env, "java/lang/Object");
  jobject Lock = Fns->AllocObject(Env, Obj);
  EXPECT_EQ(Fns->MonitorEnter(Env, Lock), JNI_OK);
  EXPECT_EQ(Fns->MonitorExit(Env, Lock), JNI_OK);
  EXPECT_EQ(Fns->MonitorExit(Env, Lock), JNI_ERR);
  EXPECT_EQ(W.pendingClass(), "java/lang/IllegalMonitorStateException");
}

TEST_F(JniCore, GetJavaVm) {
  JavaVM *Out = nullptr;
  EXPECT_EQ(Fns->GetJavaVM(Env, &Out), JNI_OK);
  ASSERT_NE(Out, nullptr);
  EXPECT_EQ(Out->vm, &W.Vm);
}

TEST_F(JniCore, DirectByteBuffer) {
  char Storage[64];
  jobject Buf = Fns->NewDirectByteBuffer(Env, Storage, sizeof(Storage));
  ASSERT_NE(Buf, nullptr);
  EXPECT_EQ(Fns->GetDirectBufferAddress(Env, Buf), Storage);
  EXPECT_EQ(Fns->GetDirectBufferCapacity(Env, Buf), 64);
  jstring NotABuf = Fns->NewStringUTF(Env, "x");
  EXPECT_EQ(Fns->GetDirectBufferAddress(Env, NotABuf), nullptr);
  EXPECT_EQ(Fns->GetDirectBufferCapacity(Env, NotABuf), -1);
}

TEST_F(JniCore, RegisterNativesErrors) {
  jclass Str = Fns->FindClass(Env, "java/lang/String");
  JNINativeMethod Bad{"nope", "()V", nullptr};
  (void)Bad;
  JNINativeMethod Missing{"nonexistent", "()V",
                          reinterpret_cast<void *>(+[](JNIEnv *, jobject,
                                                       const jvalue *) {
                            jvalue R;
                            R.j = 0;
                            return R;
                          })};
  EXPECT_EQ(Fns->RegisterNatives(Env, Str, &Missing, 1), JNI_ERR);
  EXPECT_EQ(W.pendingClass(), "java/lang/NoSuchMethodError");
}

TEST_F(JniCore, FatalErrorPoisons) {
  Fns->FatalError(Env, "unrecoverable");
  EXPECT_TRUE(W.main().Poisoned);
  EXPECT_TRUE(W.Vm.diags().has(IncidentKind::FatalError));
}

TEST_F(JniCore, DefineClassUnsupported) {
  EXPECT_EQ(Fns->DefineClass(Env, "x/Y", nullptr, nullptr, 0), nullptr);
  EXPECT_EQ(W.pendingClass(), "java/lang/NoClassDefFoundError");
}

// Regression: a native invoked with fewer actuals than its signature
// declares must be flagged as an invalid argument and marshal only the
// actuals that exist — the dispatch previously indexed the argument vector
// by the signature's parameter count, reading out of bounds.
TEST_F(JniCore, NativeCallArityMismatchIsFlagged) {
  jvm::ClassDef Def;
  Def.Name = "t/Arity";
  Def.nativeMethod("sum", "(III)I", /*IsStatic=*/true, "Arity.java:1");
  W.define(Def);
  bool Called = false;
  W.bindNative("t/Arity", "sum", "(III)I",
               [&Called](JNIEnv *, jobject, const jvalue *) -> jvalue {
                 Called = true;
                 jvalue R;
                 R.i = 7;
                 return R;
               });

  size_t Before = W.Vm.diags().count(IncidentKind::UndefinedState);
  jvm::Value R = W.call("t/Arity", "sum", "(III)I", jvm::Value::makeNull(),
                        {jvm::Value::makeInt(1)});
  // HotSpot-like production behavior: diagnose, then keep running with the
  // truncated argument list instead of reading past the vector.
  EXPECT_GT(W.Vm.diags().count(IncidentKind::UndefinedState), Before);
  EXPECT_TRUE(Called);
  EXPECT_EQ(R.I, 7);

  // Excess actuals are flagged and truncated the same way.
  Before = W.Vm.diags().count(IncidentKind::UndefinedState);
  W.call("t/Arity", "sum", "(III)I", jvm::Value::makeNull(),
         {jvm::Value::makeInt(1), jvm::Value::makeInt(2),
          jvm::Value::makeInt(3), jvm::Value::makeInt(4)});
  EXPECT_GT(W.Vm.diags().count(IncidentKind::UndefinedState), Before);
}

} // namespace
