//===- tests/jinn_machines_test.cpp - Per-machine checker tests ----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fine-grained positive/negative tests for each of the fourteen machines:
/// every checked error fires on its trigger, and — just as important —
/// correct protocols never produce a report (Jinn has no false positives).
///
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include <atomic>
#include <thread>

using namespace jinn;
using namespace jinn::testing;

namespace {

struct Machines : ::testing::Test {
  JinnWorld W;
  JNIEnv *Env = W.env();
  const JNINativeInterface_ *Fns = W.env()->functions;

  size_t reportsFor(const char *Machine) {
    return W.Jinn.reporter().countFor(Machine);
  }
  void clearPending() { W.main().Pending = jvm::ObjectId(); }
};

//===----------------------------------------------------------------------===
// JNIEnv* state
//===----------------------------------------------------------------------===

TEST_F(Machines, EnvState_WrongThreadEnvIsFlagged) {
  jvm::JThread &Worker = W.Vm.attachThread("worker");
  JNIEnv *WorkerEnv = W.Rt.envFor(Worker);
  jni::JniRuntime::ScopedCurrent Scope(W.Rt, &W.main());
  WorkerEnv->functions->GetVersion(WorkerEnv);
  EXPECT_EQ(reportsFor("JNIEnv* state"), 1u);
}

TEST_F(Machines, EnvState_MatchingThreadIsSilent) {
  jni::JniRuntime::ScopedCurrent Scope(W.Rt, &W.main());
  Fns->GetVersion(Env);
  EXPECT_EQ(reportsFor("JNIEnv* state"), 0u);
}

//===----------------------------------------------------------------------===
// Exception state
//===----------------------------------------------------------------------===

TEST_F(Machines, Exception_ObliviousCallsAreAllowedWhilePending) {
  jstring S = Fns->NewStringUTF(Env, "x");
  const char *Utf = Fns->GetStringUTFChars(Env, S, nullptr);
  jclass Rte = Fns->FindClass(Env, "java/lang/RuntimeException");
  Fns->ThrowNew(Env, Rte, "pending");
  // The paper's protocol: query, release resources, clear.
  EXPECT_EQ(Fns->ExceptionCheck(Env), JNI_TRUE);
  Fns->ExceptionDescribe(Env);
  Fns->ReleaseStringUTFChars(Env, S, Utf);
  Fns->DeleteLocalRef(Env, S);
  Fns->ExceptionClear(Env);
  EXPECT_EQ(W.reportCount(), 0u);
}

TEST_F(Machines, Exception_SensitiveCallWhilePendingIsFlagged) {
  jclass Rte = Fns->FindClass(Env, "java/lang/RuntimeException");
  Fns->ThrowNew(Env, Rte, "pending");
  Fns->FindClass(Env, "java/lang/Object");
  EXPECT_EQ(reportsFor("Exception state"), 1u);
  // The new pending exception wraps the old one as its cause.
  jvm::ObjectId Cause = W.Vm.throwableCause(W.main().Pending);
  EXPECT_EQ(W.Vm.klassOf(Cause)->name(), "java/lang/RuntimeException");
}

//===----------------------------------------------------------------------===
// Critical-section state
//===----------------------------------------------------------------------===

TEST_F(Machines, Critical_SequentialAcquireReleaseIsLegal) {
  jintArray Arr = Fns->NewIntArray(Env, 4);
  jstring Str = Fns->NewStringUTF(Env, "s");
  void *P1 = Fns->GetPrimitiveArrayCritical(Env, Arr, nullptr);
  Fns->ReleasePrimitiveArrayCritical(Env, Arr, P1, 0);
  const jchar *P2 = Fns->GetStringCritical(Env, Str, nullptr);
  Fns->ReleaseStringCritical(Env, Str, P2);
  EXPECT_EQ(W.reportCount(), 0u);
}

TEST_F(Machines, Critical_SensitiveCallInsideIsFlaggedBeforeTheVmActs) {
  jintArray Arr = Fns->NewIntArray(Env, 4);
  void *P = Fns->GetPrimitiveArrayCritical(Env, Arr, nullptr);
  Fns->FindClass(Env, "java/lang/String");
  EXPECT_EQ(reportsFor("Critical-section state"), 1u);
  // Jinn aborted the call, so the production deadlock never happened.
  EXPECT_FALSE(W.Vm.diags().has(IncidentKind::PotentialDeadlock));
  clearPending();
  Fns->ReleasePrimitiveArrayCritical(Env, Arr, P, 0);
}

TEST_F(Machines, Critical_UnmatchedReleaseIsFlagged) {
  jintArray Arr = Fns->NewIntArray(Env, 4);
  jint Fake[4];
  Fns->ReleasePrimitiveArrayCritical(Env, Arr, Fake, 0);
  EXPECT_EQ(reportsFor("Critical-section state"), 1u);
}

//===----------------------------------------------------------------------===
// Fixed typing
//===----------------------------------------------------------------------===

TEST_F(Machines, FixedTyping_StringWhereClassExpected) {
  jstring S = Fns->NewStringUTF(Env, "not a class");
  Fns->GetMethodID(Env, reinterpret_cast<jclass>(S), "m", "()V");
  EXPECT_EQ(reportsFor("Fixed typing"), 1u);
}

TEST_F(Machines, FixedTyping_WrongArrayKind) {
  jintArray Arr = Fns->NewIntArray(Env, 2);
  Fns->GetLongArrayElements(Env, reinterpret_cast<jlongArray>(Arr),
                            nullptr);
  EXPECT_EQ(reportsFor("Fixed typing"), 1u);
}

TEST_F(Machines, FixedTyping_NonThrowableToThrow) {
  jclass Obj = Fns->FindClass(Env, "java/lang/Object");
  jobject Plain = Fns->AllocObject(Env, Obj);
  Fns->Throw(Env, static_cast<jthrowable>(Plain));
  EXPECT_EQ(reportsFor("Fixed typing"), 1u);
}

TEST_F(Machines, FixedTyping_CorrectTypesAreSilent) {
  jclass Str = Fns->FindClass(Env, "java/lang/String");
  jstring S = Fns->NewStringUTF(Env, "fine");
  Fns->GetStringUTFLength(Env, S);
  Fns->IsInstanceOf(Env, S, Str);
  jintArray Arr = Fns->NewIntArray(Env, 1);
  jint *E = Fns->GetIntArrayElements(Env, Arr, nullptr);
  Fns->ReleaseIntArrayElements(Env, Arr, E, 0);
  EXPECT_EQ(W.reportCount(), 0u);
}

//===----------------------------------------------------------------------===
// Entity-specific typing
//===----------------------------------------------------------------------===

struct EntityFixture : Machines {
  jclass Base = nullptr, Sub = nullptr;
  jmethodID StaticM = nullptr, InstanceM = nullptr;

  void SetUp() override {
    jvm::ClassDef B;
    B.Name = "e/Base";
    B.method("stat", "()I",
             [](jvm::Vm &, jvm::JThread &, const jvm::Value &,
                const std::vector<jvm::Value> &) {
               return jvm::Value::makeInt(1);
             },
             /*IsStatic=*/true);
    B.method("inst", "(Ljava/lang/String;)V",
             [](jvm::Vm &, jvm::JThread &, const jvm::Value &,
                const std::vector<jvm::Value> &) {
               return jvm::Value::makeVoid();
             });
    W.define(B);
    jvm::ClassDef S;
    S.Name = "e/Sub";
    S.Super = "e/Base";
    W.define(S);
    Base = Fns->FindClass(Env, "e/Base");
    Sub = Fns->FindClass(Env, "e/Sub");
    StaticM = Fns->GetStaticMethodID(Env, Base, "stat", "()I");
    InstanceM =
        Fns->GetMethodID(Env, Base, "inst", "(Ljava/lang/String;)V");
  }
};

TEST_F(EntityFixture, StaticCallThroughDeclaringClassIsSilent) {
  EXPECT_EQ(Fns->CallStaticIntMethodA(Env, Base, StaticM, nullptr), 1);
  EXPECT_EQ(W.reportCount(), 0u);
}

TEST_F(EntityFixture, StaticCallThroughInheritingClassIsFlagged) {
  Fns->CallStaticIntMethodA(Env, Sub, StaticM, nullptr); // Eclipse bug
  EXPECT_EQ(reportsFor("Entity-specific typing"), 1u);
}

TEST_F(EntityFixture, InstanceMethodThroughCallStaticIsFlagged) {
  Fns->CallStaticVoidMethodA(Env, Base, InstanceM, nullptr);
  EXPECT_EQ(reportsFor("Entity-specific typing"), 1u);
}

TEST_F(EntityFixture, WrongReturnKindFamilyIsFlagged) {
  // stat returns int; calling through Call<Long> is a mismatch.
  Fns->CallStaticLongMethodA(Env, Base, StaticM, nullptr);
  EXPECT_EQ(reportsFor("Entity-specific typing"), 1u);
}

TEST_F(EntityFixture, NonConformingRefArgumentIsFlagged) {
  jobject Recv = Fns->AllocObject(Env, Base);
  jclass Obj = Fns->FindClass(Env, "java/lang/Object");
  jobject NotAString = Fns->AllocObject(Env, Obj);
  jvalue Args[1];
  Args[0].l = NotAString;
  Fns->CallVoidMethodA(Env, Recv, InstanceM, Args);
  EXPECT_EQ(reportsFor("Entity-specific typing"), 1u);
}

TEST_F(EntityFixture, ConformingAndNullRefArgumentsAreSilent) {
  jobject Recv = Fns->AllocObject(Env, Base);
  jvalue Args[1];
  Args[0].l = Fns->NewStringUTF(Env, "ok");
  Fns->CallVoidMethodA(Env, Recv, InstanceM, Args);
  Args[0].l = nullptr;
  Fns->CallVoidMethodA(Env, Recv, InstanceM, Args);
  EXPECT_EQ(W.reportCount(), 0u);
}

TEST_F(EntityFixture, ReceiverOfUnrelatedClassIsFlagged) {
  jclass Obj = Fns->FindClass(Env, "java/lang/Object");
  jobject Foreign = Fns->AllocObject(Env, Obj);
  Fns->CallVoidMethodA(Env, Foreign, InstanceM, nullptr);
  EXPECT_EQ(reportsFor("Entity-specific typing"), 1u);
}

TEST_F(EntityFixture, GarbageMethodIdIsFlagged) {
  int Stack = 0;
  Fns->CallStaticIntMethodA(Env, Base,
                            reinterpret_cast<jmethodID>(&Stack), nullptr);
  EXPECT_EQ(reportsFor("Entity-specific typing"), 1u);
}

TEST_F(EntityFixture, FieldKindMismatchIsFlagged) {
  jvm::ClassDef Def;
  Def.Name = "e/F";
  Def.field("x", "I");
  W.define(Def);
  jclass F = Fns->FindClass(Env, "e/F");
  jobject O = Fns->AllocObject(Env, F);
  jfieldID X = Fns->GetFieldID(Env, F, "x", "I");
  Fns->GetLongField(Env, O, X); // int field read as long
  EXPECT_EQ(reportsFor("Entity-specific typing"), 1u);
}

//===----------------------------------------------------------------------===
// Access control
//===----------------------------------------------------------------------===

TEST_F(Machines, AccessControl_FinalWriteFlaggedNonFinalSilent) {
  jvm::ClassDef Def;
  Def.Name = "a/C";
  Def.field("mutable", "I", true, false);
  Def.field("CONST", "I", true, true);
  W.define(Def);
  jclass C = Fns->FindClass(Env, "a/C");
  jfieldID M = Fns->GetStaticFieldID(Env, C, "mutable", "I");
  jfieldID K = Fns->GetStaticFieldID(Env, C, "CONST", "I");
  Fns->SetStaticIntField(Env, C, M, 1);
  EXPECT_EQ(W.reportCount(), 0u);
  Fns->SetStaticIntField(Env, C, K, 2);
  EXPECT_EQ(reportsFor("Access control"), 1u);
}

//===----------------------------------------------------------------------===
// Nullness
//===----------------------------------------------------------------------===

TEST_F(Machines, Nullness_RequiredParamsFlagged) {
  Fns->GetStringUTFChars(Env, nullptr, nullptr);
  EXPECT_EQ(reportsFor("Nullness"), 1u);
  clearPending();
  jclass Str = Fns->FindClass(Env, "java/lang/String");
  Fns->GetMethodID(Env, Str, nullptr, "()V");
  EXPECT_EQ(reportsFor("Nullness"), 2u);
  clearPending();
  Fns->FindClass(Env, nullptr);
  EXPECT_EQ(reportsFor("Nullness"), 3u);
}

TEST_F(Machines, Nullness_TolerantParamsSilent) {
  jstring S = Fns->NewStringUTF(Env, "x");
  Fns->IsSameObject(Env, nullptr, nullptr);
  Fns->NewLocalRef(Env, nullptr);
  jclass Str = Fns->FindClass(Env, "java/lang/String");
  Fns->NewObjectArray(Env, 2, Str, nullptr);
  (void)S;
  EXPECT_EQ(W.reportCount(), 0u);
}

//===----------------------------------------------------------------------===
// Pinned or copied string or array
//===----------------------------------------------------------------------===

TEST_F(Machines, Pinned_BalancedPairsAreSilentIncludingCommit) {
  jintArray Arr = Fns->NewIntArray(Env, 4);
  jint *E = Fns->GetIntArrayElements(Env, Arr, nullptr);
  Fns->ReleaseIntArrayElements(Env, Arr, E, JNI_COMMIT); // keeps it live
  Fns->ReleaseIntArrayElements(Env, Arr, E, 0);          // real release
  W.Vm.shutdown();
  EXPECT_EQ(W.reportCount(), 0u);
}

TEST_F(Machines, Pinned_LeakReportedAtVmDeath) {
  jintArray Arr = Fns->NewIntArray(Env, 4);
  Fns->GetIntArrayElements(Env, Arr, nullptr);
  W.Vm.shutdown();
  EXPECT_EQ(reportsFor("Pinned or copied string or array"), 1u);
  EXPECT_TRUE(W.reports().front().EndOfRun);
}

TEST_F(Machines, Pinned_DoubleFreeFlagged) {
  jstring S = Fns->NewStringUTF(Env, "s");
  const char *U = Fns->GetStringUTFChars(Env, S, nullptr);
  Fns->ReleaseStringUTFChars(Env, S, U);
  Fns->ReleaseStringUTFChars(Env, S, U);
  EXPECT_EQ(reportsFor("Pinned or copied string or array"), 1u);
}

//===----------------------------------------------------------------------===
// Monitor
//===----------------------------------------------------------------------===

TEST_F(Machines, Monitor_BalancedSilentUnbalancedLeaks) {
  jclass Obj = Fns->FindClass(Env, "java/lang/Object");
  jobject L1 = Fns->AllocObject(Env, Obj);
  jobject L2 = Fns->AllocObject(Env, Obj);
  Fns->MonitorEnter(Env, L1);
  Fns->MonitorEnter(Env, L1); // nested
  Fns->MonitorExit(Env, L1);
  Fns->MonitorExit(Env, L1);
  Fns->MonitorEnter(Env, L2); // never exited
  W.Vm.shutdown();
  EXPECT_EQ(reportsFor("Monitor"), 1u);
}

//===----------------------------------------------------------------------===
// Global / weak-global references
//===----------------------------------------------------------------------===

TEST_F(Machines, Global_CorrectLifecycleSilent) {
  jstring S = Fns->NewStringUTF(Env, "g");
  jobject G = Fns->NewGlobalRef(Env, S);
  Fns->GetStringUTFLength(Env, static_cast<jstring>(G));
  Fns->DeleteGlobalRef(Env, G);
  W.Vm.shutdown();
  EXPECT_EQ(W.reportCount(), 0u);
}

TEST_F(Machines, Global_UseAfterDeleteFlagged) {
  jstring S = Fns->NewStringUTF(Env, "g");
  jobject G = Fns->NewGlobalRef(Env, S);
  Fns->DeleteGlobalRef(Env, G);
  Fns->GetStringUTFLength(Env, static_cast<jstring>(G));
  EXPECT_EQ(reportsFor("Global or weak global reference"), 1u);
}

TEST_F(Machines, Global_DoubleDeleteFlagged) {
  jstring S = Fns->NewStringUTF(Env, "g");
  jobject G = Fns->NewGlobalRef(Env, S);
  Fns->DeleteGlobalRef(Env, G);
  Fns->DeleteGlobalRef(Env, G);
  EXPECT_EQ(reportsFor("Global or weak global reference"), 1u);
}

TEST_F(Machines, Global_ClearedWeakUseIsLegal) {
  jstring S = Fns->NewStringUTF(Env, "w");
  jweak Wk = Fns->NewWeakGlobalRef(Env, S);
  Fns->DeleteLocalRef(Env, S);
  W.Vm.gc(); // the weak target dies; the handle resolves to null
  EXPECT_EQ(Fns->IsSameObject(Env, Wk, nullptr), JNI_TRUE);
  Fns->DeleteWeakGlobalRef(Env, Wk);
  W.Vm.shutdown();
  EXPECT_EQ(W.reportCount(), 0u);
}

TEST_F(Machines, Global_LeakReportedAtVmDeath) {
  jstring S = Fns->NewStringUTF(Env, "g");
  Fns->NewGlobalRef(Env, S);
  W.Vm.shutdown();
  EXPECT_EQ(reportsFor("Global or weak global reference"), 1u);
}

//===----------------------------------------------------------------------===
// Local references
//===----------------------------------------------------------------------===

TEST_F(Machines, Local_ExactlySixteenIsFineSeventeenOverflows) {
  // The base frame has the spec-guaranteed capacity of 16.
  for (int I = 0; I < 16; ++I)
    Fns->NewStringUTF(Env, "r");
  EXPECT_EQ(W.reportCount(), 0u);
  Fns->NewStringUTF(Env, "seventeenth");
  EXPECT_EQ(reportsFor("Local reference"), 1u);
}

TEST_F(Machines, Local_EnsureLocalCapacityPreventsOverflow) {
  Fns->EnsureLocalCapacity(Env, 64);
  for (int I = 0; I < 40; ++I)
    Fns->NewStringUTF(Env, "r");
  EXPECT_EQ(W.reportCount(), 0u);
}

TEST_F(Machines, Local_PushPopFrameProtocolSilent) {
  Fns->PushLocalFrame(Env, 32);
  for (int I = 0; I < 20; ++I)
    Fns->NewStringUTF(Env, "r");
  Fns->PopLocalFrame(Env, nullptr);
  EXPECT_EQ(W.reportCount(), 0u);
}

TEST_F(Machines, Local_PopWithoutPushFlagged) {
  // Ownership of the underflow moved to the pushdown local-frame nesting
  // machine; the local-reference machine keeps frame leaks.
  Fns->PopLocalFrame(Env, nullptr);
  EXPECT_EQ(reportsFor("Local-frame nesting"), 1u);
  EXPECT_EQ(reportsFor("Local reference"), 0u);
}

TEST_F(Machines, Local_DeleteThenUseFlagged) {
  jstring S = Fns->NewStringUTF(Env, "d");
  Fns->DeleteLocalRef(Env, S);
  Fns->GetStringUTFLength(Env, S);
  EXPECT_EQ(reportsFor("Local reference"), 1u);
}

TEST_F(Machines, Local_DoubleDeleteFlagged) {
  jstring S = Fns->NewStringUTF(Env, "d");
  Fns->DeleteLocalRef(Env, S);
  Fns->DeleteLocalRef(Env, S);
  EXPECT_EQ(reportsFor("Local reference"), 1u);
}

TEST_F(Machines, Local_CrossThreadUseFlagged) {
  jstring S = Fns->NewStringUTF(Env, "mine");
  jvm::JThread &Worker = W.Vm.attachThread("worker");
  JNIEnv *WorkerEnv = W.Rt.envFor(Worker);
  // The worker uses main's local reference through its own (correct) env.
  WorkerEnv->functions->GetStringUTFLength(WorkerEnv, S);
  EXPECT_GE(reportsFor("Local reference"), 1u);
}

TEST_F(Machines, Local_CrossThreadUseFromRealThreadReportsOwnership) {
  // The thread-confined shadow layout must still *detect* cross-thread
  // use: the wrong-thread check reads only the handle's thread bits, so it
  // never touches (or creates) the foreign thread's shadow table.
  jstring S = Fns->NewStringUTF(Env, "confined");
  JavaVM *Jvm = W.Rt.javaVm();
  std::atomic<bool> Attached{false};
  std::thread Worker([&] {
    JNIEnv *WorkerEnv = nullptr;
    if (Jvm->functions->AttachCurrentThread(Jvm, &WorkerEnv, nullptr) !=
        JNI_OK)
      return;
    Attached = true;
    // The env is the worker's own; only the reference is foreign.
    WorkerEnv->functions->GetStringUTFLength(WorkerEnv, S);
    WorkerEnv->functions->ExceptionClear(WorkerEnv);
    Jvm->functions->DetachCurrentThread(Jvm);
  });
  Worker.join();
  ASSERT_TRUE(Attached.load());
  EXPECT_EQ(reportsFor("JNIEnv* state"), 0u); // not an env mismatch
  ASSERT_EQ(reportsFor("Local reference"), 1u);
  bool FoundOwnership = false;
  for (const agent::JinnReport &Report : W.Jinn.reporter().reports())
    FoundOwnership |=
        Report.Message.find("belongs to thread") != std::string::npos;
  EXPECT_TRUE(FoundOwnership);
}

TEST_F(Machines, Local_MethodIdUsedAsReferenceFlagged) {
  jvm::ClassDef Def;
  Def.Name = "l/M";
  Def.method("m", "()V",
             [](jvm::Vm &, jvm::JThread &, const jvm::Value &,
                const std::vector<jvm::Value> &) {
               return jvm::Value::makeVoid();
             },
             true);
  W.define(Def);
  jclass C = Fns->FindClass(Env, "l/M");
  jmethodID M = Fns->GetStaticMethodID(Env, C, "m", "()V");
  Fns->IsSameObject(Env, reinterpret_cast<jobject>(M), nullptr);
  EXPECT_EQ(reportsFor("Local reference"), 1u);
}

TEST_F(Machines, Local_HandlesSurviveMovingGc) {
  // The core JNI design point (paper §3): opaque handles stay valid when
  // the collector moves objects; only stale handles are errors.
  jstring S = Fns->NewStringUTF(Env, "movable");
  jvm::ObjectId Id = W.Rt.deref(Env, S);
  uint64_t Before = W.Vm.heap().resolve(Id)->Address;
  W.Vm.gc(); // moving collection
  EXPECT_NE(W.Vm.heap().resolve(Id)->Address, Before);
  EXPECT_EQ(Fns->GetStringUTFLength(Env, S), 7); // handle still valid
  EXPECT_EQ(W.reportCount(), 0u);
}

TEST_F(Machines, Local_CountChangeHookObservesAcquiresAndReleases) {
  std::vector<size_t> Counts;
  W.Jinn.machines().LocalRef.OnCountChange =
      [&](uint32_t, size_t Live) { Counts.push_back(Live); };
  jstring A = Fns->NewStringUTF(Env, "a");
  jstring B = Fns->NewStringUTF(Env, "b");
  Fns->DeleteLocalRef(Env, A);
  Fns->DeleteLocalRef(Env, B);
  ASSERT_GE(Counts.size(), 4u);
  EXPECT_EQ(Counts[Counts.size() - 1], 0u);
}

//===----------------------------------------------------------------------===
// Pushdown machines (counter/stack facility)
//===----------------------------------------------------------------------===

TEST_F(Machines, FrameNesting_DeepNestingBalancedIsSilent) {
  for (int I = 0; I < 3; ++I)
    Fns->PushLocalFrame(Env, 8);
  for (int I = 0; I < 3; ++I)
    Fns->PopLocalFrame(Env, nullptr);
  EXPECT_EQ(W.reportCount(), 0u);
  EXPECT_EQ(W.Jinn.machines().LocalFrameNesting.depthOf(W.main().id()), 0);
}

TEST_F(Machines, FrameNesting_OneExtraPopFlaggedOnce) {
  Fns->PushLocalFrame(Env, 8);
  Fns->PushLocalFrame(Env, 8);
  Fns->PopLocalFrame(Env, nullptr);
  Fns->PopLocalFrame(Env, nullptr);
  EXPECT_EQ(W.reportCount(), 0u);
  Fns->PopLocalFrame(Env, nullptr); // underflow
  EXPECT_EQ(reportsFor("Local-frame nesting"), 1u);
}

TEST_F(Machines, MonitorBalance_ReentrantEntriesBalancedIsSilent) {
  jclass Obj = Fns->FindClass(Env, "java/lang/Object");
  jobject Lock = Fns->AllocObject(Env, Obj);
  ASSERT_EQ(Fns->MonitorEnter(Env, Lock), JNI_OK);
  ASSERT_EQ(Fns->MonitorEnter(Env, Lock), JNI_OK); // legal re-entry
  EXPECT_EQ(Fns->MonitorExit(Env, Lock), JNI_OK);
  EXPECT_EQ(Fns->MonitorExit(Env, Lock), JNI_OK);
  EXPECT_EQ(W.reportCount(), 0u);
  EXPECT_EQ(W.Jinn.machines().MonitorBalance.depthOf(W.main().id()), 0);
}

TEST_F(Machines, MonitorBalance_UnmatchedExitFlaggedAndSuppressed) {
  jclass Obj = Fns->FindClass(Env, "java/lang/Object");
  jobject Lock = Fns->AllocObject(Env, Obj);
  ASSERT_EQ(Fns->MonitorEnter(Env, Lock), JNI_OK);
  ASSERT_EQ(Fns->MonitorExit(Env, Lock), JNI_OK);
  Fns->MonitorExit(Env, Lock); // underflow: no outstanding JNI entry
  EXPECT_EQ(reportsFor("Monitor balance"), 1u);
  // The faulting exit was aborted, so the VM never saw the unbalanced
  // exit and threw no IllegalMonitorStateException of its own — the only
  // pending throwable is Jinn's.
  EXPECT_EQ(W.pendingClass(), "jinn/JNIAssertionFailure");
}

TEST_F(Machines, MonitorBalance_FailedEnterDoesNotCount) {
  jclass Obj = Fns->FindClass(Env, "java/lang/Object");
  Fns->MonitorEnter(Env, nullptr); // JNI_ERR path (nullness also fires)
  clearPending();
  jobject Lock = Fns->AllocObject(Env, Obj);
  ASSERT_EQ(Fns->MonitorEnter(Env, Lock), JNI_OK);
  ASSERT_EQ(Fns->MonitorExit(Env, Lock), JNI_OK);
  EXPECT_EQ(reportsFor("Monitor balance"), 0u);
}

TEST_F(Machines, CriticalNesting_NestedAcquireFlaggedAndSuppressed) {
  jintArray Arr = Fns->NewIntArray(Env, 4);
  jstring Str = Fns->NewStringUTF(Env, "s");
  void *P1 = Fns->GetPrimitiveArrayCritical(Env, Arr, nullptr);
  // BUG: a second critical section inside the first. The call is aborted,
  // so no pin is created and no other machine reports anything.
  const jchar *P2 = Fns->GetStringCritical(Env, Str, nullptr);
  EXPECT_EQ(P2, nullptr);
  EXPECT_EQ(reportsFor("Critical-section nesting"), 1u);
  clearPending();
  Fns->ReleasePrimitiveArrayCritical(Env, Arr, P1, 0);
  W.Vm.shutdown();
  EXPECT_EQ(W.reportCount(), 1u); // no pin leak, no critical-state report
}

TEST_F(Machines, CriticalNesting_DepthTracksAcquireRelease) {
  jintArray Arr = Fns->NewIntArray(Env, 4);
  void *P = Fns->GetPrimitiveArrayCritical(Env, Arr, nullptr);
  EXPECT_EQ(W.Jinn.machines().CriticalNesting.depthOf(W.main().id()), 1);
  Fns->ReleasePrimitiveArrayCritical(Env, Arr, P, 0);
  EXPECT_EQ(W.Jinn.machines().CriticalNesting.depthOf(W.main().id()), 0);
  EXPECT_EQ(W.reportCount(), 0u);
}

} // namespace
