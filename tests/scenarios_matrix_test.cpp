//===- tests/scenarios_matrix_test.cpp - Microbenchmark outcome matrix ---===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heart of the Table 1 / §6.3 reproduction: every microbenchmark runs
/// under production HotSpot-like and J9-like VMs, under both -Xcheck:jni
/// emulations, and under Jinn; the classified outcomes must match the
/// paper's behavior classes.
///
//===----------------------------------------------------------------------===//

#include "scenarios/Scenarios.h"

#include <gtest/gtest.h>

using namespace jinn;
using namespace jinn::scenarios;
using jinn::jvm::VmFlavor;

namespace {

Outcome run(MicroId Id, VmFlavor Flavor, CheckerKind Checker) {
  WorldConfig Config;
  Config.Flavor = Flavor;
  Config.Checker = Checker;
  return runMicroToOutcome(Id, Config);
}

struct Expected {
  MicroId Id;
  Outcome DefaultHotSpot;
  Outcome DefaultJ9;
  Outcome XcheckHotSpot;
  Outcome XcheckJ9;
  Outcome Jinn; // under the HotSpot-like flavor
};

// Encodes Table 1 (plus the additional per-error-state microbenchmarks the
// paper's 16-benchmark suite covers).
const Expected Matrix[] = {
    {MicroId::EnvMismatch, Outcome::Running, Outcome::Crash, Outcome::Error,
     Outcome::Crash, Outcome::JinnException},
    {MicroId::PendingException, Outcome::Running, Outcome::Crash,
     Outcome::Warning, Outcome::Error, Outcome::JinnException},
    {MicroId::CriticalViolation, Outcome::Deadlock, Outcome::Deadlock,
     Outcome::Warning, Outcome::Error, Outcome::JinnException},
    {MicroId::FixedTypeMismatch, Outcome::Crash, Outcome::Crash,
     Outcome::Error, Outcome::Error, Outcome::JinnException},
    {MicroId::EntityTypeMismatch, Outcome::Running, Outcome::Running,
     Outcome::Running, Outcome::Running, Outcome::JinnException},
    {MicroId::FinalFieldWrite, Outcome::Npe, Outcome::Npe, Outcome::Npe,
     Outcome::Npe, Outcome::JinnException},
    {MicroId::NullArgument, Outcome::Running, Outcome::Crash,
     Outcome::Running, Outcome::Crash, Outcome::JinnException},
    {MicroId::PinLeak, Outcome::Leak, Outcome::Leak, Outcome::Leak,
     Outcome::Warning, Outcome::JinnException},
    {MicroId::PinDoubleFree, Outcome::Running, Outcome::Crash,
     Outcome::Running, Outcome::Crash, Outcome::JinnException},
    {MicroId::MonitorLeak, Outcome::Leak, Outcome::Leak, Outcome::Leak,
     Outcome::Warning, Outcome::JinnException},
    {MicroId::GlobalRefLeak, Outcome::Leak, Outcome::Leak, Outcome::Leak,
     Outcome::Warning, Outcome::JinnException},
    {MicroId::GlobalRefDangling, Outcome::Crash, Outcome::Crash,
     Outcome::Error, Outcome::Error, Outcome::JinnException},
    {MicroId::LocalOverflow, Outcome::Leak, Outcome::Leak, Outcome::Leak,
     Outcome::Warning, Outcome::JinnException},
    {MicroId::LocalFrameLeak, Outcome::Running, Outcome::Running,
     Outcome::Running, Outcome::Warning, Outcome::JinnException},
    {MicroId::LocalDangling, Outcome::Crash, Outcome::Crash, Outcome::Error,
     Outcome::Error, Outcome::JinnException},
    {MicroId::LocalDoubleFree, Outcome::Crash, Outcome::Crash,
     Outcome::Error, Outcome::Error, Outcome::JinnException},
    {MicroId::IdRefConfusion, Outcome::Crash, Outcome::Crash, Outcome::Error,
     Outcome::Error, Outcome::JinnException},
    {MicroId::CrossThreadLocalUse, Outcome::Running, Outcome::Crash,
     Outcome::Error, Outcome::Error, Outcome::JinnException},
    // Pitfall 8: nobody detects it at the boundary; Jinn behaves like a
    // production run (paper §2, Table 1 row 8).
    {MicroId::UnterminatedString, Outcome::Running, Outcome::Npe,
     Outcome::Running, Outcome::Npe, Outcome::Running},
    // Pushdown constraints (beyond the paper's table): neither -Xcheck:jni
    // emulation models frame/monitor/critical nesting depth, so the
    // production policy decides those columns. The unbalanced pop silently
    // consumes the implicit native-activation frame, so every production
    // configuration keeps running — only a depth-counting checker sees it.
    {MicroId::PopWithoutPush, Outcome::Running, Outcome::Running,
     Outcome::Running, Outcome::Running, Outcome::JinnException},
    {MicroId::PopWithoutPushFixed, Outcome::Running, Outcome::Running,
     Outcome::Running, Outcome::Running, Outcome::Running},
    {MicroId::MonitorExitUnmatched, Outcome::Running, Outcome::Running,
     Outcome::Running, Outcome::Running, Outcome::JinnException},
    {MicroId::MonitorExitUnmatchedFixed, Outcome::Running, Outcome::Running,
     Outcome::Running, Outcome::Running, Outcome::Running},
    {MicroId::CriticalNested, Outcome::Running, Outcome::Running,
     Outcome::Running, Outcome::Running, Outcome::JinnException},
    {MicroId::CriticalNestedFixed, Outcome::Running, Outcome::Running,
     Outcome::Running, Outcome::Running, Outcome::Running},
};

class MatrixTest : public ::testing::TestWithParam<Expected> {};

TEST_P(MatrixTest, DefaultHotSpot) {
  EXPECT_EQ(run(GetParam().Id, VmFlavor::HotSpotLike, CheckerKind::None),
            GetParam().DefaultHotSpot);
}

TEST_P(MatrixTest, DefaultJ9) {
  EXPECT_EQ(run(GetParam().Id, VmFlavor::J9Like, CheckerKind::None),
            GetParam().DefaultJ9);
}

TEST_P(MatrixTest, XcheckHotSpot) {
  EXPECT_EQ(run(GetParam().Id, VmFlavor::HotSpotLike, CheckerKind::Xcheck),
            GetParam().XcheckHotSpot);
}

TEST_P(MatrixTest, XcheckJ9) {
  EXPECT_EQ(run(GetParam().Id, VmFlavor::J9Like, CheckerKind::Xcheck),
            GetParam().XcheckJ9);
}

TEST_P(MatrixTest, Jinn) {
  EXPECT_EQ(run(GetParam().Id, VmFlavor::HotSpotLike, CheckerKind::Jinn),
            GetParam().Jinn);
}

TEST_P(MatrixTest, JinnReportsTheExpectedMachine) {
  const Expected &E = GetParam();
  if (E.Jinn != Outcome::JinnException)
    return;
  WorldConfig Config;
  Config.Checker = CheckerKind::Jinn;
  ScenarioWorld World(Config);
  runMicrobenchmark(E.Id, World);
  World.shutdown();
  ASSERT_FALSE(World.Jinn->reporter().reports().empty());
  EXPECT_EQ(World.Jinn->reporter().reports().front().Machine,
            microInfo(E.Id).Machine);
}

INSTANTIATE_TEST_SUITE_P(
    AllMicrobenchmarks, MatrixTest, ::testing::ValuesIn(Matrix),
    [](const ::testing::TestParamInfo<Expected> &Info) {
      return microInfo(Info.param.Id).ClassName;
    });

TEST(Coverage, JinnDetectsEveryBoundaryDetectableMicrobenchmark) {
  size_t Detected = 0, Total = 0;
  for (const MicroInfo &Info : allMicrobenchmarks()) {
    if (!Info.DetectableAtBoundary)
      continue;
    ++Total;
    WorldConfig Config;
    Config.Checker = CheckerKind::Jinn;
    if (isValidBugReport(runMicroToOutcome(Info.Id, Config)))
      ++Detected;
  }
  EXPECT_EQ(Detected, Total); // Jinn: 100% (paper §6.3)
  EXPECT_EQ(Total, 21u);
}

} // namespace
