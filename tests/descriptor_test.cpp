//===- tests/descriptor_test.cpp - Descriptor parsing unit tests ---------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jvm/Descriptor.h"

#include <gtest/gtest.h>

using namespace jinn::jvm;

namespace {

TEST(Descriptor, PrimitiveFieldDescriptors) {
  struct Case {
    const char *Desc;
    JType Kind;
  } Cases[] = {{"Z", JType::Boolean}, {"B", JType::Byte},
               {"C", JType::Char},    {"S", JType::Short},
               {"I", JType::Int},     {"J", JType::Long},
               {"F", JType::Float},   {"D", JType::Double}};
  for (const Case &C : Cases) {
    TypeDesc Out;
    ASSERT_TRUE(parseFieldDescriptor(C.Desc, Out)) << C.Desc;
    EXPECT_EQ(Out.Kind, C.Kind);
    EXPECT_FALSE(Out.isReference());
    EXPECT_EQ(Out.toDescriptor(), C.Desc);
  }
}

TEST(Descriptor, ObjectFieldDescriptor) {
  TypeDesc Out;
  ASSERT_TRUE(parseFieldDescriptor("Ljava/lang/String;", Out));
  EXPECT_EQ(Out.Kind, JType::Object);
  EXPECT_EQ(Out.ClassName, "java/lang/String");
  EXPECT_FALSE(Out.isArray());
  EXPECT_EQ(Out.toDescriptor(), "Ljava/lang/String;");
}

TEST(Descriptor, ArrayDescriptors) {
  TypeDesc Out;
  ASSERT_TRUE(parseFieldDescriptor("[I", Out));
  EXPECT_TRUE(Out.isArray());
  EXPECT_EQ(Out.ClassName, "[I");

  ASSERT_TRUE(parseFieldDescriptor("[[J", Out));
  EXPECT_EQ(Out.ClassName, "[[J");

  ASSERT_TRUE(parseFieldDescriptor("[Ljava/lang/Object;", Out));
  EXPECT_EQ(Out.ClassName, "[Ljava/lang/Object;");
  EXPECT_EQ(Out.toDescriptor(), "[Ljava/lang/Object;");
}

TEST(Descriptor, MalformedFieldDescriptors) {
  TypeDesc Out;
  for (const char *Bad : {"", "X", "L;", "Ljava/lang/String", "[", "II",
                          "V", "[V", "Lfoo;extra"})
    EXPECT_FALSE(parseFieldDescriptor(Bad, Out)) << Bad;
}

TEST(Descriptor, MethodDescriptorSimple) {
  MethodDesc Out;
  ASSERT_TRUE(parseMethodDescriptor("()V", Out));
  EXPECT_TRUE(Out.Params.empty());
  EXPECT_EQ(Out.Ret.Kind, JType::Void);
}

TEST(Descriptor, MethodDescriptorFromThePaper) {
  // (Ljava/lang/List;Ljava/util/Comparator;)V — the Collections.sort
  // example of paper §5.2.
  MethodDesc Out;
  ASSERT_TRUE(parseMethodDescriptor(
      "(Ljava/util/List;Ljava/util/Comparator;)V", Out));
  ASSERT_EQ(Out.Params.size(), 2u);
  EXPECT_EQ(Out.Params[0].ClassName, "java/util/List");
  EXPECT_EQ(Out.Params[1].ClassName, "java/util/Comparator");
  EXPECT_EQ(Out.Ret.Kind, JType::Void);
}

TEST(Descriptor, MethodDescriptorMixed) {
  MethodDesc Out;
  ASSERT_TRUE(parseMethodDescriptor("(I[JLjava/lang/String;D)[B", Out));
  ASSERT_EQ(Out.Params.size(), 4u);
  EXPECT_EQ(Out.Params[0].Kind, JType::Int);
  EXPECT_EQ(Out.Params[1].ClassName, "[J");
  EXPECT_EQ(Out.Params[2].ClassName, "java/lang/String");
  EXPECT_EQ(Out.Params[3].Kind, JType::Double);
  EXPECT_EQ(Out.Ret.ClassName, "[B");
}

TEST(Descriptor, MalformedMethodDescriptors) {
  MethodDesc Out;
  for (const char *Bad : {"", "()", "(V)V", "I)V", "(I", "(I)VV", "(I)",
                          "(L;)V"})
    EXPECT_FALSE(parseMethodDescriptor(Bad, Out)) << Bad;
}

TEST(Descriptor, VoidOnlyValidAsReturn) {
  MethodDesc Out;
  EXPECT_TRUE(parseMethodDescriptor("()V", Out));
  TypeDesc Field;
  EXPECT_FALSE(parseFieldDescriptor("V", Field));
}

// Property: every parsed descriptor reprints to its source, and reparses
// to an equal structure (round-trip).
class DescriptorRoundTrip : public ::testing::TestWithParam<const char *> {};

TEST_P(DescriptorRoundTrip, FieldRoundTrip) {
  TypeDesc First;
  ASSERT_TRUE(parseFieldDescriptor(GetParam(), First));
  std::string Printed = First.toDescriptor();
  EXPECT_EQ(Printed, GetParam());
  TypeDesc Second;
  ASSERT_TRUE(parseFieldDescriptor(Printed, Second));
  EXPECT_EQ(Second.Kind, First.Kind);
  EXPECT_EQ(Second.ClassName, First.ClassName);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, DescriptorRoundTrip,
    ::testing::Values("Z", "B", "C", "S", "I", "J", "F", "D",
                      "Ljava/lang/String;", "La;", "[I", "[[D",
                      "[Ljava/util/List;", "[[[Z"));

} // namespace
