//===- tests/fuzz_minimizer_test.cpp - Delta-debugging minimizer tests ---===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The minimizer from both ends: ddmin unit behavior on synthetic
/// predicates (1-minimal results, monotone shrink, preserved domain), and
/// the full loop on a seeded oracle defect — an executor whose replay
/// oracle silently drops dangling-reference reports must disagree with
/// inline checking, and the disagreement must shrink to the minimal
/// reproducer (<=5 ops, the acceptance bound).
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "fuzz/Minimizer.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace jinn;
using namespace jinn::fuzz;

namespace {

Sequence seqOf(std::vector<std::string> Ops, std::string Domain = "jni") {
  Sequence S;
  S.Domain = std::move(Domain);
  S.OpNames = std::move(Ops);
  return S;
}

TEST(Minimizer, ShrinksToTheSingleCulprit) {
  Sequence Seq = seqOf({"a", "b", "c", "d", "e", "f", "g", "culprit"});
  size_t Tests = 0;
  Sequence Min = minimizeSequence(
      Seq,
      [](const Sequence &S) {
        return std::find(S.OpNames.begin(), S.OpNames.end(), "culprit") !=
               S.OpNames.end();
      },
      &Tests);
  EXPECT_EQ(Min.OpNames, std::vector<std::string>{"culprit"});
  EXPECT_GT(Tests, 0u);
  EXPECT_EQ(Min.Domain, "jni");
}

TEST(Minimizer, KeepsAnInteractingPair) {
  // Failure needs both "x" and "y", in order, with junk interleaved.
  Sequence Seq = seqOf({"p", "x", "q", "r", "y", "s"});
  Sequence Min = minimizeSequence(Seq, [](const Sequence &S) {
    auto X = std::find(S.OpNames.begin(), S.OpNames.end(), "x");
    auto Y = std::find(S.OpNames.begin(), S.OpNames.end(), "y");
    return X != S.OpNames.end() && Y != S.OpNames.end() && X < Y;
  });
  EXPECT_EQ(Min.OpNames, (std::vector<std::string>{"x", "y"}));
}

TEST(Minimizer, AlwaysFailingInputShrinksToOneOp) {
  Sequence Seq = seqOf({"a", "b", "c", "d", "e"});
  Sequence Min =
      minimizeSequence(Seq, [](const Sequence &) { return true; });
  EXPECT_EQ(Min.OpNames.size(), 1u);
}

TEST(Minimizer, NeverFailingInputIsReturnedUnchanged) {
  // A pathological predicate (the failure vanished during shrinking):
  // ddmin must terminate and hand back the original sequence.
  Sequence Seq = seqOf({"a", "b", "c"});
  Sequence Min =
      minimizeSequence(Seq, [](const Sequence &) { return false; });
  EXPECT_EQ(Min.OpNames, Seq.OpNames);
}

/// Seeded 1-step shrink: one op of padding around a self-contained bug
/// path; ddmin must strip the padding and keep the exact setup chain.
TEST(Minimizer, SeededDefectSheds1StepOfPadding) {
  Sequence Noisy = seqOf({"ensure_capacity", "slot_array", "slot_string",
                          "global_new", "global_delete",
                          "bug_global_double_free"});
  ExecutorOptions Opts;
  Sequence Min = minimizeSequence(Noisy, [&Opts](const Sequence &S) {
    // "Fails" = the bug path still yields exactly its predicted report.
    return runJniSequence(S, Opts).Pass && S.bugOp() != nullptr;
  });
  // slot_array is padding; the double free needs string+global+delete.
  EXPECT_LE(Min.OpNames.size(), 5u);
  EXPECT_EQ(Min.OpNames.back(), "bug_global_double_free");
  EXPECT_TRUE(std::find(Min.OpNames.begin(), Min.OpNames.end(),
                        "slot_array") == Min.OpNames.end());
}

/// The acceptance scenario: a defective replay oracle (silently dropping
/// dangling-reference reports) must surface as an oracle disagreement on
/// a noisy sequence and shrink to a minimal reproducer of <=5 calls.
TEST(Minimizer, OracleDisagreementShrinksToMinimalReproducer) {
  Generator Gen(21);
  Sequence Noisy = Gen.bugJniSequence("bug_global_dangling", 0);

  ExecutorOptions Defective;
  Defective.Defect = SeededDefect::ReplayDropsDangling;
  Defective.RunXcheck = false; // isolate the replay disagreement

  ExecResult R = runJniSequence(Noisy, Defective);
  ASSERT_FALSE(R.Pass);
  bool SawReplayDisagreement =
      std::any_of(R.Failures.begin(), R.Failures.end(),
                  [](const std::string &F) {
                    return F.find("replay disagreement") != std::string::npos;
                  });
  EXPECT_TRUE(SawReplayDisagreement);

  size_t Tests = 0;
  Sequence Min = minimizeSequence(
      Noisy,
      [&Defective](const Sequence &S) {
        ExecResult CR = runJniSequence(S, Defective);
        return !CR.Pass &&
               std::any_of(CR.Failures.begin(), CR.Failures.end(),
                           [](const std::string &F) {
                             return failureClass(F) == "replay";
                           });
      },
      &Tests);
  EXPECT_LE(Min.OpNames.size(), 5u) << "minimized to " << Min.OpNames.size()
                                    << " ops in " << Tests << " tests";
  // The minimal reproducer must still disagree, and the healthy executor
  // must accept it (the defect, not the sequence, is at fault).
  EXPECT_FALSE(runJniSequence(Min, Defective).Pass);
  ExecutorOptions Healthy;
  Healthy.RunXcheck = false;
  EXPECT_TRUE(runJniSequence(Min, Healthy).Pass);
}

/// A campaign run with the seeded defect must record findings with
/// minimized reproducers attached.
TEST(Minimizer, CampaignAttachesMinimizedFindings) {
  CampaignOptions Opts;
  Opts.Seed = 3;
  Opts.Defect = SeededDefect::ReplayDropsDangling;
  Opts.RunXcheck = false;
  Opts.RunPython = false;
  Opts.CleanPerFocus = 1;
  Opts.Machines = {"Global or weak global reference"};
  CampaignResult Result = runCampaign(Opts);
  ASSERT_FALSE(Result.Pass);
  ASSERT_FALSE(Result.Findings.empty());
  for (const CampaignFinding &F : Result.Findings) {
    EXPECT_FALSE(F.Failures.empty());
    EXPECT_LE(F.Minimized.OpNames.size(), F.Original.OpNames.size());
    EXPECT_GT(F.MinimizerTests, 0u);
  }
}

} // namespace
