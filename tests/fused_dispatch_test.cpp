//===- tests/fused_dispatch_test.cpp - Fused tier-1 dispatch parity ------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fused (tier-1) dispatch is a pure performance tier: compiling the
/// per-function check sequences into straight-line slot runs must change
/// nothing observable. This suite pins that down three ways:
///
///  1. Parity: every Table-1 microbenchmark and every checked-in fuzz
///     reproducer produces byte-identical report lists under dense,
///     sparse, and fused dispatch — full configuration and ablated.
///  2. Eligibility: fused engages exactly when only synthesized machines
///     observe the boundary (inline checking, no sampling, no recorder),
///     and installFused refuses a dispatcher that already carries
///     non-machine hooks.
///  3. Demotion: installing a dynamic hook mid-run — while worker threads
///     storm crossings — atomically falls back to the dynamic tier
///     without dropping a crossing. Meant to run clean under
///     -fsanitize=thread (configure with -DJINN_TSAN=ON).
///
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/Executor.h"
#include "jinn/JinnAgent.h"
#include "jni/JniRuntime.h"
#include "jvm/Vm.h"
#include "jvmti/Interpose.h"
#include "jvmti/Jvmti.h"
#include "scenarios/Scenarios.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace jinn;

namespace {

/// The three dispatch tiers a Jinn world can run its checks on.
enum class Tier { Dense, Sparse, Fused };

scenarios::WorldConfig tierConfig(Tier T,
                                  std::vector<std::string> Machines = {}) {
  scenarios::WorldConfig Config;
  Config.Checker = scenarios::CheckerKind::Jinn;
  Config.JinnSparseDispatch = T != Tier::Dense;
  Config.JinnFusedDispatch = T == Tier::Fused;
  Config.JinnEnabledMachines = std::move(Machines);
  return Config;
}

void expectSameReports(const std::vector<agent::JinnReport> &A,
                       const std::vector<agent::JinnReport> &B,
                       const char *Tier) {
  ASSERT_EQ(A.size(), B.size()) << Tier;
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Machine, B[I].Machine) << Tier << " #" << I;
    EXPECT_EQ(A[I].Function, B[I].Function) << Tier << " #" << I;
    EXPECT_EQ(A[I].Message, B[I].Message) << Tier << " #" << I;
    EXPECT_EQ(A[I].EndOfRun, B[I].EndOfRun) << Tier << " #" << I;
  }
}

void runThreeTierEquivalence(std::vector<std::string> Machines) {
  for (const scenarios::MicroInfo &Info : scenarios::allMicrobenchmarks()) {
    SCOPED_TRACE(Info.ClassName);
    scenarios::ScenarioWorld Dense(tierConfig(Tier::Dense, Machines));
    scenarios::runMicrobenchmark(Info.Id, Dense);
    Dense.shutdown();
    EXPECT_FALSE(Dense.Jinn->fusedInstalled());

    scenarios::ScenarioWorld Sparse(tierConfig(Tier::Sparse, Machines));
    scenarios::runMicrobenchmark(Info.Id, Sparse);
    Sparse.shutdown();
    EXPECT_FALSE(Sparse.Jinn->fusedInstalled());

    scenarios::ScenarioWorld Fused(tierConfig(Tier::Fused, Machines));
    EXPECT_TRUE(Fused.Jinn->fusedInstalled())
        << "fused tier refused: " << Fused.Jinn->fusedRefusal();
    scenarios::runMicrobenchmark(Info.Id, Fused);
    Fused.shutdown();

    EXPECT_EQ(scenarios::classify(Dense), scenarios::classify(Fused));
    EXPECT_EQ(scenarios::classify(Sparse), scenarios::classify(Fused));
    expectSameReports(Dense.Jinn->reporter().reports(),
                      Fused.Jinn->reporter().reports(), "dense-vs-fused");
    expectSameReports(Sparse.Jinn->reporter().reports(),
                      Fused.Jinn->reporter().reports(), "sparse-vs-fused");
  }
}

TEST(FusedDispatch, FullConfigurationReportsIdenticalAcrossTiers) {
  runThreeTierEquivalence({});
}

TEST(FusedDispatch, AblatedConfigurationReportsIdenticalAcrossTiers) {
  // Only the local-reference machine: the fused compiler must filter the
  // checked-in plan down to the live subset and remap machine indices,
  // and the result must still be report-preserving.
  runThreeTierEquivalence({"Local reference"});
}

TEST(FusedDispatch, CorpusReproducersReplayIdenticalAcrossTiers) {
  std::vector<std::string> Errors;
  std::vector<fuzz::CorpusEntry> Entries =
      fuzz::loadCorpusDir(JINN_SOURCE_DIR "/fuzz/corpus", Errors);
  for (const std::string &Error : Errors)
    ADD_FAILURE() << Error;
  ASSERT_FALSE(Entries.empty());
  for (const fuzz::CorpusEntry &Entry : Entries) {
    if (Entry.Seq.Domain == "py")
      continue; // the Python boundary has no fused tier
    SCOPED_TRACE(Entry.Name);
    // Replay forces record mode (fused-ineligible), so compare the
    // spec-verdict oracle alone across the three Jinn tiers.
    fuzz::ExecutorOptions Opts;
    Opts.RunXcheck = false;
    Opts.RunReplay = false;

    Opts.JinnSparseDispatch = false;
    Opts.JinnFusedDispatch = false;
    fuzz::ExecResult Dense = fuzz::runJniSequence(Entry.Seq, Opts);

    Opts.JinnSparseDispatch = true;
    fuzz::ExecResult Sparse = fuzz::runJniSequence(Entry.Seq, Opts);

    Opts.JinnFusedDispatch = true;
    fuzz::ExecResult Fused = fuzz::runJniSequence(Entry.Seq, Opts);

    EXPECT_EQ(Dense.Pass, Fused.Pass);
    EXPECT_EQ(Sparse.Pass, Fused.Pass);
    EXPECT_EQ(Dense.ExecutedOps, Fused.ExecutedOps);
    expectSameReports(Dense.Inline, Fused.Inline, "dense-vs-fused");
    expectSameReports(Sparse.Inline, Fused.Inline, "sparse-vs-fused");
  }
}

//===----------------------------------------------------------------------===
// Eligibility: fused engages only when nothing but synthesized machines
// observes the boundary.
//===----------------------------------------------------------------------===

TEST(FusedDispatch, RecordingModeStaysDynamic) {
  scenarios::WorldConfig Config = tierConfig(Tier::Fused);
  Config.JinnMode = agent::TraceMode::RecordAndReplay;
  scenarios::ScenarioWorld World(Config);
  EXPECT_FALSE(World.Jinn->fusedInstalled());
  // The exact refusal string is load-bearing: run_benches.sh and the
  // monitor surface it verbatim to explain why a run stayed dynamic.
  EXPECT_EQ(World.Jinn->fusedRefusal(),
            "recording/sampling modes stay on the dynamic tier");
  EXPECT_FALSE(jvmti::dispatcherFor(World.Rt).fusedActive());
  World.shutdown();
}

TEST(FusedDispatch, SampledCheckingStaysDynamic) {
  scenarios::WorldConfig Config = tierConfig(Tier::Fused);
  Config.JinnSampleRate = 4;
  scenarios::ScenarioWorld World(Config);
  EXPECT_FALSE(World.Jinn->fusedInstalled());
  EXPECT_EQ(World.Jinn->fusedRefusal(),
            "recording/sampling modes stay on the dynamic tier");
  EXPECT_FALSE(jvmti::dispatcherFor(World.Rt).fusedActive());
  World.shutdown();
}

TEST(FusedDispatch, DisabledByOptionStaysDynamic) {
  scenarios::ScenarioWorld World(tierConfig(Tier::Sparse));
  EXPECT_FALSE(World.Jinn->fusedInstalled());
  EXPECT_EQ(World.Jinn->fusedRefusal(), "disabled by options");
  World.shutdown();
}

TEST(FusedDispatch, AgentRefusesADispatcherWithForeignHooks) {
  // Agent-level version of the dirty-dispatcher refusal: a non-machine
  // hook installed before the agent loads (a debugger, another agent)
  // must keep the whole load on the dynamic tier, with the exact
  // refusal string the operator sees.
  jvm::Vm Vm((jvm::VmOptions()));
  jni::JniRuntime Rt(Vm);
  jvmti::dispatcherFor(Rt).addPreAll([](jvmti::CapturedCall &) {});

  jvmti::AgentHost Host(Rt);
  auto &Jinn = static_cast<agent::JinnAgent &>(
      Host.load(std::make_unique<agent::JinnAgent>()));
  EXPECT_FALSE(Jinn.fusedInstalled());
  EXPECT_EQ(Jinn.fusedRefusal(),
            "dispatcher already carries non-machine hooks");
  EXPECT_FALSE(jvmti::dispatcherFor(Rt).fusedActive());
}

TEST(FusedDispatch, InstallRefusedOnADirtyDispatcherAndDemotedByMutation) {
  jvmti::InterposeDispatcher D;
  auto Table = std::make_shared<jvmti::FusedTable>();
  Table->Run = [](const void *, const jvmti::FusedTable::FnRec &,
                  jvmti::CapturedCall &, bool) {};

  // A clean dispatcher accepts the table; any later dynamic mutation
  // demotes it — one-way — and a dirty dispatcher refuses reinstall.
  ASSERT_TRUE(D.installFused(Table));
  EXPECT_TRUE(D.fusedActive());
  D.addPreAll([](jvmti::CapturedCall &) {});
  EXPECT_FALSE(D.fusedActive());
  EXPECT_EQ(D.demotionCount(), 1u);
  EXPECT_FALSE(D.installFused(Table));

  jvmti::InterposeDispatcher D2;
  D2.addPre(jni::FnId::GetVersion, [](jvmti::CapturedCall &) {});
  EXPECT_EQ(D2.demotionCount(), 0u); // nothing fused yet: no demotion
  EXPECT_TRUE(D2.installFused(Table)) << "per-function machine hooks are "
                                         "exactly what fused replaces";

  jvmti::InterposeDispatcher D3;
  EXPECT_FALSE(D3.installFused(nullptr));
  auto NoRunner = std::make_shared<jvmti::FusedTable>();
  EXPECT_FALSE(D3.installFused(NoRunner));
}

//===----------------------------------------------------------------------===
// Demotion under fire: flipping tiers while worker threads storm
// crossings must not drop a crossing, report falsely, or race.
//===----------------------------------------------------------------------===

TEST(FusedDispatch, MidRunHookInstallDemotesWithoutDroppingACrossing) {
  scenarios::ScenarioWorld World(tierConfig(Tier::Fused));
  ASSERT_TRUE(World.Jinn->fusedInstalled())
      << "fused tier refused: " << World.Jinn->fusedRefusal();
  jvmti::InterposeDispatcher &D = jvmti::dispatcherFor(World.Rt);
  ASSERT_TRUE(D.fusedActive());

  JavaVM *Jvm = World.Rt.javaVm();
  std::atomic<bool> Stop{false};
  std::atomic<int> Failures{0};
  std::atomic<uint64_t> Crossings{0};
  constexpr int NumThreads = 4;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      JNIEnv *Env = nullptr;
      if (Jvm->functions->AttachCurrentThread(Jvm, &Env, nullptr) != JNI_OK) {
        ++Failures;
        return;
      }
      const JNINativeInterface_ *Fns = Env->functions;
      while (!Stop.load(std::memory_order_relaxed)) {
        jstring S = Fns->NewStringUTF(Env, "storm");
        if (Fns->GetStringUTFLength(Env, S) != 5)
          ++Failures;
        Fns->DeleteLocalRef(Env, S);
        Crossings.fetch_add(1, std::memory_order_relaxed);
      }
      Jvm->functions->DetachCurrentThread(Jvm);
    });

  // Let the storm reach the fused steady state before flipping tiers.
  while (Crossings.load(std::memory_order_relaxed) < 256)
    std::this_thread::yield();

  // A hand-registered hook arrives mid-run: the dispatcher must demote to
  // dynamic dispatch atomically, and every crossing made after the
  // install returns must reach the new hook.
  std::atomic<uint64_t> Seen{0};
  D.addPre(jni::FnId::GetVersion, [&Seen](jvmti::CapturedCall &) {
    Seen.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_FALSE(D.fusedActive());
  EXPECT_GE(D.demotionCount(), 1u);

  JNIEnv *Env = World.env();
  constexpr uint64_t Calls = 64;
  for (uint64_t I = 0; I < Calls; ++I)
    Env->functions->GetVersion(Env);
  EXPECT_GE(Seen.load(std::memory_order_relaxed), Calls);

  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_GT(Crossings.load(std::memory_order_relaxed), 256u);

  World.shutdown();
  // Balanced allocation on every thread across the tier flip: the checker
  // must stay silent through demotion.
  for (const agent::JinnReport &R : World.Jinn->reporter().reports())
    ADD_FAILURE() << "[" << R.Machine << "] " << R.Function << ": "
                  << R.Message;
}

TEST(FusedDispatch, ConcurrentStormStaysCleanOnTheFusedTier) {
  // Pure fused-tier concurrency soak (no demotion): the straight-line
  // slot runner shares machine shadow state across threads exactly like
  // the dynamic walk; TSan must see the same locking discipline.
  scenarios::ScenarioWorld World(tierConfig(Tier::Fused));
  ASSERT_TRUE(World.Jinn->fusedInstalled());
  JavaVM *Jvm = World.Rt.javaVm();
  std::atomic<int> Failures{0};
  constexpr int NumThreads = 4;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      JNIEnv *Env = nullptr;
      if (Jvm->functions->AttachCurrentThread(Jvm, &Env, nullptr) != JNI_OK) {
        ++Failures;
        return;
      }
      const JNINativeInterface_ *Fns = Env->functions;
      for (int I = 0; I < 300; ++I) {
        jstring S = Fns->NewStringUTF(Env, "fused");
        jobject G = Fns->NewGlobalRef(Env, S);
        if (Fns->GetStringUTFLength(Env, static_cast<jstring>(G)) != 5)
          ++Failures;
        Fns->DeleteLocalRef(Env, S);
        Fns->DeleteGlobalRef(Env, G);
        if (I % 16 == 0 && Fns->PushLocalFrame(Env, 8) == JNI_OK) {
          jstring Inner = Fns->NewStringUTF(Env, "frame");
          if (Fns->GetStringUTFLength(Env, Inner) != 5)
            ++Failures;
          Fns->PopLocalFrame(Env, nullptr);
        }
      }
      Jvm->functions->DetachCurrentThread(Jvm);
    });
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(Failures.load(), 0);
  World.shutdown();
  EXPECT_TRUE(World.Jinn->reporter().reports().empty());
}

} // namespace
