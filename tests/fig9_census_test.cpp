//===- tests/fig9_census_test.cpp - Figure 9 format & Table 2 census -----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jinn/Census.h"
#include "scenarios/Scenarios.h"

#include <gtest/gtest.h>

using namespace jinn;
using namespace jinn::scenarios;

namespace {

TEST(Figure9, HotSpotStyleWarnsTwiceAndContinues) {
  WorldConfig Config;
  Config.Flavor = jvm::VmFlavor::HotSpotLike;
  Config.Checker = CheckerKind::Xcheck;
  ScenarioWorld World(Config);
  runMicrobenchmark(MicroId::PendingException, World);
  const auto &Detections = World.Xcheck->reporter().detections();
  ASSERT_EQ(Detections.size(), 2u); // both illegal calls, Figure 9a
  for (const auto &D : Detections) {
    EXPECT_EQ(D.Behavior, checkjni::CheckerBehavior::Warning);
    EXPECT_NE(D.FormattedText.find(
                  "WARNING in native method: JNI call made with exception "
                  "pending"),
              std::string::npos);
    EXPECT_NE(D.FormattedText.find("at ExceptionState.call(Native Method)"),
              std::string::npos);
    EXPECT_NE(D.FormattedText.find(
                  "at ExceptionState.main(ExceptionState.java:5)"),
              std::string::npos);
  }
  EXPECT_FALSE(World.Vm.mainThread().Poisoned); // HotSpot keeps running
}

TEST(Figure9, J9StyleAbortsAtTheFirstError) {
  WorldConfig Config;
  Config.Flavor = jvm::VmFlavor::J9Like;
  Config.Checker = CheckerKind::Xcheck;
  ScenarioWorld World(Config);
  runMicrobenchmark(MicroId::PendingException, World);
  const auto &Detections = World.Xcheck->reporter().detections();
  ASSERT_EQ(Detections.size(), 1u); // aborted after the first, Figure 9b
  EXPECT_NE(Detections[0].FormattedText.find(
                "JVMJNCK028E JNI error in GetMethodID"),
            std::string::npos);
  EXPECT_NE(Detections[0].FormattedText.find(
                "JVMJNCK024E JNI error detected. Aborting."),
            std::string::npos);
  EXPECT_TRUE(World.Vm.mainThread().Poisoned);
}

TEST(Figure9, JinnReportsBothCallsWithCauseChain) {
  WorldConfig Config;
  Config.Checker = CheckerKind::Jinn;
  ScenarioWorld World(Config);
  runMicrobenchmark(MicroId::PendingException, World);
  const auto &Reports = World.Jinn->reporter().reports();
  ASSERT_EQ(Reports.size(), 2u);
  EXPECT_EQ(Reports[0].Function, "GetMethodID");
  EXPECT_EQ(Reports[1].Function, "CallVoidMethodA");

  std::string Text =
      World.Vm.describeThrowable(World.Vm.mainThread().Pending);
  // Figure 9c's structure: failure, caused by failure, caused by the
  // original RuntimeException with its Java source location.
  size_t First = Text.find(
      "jinn.JNIAssertionFailure: An exception is pending in "
      "CallVoidMethodA.");
  size_t Second = Text.find(
      "Caused by: jinn.JNIAssertionFailure: An exception is pending in "
      "GetMethodID.");
  size_t Third = Text.find(
      "Caused by: java.lang.RuntimeException: checked by native code");
  size_t Origin = Text.find("at ExceptionState.foo(ExceptionState.java:9)");
  ASSERT_NE(First, std::string::npos);
  ASSERT_NE(Second, std::string::npos);
  ASSERT_NE(Third, std::string::npos);
  ASSERT_NE(Origin, std::string::npos);
  EXPECT_LT(First, Second);
  EXPECT_LT(Second, Third);
  EXPECT_LT(Third, Origin);
}

TEST(Table2Census, StructuralRowsAreExact) {
  auto Rows = agent::computeConstraintCensus();
  ASSERT_EQ(Rows.size(), 11u);
  auto RowNamed = [&](const char *Name) -> const agent::CensusRow & {
    for (const auto &Row : Rows)
      if (Row.Name == Name)
        return Row;
    static agent::CensusRow Missing;
    ADD_FAILURE() << "missing row " << Name;
    return Missing;
  };
  // Rows that are structural consequences of the JNI surface must equal
  // the paper exactly.
  EXPECT_EQ(RowNamed("JNIEnv* state").Count, 229u);
  EXPECT_EQ(RowNamed("Exception state").Count, 209u);
  EXPECT_EQ(RowNamed("Critical-section state").Count, 225u);
  EXPECT_EQ(RowNamed("Entity-specific typing").Count, 131u);
  EXPECT_EQ(RowNamed("Access control").Count, 18u);
  EXPECT_EQ(RowNamed("Pinned or copied").Count, 12u);
  EXPECT_EQ(RowNamed("Monitor").Count, 1u);
}

TEST(Table2Census, ExperimentalRowsAreWithinTenPercentOfThePaper) {
  for (const auto &Row : agent::computeConstraintCensus()) {
    double Ratio = static_cast<double>(Row.Count) /
                   static_cast<double>(Row.PaperCount);
    EXPECT_GE(Ratio, 0.80) << Row.Name;
    EXPECT_LE(Ratio, 1.20) << Row.Name;
  }
}

TEST(Coverage, MatchesThePaperQualitatively) {
  // Jinn 100%; each -Xcheck baseline strictly below; the two baselines
  // disagree on many microbenchmarks (paper §6.3).
  size_t Total = 0, Hs = 0, J9 = 0, Jn = 0, Inconsistent = 0;
  for (const MicroInfo &Info : allMicrobenchmarks()) {
    if (!Info.DetectableAtBoundary)
      continue;
    ++Total;
    Outcome OHs = runMicroToOutcome(
        Info.Id, {jvm::VmFlavor::HotSpotLike, CheckerKind::Xcheck, false, {}, {}});
    Outcome OJ9 = runMicroToOutcome(
        Info.Id, {jvm::VmFlavor::J9Like, CheckerKind::Xcheck, false, {}, {}});
    Outcome OJn = runMicroToOutcome(
        Info.Id, {jvm::VmFlavor::HotSpotLike, CheckerKind::Jinn, false, {}, {}});
    Hs += isValidBugReport(OHs);
    J9 += isValidBugReport(OJ9);
    Jn += isValidBugReport(OJn);
    Inconsistent += OHs != OJ9;
  }
  EXPECT_EQ(Jn, Total);
  EXPECT_LT(Hs, Total);
  EXPECT_LT(J9, Total);
  EXPECT_GE(Inconsistent, Total / 2); // "more than half" in the paper
}

} // namespace
