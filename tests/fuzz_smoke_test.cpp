//===- tests/fuzz_smoke_test.cpp - Differential fuzzer smoke campaign ----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzer's tier-1 contract, at ctest budget (~seconds, fixed seeds):
/// the op table must validate against the resolved spec models; every
/// clean path must execute report-free under all three oracles; every bug
/// path must produce exactly its spec-predicted report; and the smoke
/// campaign must drive every reachable transition of every JNI machine
/// (the ≥90% acceptance floor — the smoke budget in fact reaches 100%,
/// and this test pins that so the committed baseline can demand it).
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace jinn;
using namespace jinn::fuzz;

namespace {

TEST(FuzzOps, TableValidatesAgainstSpecModels) {
  std::vector<std::string> Issues = validateJniOps(jniMachineModels());
  for (const std::string &Issue : Issues)
    ADD_FAILURE() << Issue;
  EXPECT_TRUE(Issues.empty());
}

TEST(FuzzOps, EveryMachineHasABugOp) {
  // The generator can only reach error states through declared bug ops;
  // a machine without one would silently cap below the coverage floor.
  for (const analysis::MachineModel &Model : jniMachineModels()) {
    bool ErrorReachable = std::any_of(
        Model.Transitions.begin(), Model.Transitions.end(),
        [](const analysis::TransitionModel &T) {
          return T.To.rfind("Error", 0) == 0;
        });
    if (!ErrorReachable)
      continue;
    bool Found = std::any_of(jniOps().begin(), jniOps().end(),
                             [&](const FuzzOp &Op) {
                               return Op.Kind == OpKind::Bug &&
                                      Op.Expect.Machine == Model.Name;
                             });
    EXPECT_TRUE(Found) << "no bug op targets machine " << Model.Name;
  }
}

TEST(FuzzSmoke, CleanPathsAreReportFree) {
  Generator Gen(11);
  for (const analysis::MachineModel &Model : jniMachineModels()) {
    Sequence Seq = Gen.cleanJniSequence(Model.Name, 0);
    ExecResult R = runJniSequence(Seq);
    for (const std::string &Failure : R.Failures)
      ADD_FAILURE() << "focus " << Model.Name << ": " << Failure;
    EXPECT_TRUE(R.Pass);
    EXPECT_TRUE(R.Inline.empty());
  }
}

TEST(FuzzSmoke, BugPathsProduceExactlyThePredictedReport) {
  Generator Gen(13);
  for (const FuzzOp &Op : jniOps()) {
    if (Op.Kind != OpKind::Bug)
      continue;
    Sequence Seq = Gen.bugJniSequence(Op.Name, 0);
    ExecResult R = runJniSequence(Seq);
    for (const std::string &Failure : R.Failures)
      ADD_FAILURE() << Op.Name << ": " << Failure;
    EXPECT_TRUE(R.Pass) << Op.Name;
    ASSERT_EQ(R.Inline.size(), 1u) << Op.Name;
    EXPECT_EQ(R.Inline.front().Machine, Op.Expect.Machine) << Op.Name;
  }
}

TEST(FuzzSmoke, CampaignCoversEveryReachableJniEdge) {
  CampaignOptions Opts;
  Opts.Seed = 1;
  DiagnosticSink Sink;
  Opts.Sink = &Sink;
  CampaignResult Result = runCampaign(Opts);

  for (const std::string &Issue : Result.TableIssues)
    ADD_FAILURE() << Issue;
  for (const CampaignFinding &F : Result.Findings) {
    for (const std::string &Failure : F.Failures)
      ADD_FAILURE() << Failure;
  }
  EXPECT_TRUE(Result.Pass);

  // The acceptance criterion is >=90%; the smoke budget reaches every
  // reachable edge, and the committed baseline holds future runs to that.
  EXPECT_TRUE(Result.JniCov.allAbove(0.90)) << Result.JniCov.toTable();
  for (const MachineCoverage &Row : Result.JniCov.machines())
    EXPECT_EQ(Row.covered(), Row.reachable()) << Result.JniCov.toTable();

  // Python domain: same exhaustive coverage over its three machines.
  EXPECT_TRUE(Result.PyCov.allAbove(0.90)) << Result.PyCov.toTable();
  for (const MachineCoverage &Row : Result.PyCov.machines())
    EXPECT_EQ(Row.covered(), Row.reachable()) << Result.PyCov.toTable();

  // Counters surfaced through the Diagnostics sink for observability.
  EXPECT_EQ(Sink.counter("fuzz.findings"), 0u);
  EXPECT_EQ(Sink.counter("fuzz.sequences"), Result.SequencesRun);
  EXPECT_GT(Sink.counter("fuzz.cov.Monitor.covered"), 0u);
}

TEST(FuzzSmoke, SequencesAreDeterministicForAFixedSeed) {
  Generator Gen(99);
  Sequence A = Gen.cleanJniSequence("Local reference", 4);
  Sequence B = Gen.cleanJniSequence("Local reference", 4);
  EXPECT_EQ(A.OpNames, B.OpNames);
  Sequence C = Gen.cleanJniSequence("Local reference", 5);
  EXPECT_NE(A.OpNames, C.OpNames);

  // Same for bug paths, and across generator instances.
  Sequence D = Gen.bugJniSequence("bug_global_dangling", 2);
  Sequence E = Generator(99).bugJniSequence("bug_global_dangling", 2);
  EXPECT_EQ(D.OpNames, E.OpNames);
}

TEST(FuzzSmoke, PythonDomainVerdicts) {
  PyExecResult Clean = runPySequence(cleanPySequence(5, 0));
  for (const std::string &Failure : Clean.Failures)
    ADD_FAILURE() << Failure;
  EXPECT_TRUE(Clean.Pass);

  for (const std::string &BugName : pyBugOpNames()) {
    PyExecResult R = runPySequence(bugPySequence(5, BugName, 0));
    for (const std::string &Failure : R.Failures)
      ADD_FAILURE() << BugName << ": " << Failure;
    EXPECT_TRUE(R.Pass) << BugName;
  }
}

} // namespace
