//===- tests/speclint_test.cpp - Spec static analyzer tests --------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analyzer contract, from both sides: the fourteen shipped machines
/// (and the Python checker's machines) must lint clean, a fixture spec
/// with seeded defects must be flagged on every defect, the relevance
/// matrix must agree with what Algorithm 1 installs into the dispatcher,
/// and static check elision (sparse dispatch) must preserve every report
/// list — including under record+replay.
///
//===----------------------------------------------------------------------===//

#include "analysis/SpecLint.h"
#include "jinn/Machines.h"
#include "scenarios/Scenarios.h"
#include "synth/Synthesizer.h"
#include "trace/Replay.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

using namespace jinn;
using namespace jinn::analysis;
using jinn::jni::FnId;
using jinn::spec::Direction;
using jinn::spec::FunctionSelector;

namespace {

struct CountingReporter : spec::Reporter {
  size_t Violations = 0;
  void violation(spec::TransitionContext &, const spec::StateMachineSpec &,
                 const std::string &) override {
    ++Violations;
  }
  void endOfRun(const spec::StateMachineSpec &, const std::string &) override {
  }
};

/// Models + real synthesis stats for the shipped machine set.
struct ShippedAnalysis {
  agent::MachineSet Machines;
  CountingReporter Reporter;
  jvmti::InterposeDispatcher Dispatcher;
  synth::SynthesisStats Stats;
  std::vector<MachineModel> Models;
  RelevanceMatrix Matrix;

  ShippedAnalysis() {
    synth::Synthesizer Synth(Machines.all(), Reporter);
    Stats = Synth.installInto(Dispatcher);
    for (spec::MachineBase *Machine : Machines.all())
      Models.push_back(buildModel(Machine->spec()));
    Matrix = buildRelevanceMatrix(Models);
  }
};

//===----------------------------------------------------------------------===
// Clean runs: the shipped specifications carry no defects.
//===----------------------------------------------------------------------===

TEST(SpecLint, ShippedJniMachinesClean) {
  ShippedAnalysis A;
  LintOptions Opts;
  Opts.Stats = &A.Stats;
  Opts.IncludeInfo = false;
  LintReport Report = lintMachines(A.Models, Opts);
  for (const Finding &F : Report.Findings)
    ADD_FAILURE() << severityName(F.S) << " " << F.Check << " [" << F.Machine
                  << "] " << F.Detail;
  EXPECT_EQ(Report.count(Severity::Error), 0u);
  EXPECT_EQ(Report.count(Severity::Warning), 0u);
}

TEST(SpecLint, PythonMachinesClean) {
  std::vector<MachineModel> Models = buildPythonModels();
  ASSERT_EQ(Models.size(), 3u);
  LintOptions Opts;
  Opts.IncludeInfo = false;
  LintReport Report = lintMachines(Models, Opts);
  for (const Finding &F : Report.Findings)
    ADD_FAILURE() << severityName(F.S) << " " << F.Check << " [" << F.Machine
                  << "] " << F.Detail;
  EXPECT_FALSE(Report.hasErrors());
}

//===----------------------------------------------------------------------===
// Seeded defects: one fixture machine carrying every defect class the
// analyzer exists to catch. Each must surface as exactly the right check.
//===----------------------------------------------------------------------===

spec::StateMachineSpec brokenFixtureSpec() {
  spec::TransitionAction Noop = [](spec::TransitionContext &) {};
  spec::StateMachineSpec Spec;
  Spec.Name = "Broken fixture";
  Spec.ObservedEntity = "nothing real";
  Spec.States = {"Start", "Mid", "Orphan", "Error: boom"};

  // Fine on its own, but overlaps the MonitorEnter transition below: both
  // fire at Call:C->Java on MonitorEnter with different non-error targets.
  Spec.Transitions.push_back(
      {"Start",
       "Mid",
       {{FunctionSelector::all("any JNI function"), Direction::CallCToJava}},
       Noop});
  Spec.Transitions.push_back(
      {"Start",
       "Start",
       {{FunctionSelector::one(FnId::MonitorEnter), Direction::CallCToJava}},
       Noop});

  // Targets a state the machine never declared.
  Spec.Transitions.push_back(
      {"Mid",
       "Ghost",
       {{FunctionSelector::one(FnId::MonitorExit), Direction::CallCToJava}},
       Noop});

  // A selector that matches no function at all.
  Spec.Transitions.push_back(
      {"Mid",
       "Start",
       {{FunctionSelector::matching("matches nothing",
                                    [](const jni::FnTraits &) {
                                      return false;
                                    }),
         Direction::ReturnJavaToC}},
       Noop});

  // Triggers but no action: Algorithm 1 would wrap a null action.
  Spec.Transitions.push_back(
      {"Mid",
       "Mid",
       {{FunctionSelector::one(FnId::GetVersion), Direction::CallCToJava}},
       nullptr});

  // An action with no trigger anywhere: dead code in the spec.
  Spec.Transitions.push_back({"Mid", "Start", {}, Noop});

  // "Orphan" is declared but no transition ever reaches it.
  return Spec;
}

TEST(SpecLint, FlagsEverySeededDefect) {
  std::vector<MachineModel> Models = {buildModel(brokenFixtureSpec())};
  LintOptions Opts;
  Opts.IncludeInfo = false;
  LintReport Report = lintMachines(Models, Opts);

  EXPECT_TRUE(Report.hasErrors());
  ASSERT_EQ(Report.named("reachability/unreachable-state").size(), 1u);
  EXPECT_NE(Report.named("reachability/unreachable-state")[0]->Detail.find(
                "Orphan"),
            std::string::npos);
  ASSERT_EQ(Report.named("reachability/undeclared-state").size(), 1u);
  EXPECT_NE(
      Report.named("reachability/undeclared-state")[0]->Detail.find("Ghost"),
      std::string::npos);
  EXPECT_EQ(Report.named("selector/zero-match").size(), 1u);
  EXPECT_EQ(Report.named("transition/missing-action").size(), 1u);
  EXPECT_EQ(Report.named("transition/dead-action").size(), 1u);
  EXPECT_EQ(Report.named("determinism/conflict").size(), 1u);
}

TEST(SpecLint, PushdownSeededDefects) {
  spec::TransitionAction Noop = [](spec::TransitionContext &) {};
  spec::StateMachineSpec Spec;
  Spec.Name = "Pushdown fixture";
  Spec.ObservedEntity = "a broken counter";
  Spec.States = {"Start", "Error: underflow"};
  Spec.Counter = {"fixture depth", 0}; // Bound 0: unbounded

  // A reachable guarded pop with no non-error push anywhere in the spec:
  // the pop can never fire and every attempt underflows.
  Spec.Transitions.push_back(
      {"Start",
       "Start",
       {{FunctionSelector::one(FnId::MonitorExit), Direction::ReturnJavaToC}},
       Noop,
       spec::CounterOp::Pop});
  // A pop on an epsilon transition: no hook site guards against zero.
  Spec.Transitions.push_back(
      {"Start", "Start", {}, nullptr, spec::CounterOp::Pop});
  // The guarded error check (pop at zero) is not a matching push either.
  Spec.Transitions.push_back(
      {"Start",
       "Error: underflow",
       {{FunctionSelector::one(FnId::MonitorExit), Direction::CallCToJava}},
       Noop,
       spec::CounterOp::Pop});

  LintOptions Opts;
  Opts.IncludeInfo = false;
  LintReport Report = lintMachines({buildModel(Spec)}, Opts);
  EXPECT_TRUE(Report.hasErrors());
  EXPECT_EQ(Report.named("pushdown/underflow-on-epsilon").size(), 1u);
  EXPECT_EQ(Report.named("pushdown/unmatched-pop").size(), 1u);
  EXPECT_EQ(Report.named("pushdown/unbounded-counter").size(), 1u);
}

TEST(SpecLint, CounterOpWithoutDeclaredCounterIsAnError) {
  spec::TransitionAction Noop = [](spec::TransitionContext &) {};
  spec::StateMachineSpec Spec;
  Spec.Name = "Undeclared-counter fixture";
  Spec.States = {"Start"};
  Spec.Transitions.push_back(
      {"Start",
       "Start",
       {{FunctionSelector::one(FnId::MonitorEnter),
         Direction::ReturnJavaToC}},
       Noop,
       spec::CounterOp::Push});
  LintOptions Opts;
  Opts.IncludeInfo = false;
  LintReport Report = lintMachines({buildModel(Spec)}, Opts);
  EXPECT_EQ(Report.named("pushdown/undeclared-counter").size(), 1u);
  EXPECT_TRUE(Report.hasErrors());
}

TEST(SpecLint, MonotonePushAndUnusedCounterAreWarnings) {
  spec::TransitionAction Noop = [](spec::TransitionContext &) {};

  spec::StateMachineSpec GrowOnly;
  GrowOnly.Name = "Grow-only fixture";
  GrowOnly.States = {"Start"};
  GrowOnly.Counter = {"grow-only depth", 8};
  GrowOnly.Transitions.push_back(
      {"Start",
       "Start",
       {{FunctionSelector::one(FnId::PushLocalFrame),
         Direction::ReturnJavaToC}},
       Noop,
       spec::CounterOp::Push});

  spec::StateMachineSpec Unused;
  Unused.Name = "Unused-counter fixture";
  Unused.States = {"Start"};
  Unused.Counter = {"idle depth", 8};
  Unused.Transitions.push_back(
      {"Start",
       "Start",
       {{FunctionSelector::one(FnId::GetVersion), Direction::CallCToJava}},
       Noop});

  LintOptions Opts;
  Opts.IncludeInfo = false;
  LintReport Report =
      lintMachines({buildModel(GrowOnly), buildModel(Unused)}, Opts);
  EXPECT_FALSE(Report.hasErrors());
  ASSERT_EQ(Report.named("pushdown/unmatched-push").size(), 1u);
  EXPECT_EQ(Report.named("pushdown/unmatched-push")[0]->Machine,
            "Grow-only fixture");
  ASSERT_EQ(Report.named("pushdown/unused-counter").size(), 1u);
  EXPECT_EQ(Report.named("pushdown/unused-counter")[0]->Machine,
            "Unused-counter fixture");
}

TEST(SpecLint, InertMachineIsAnErrorInBothUniverses) {
  // A machine whose only selector matches nothing observes zero functions
  // at every language transition: every one of its checks is dead. The
  // report must be identical for the JNI and the Python/C universes (the
  // historical blind spot: the pass used to skip zero-match machines when
  // linting the Python models).
  spec::TransitionAction Noop = [](spec::TransitionContext &) {};
  spec::StateMachineSpec Spec;
  Spec.Name = "Inert fixture";
  Spec.States = {"Start"};
  Spec.Transitions.push_back(
      {"Start",
       "Start",
       {{FunctionSelector::matching("matches nothing",
                                    [](const jni::FnTraits &) {
                                      return false;
                                    }),
         Direction::CallCToJava}},
       Noop});

  LintOptions Opts;
  Opts.IncludeInfo = false;

  std::vector<MachineModel> Jni = {buildModel(Spec)};
  LintReport JniReport = lintMachines(Jni, Opts);
  ASSERT_EQ(JniReport.named("coverage/inert-machine").size(), 1u);
  EXPECT_EQ(JniReport.named("coverage/inert-machine")[0]->Machine,
            "Inert fixture");

  // Same defect seeded into the Python universe: hand-build the model the
  // way buildPythonModels would resolve it (selector matches nothing).
  std::vector<MachineModel> Py = buildPythonModels();
  MachineModel Inert;
  Inert.Name = "Inert fixture";
  Inert.Universe = Py.front().Universe;
  Inert.States = {"Start"};
  Inert.StartState = "Start";
  TransitionModel T;
  T.From = T.To = "Start";
  T.HasAction = true;
  TriggerModel Trigger;
  Trigger.Dir = spec::Direction::CallCToJava;
  Trigger.SelectorKind = spec::FunctionSelector::Kind::JniPredicate;
  Trigger.Description = "matches nothing";
  Trigger.Matches = FnSet(Inert.Universe->size());
  T.Triggers.push_back(Trigger);
  Inert.Transitions.push_back(T);
  Py.push_back(Inert);

  LintReport PyReport = lintMachines(Py, Opts);
  ASSERT_EQ(PyReport.named("coverage/inert-machine").size(), 1u);
  EXPECT_EQ(PyReport.named("coverage/inert-machine")[0]->Machine,
            "Inert fixture");
}

TEST(SpecLint, GuardedErrorTransitionsAreNotConflicts) {
  // Two transitions from one state on the same function where one target
  // is an error state: the guarded-check idiom, not nondeterminism.
  spec::TransitionAction Noop = [](spec::TransitionContext &) {};
  spec::StateMachineSpec Spec;
  Spec.Name = "Guarded fixture";
  Spec.States = {"Start", "Error: caught"};
  Spec.Transitions.push_back(
      {"Start",
       "Start",
       {{FunctionSelector::all("any"), Direction::CallCToJava}},
       Noop});
  Spec.Transitions.push_back(
      {"Start",
       "Error: caught",
       {{FunctionSelector::all("any"), Direction::CallCToJava}},
       Noop});
  LintOptions Opts;
  Opts.IncludeInfo = false;
  LintReport Report = lintMachines({buildModel(Spec)}, Opts);
  EXPECT_EQ(Report.named("determinism/conflict").size(), 0u);
  EXPECT_FALSE(Report.hasErrors());
}

TEST(SpecLint, ViolationTextMustTargetAnErrorState) {
  // Regression for the mutation campaign's spec-monitorbalance-error-
  // state-swapped survivor: a counter-guard transition whose declared
  // violation text flows to a non-error target used to pass every
  // analysis (reachability exempts error states, the fused plan records
  // only hook sites). The lint now makes the target label load-bearing.
  spec::TransitionAction Noop = [](spec::TransitionContext &) {};
  spec::StateMachineSpec Spec;
  Spec.Name = "Mislabeled fixture";
  Spec.States = {"Start", "Error: underflow"};
  Spec.Counter = {"fixture depth", 4};
  Spec.Transitions.push_back(
      {"Start",
       "Start",
       {{FunctionSelector::one(FnId::MonitorEnter),
         Direction::ReturnJavaToC}},
       Noop,
       spec::CounterOp::Push});
  Spec.Transitions.push_back(
      {"Start",
       "Start", // should be "Error: underflow"
       {{FunctionSelector::one(FnId::MonitorExit), Direction::CallCToJava}},
       Noop,
       spec::CounterOp::Pop});
  Spec.Transitions.back().Violation = "fixture underflow";

  LintOptions Opts;
  Opts.IncludeInfo = false;
  LintReport Report = lintMachines({buildModel(Spec)}, Opts);
  ASSERT_EQ(Report.named("transition/violation-without-error-target").size(),
            1u);
  EXPECT_TRUE(Report.hasErrors());

  // The correctly labeled spec is clean.
  Spec.Transitions.back().To = "Error: underflow";
  LintReport Fixed = lintMachines({buildModel(Spec)}, Opts);
  EXPECT_EQ(Fixed.named("transition/violation-without-error-target").size(),
            0u);
}

TEST(SpecLint, StatsMismatchIsAnError) {
  ShippedAnalysis A;
  synth::SynthesisStats Wrong = A.Stats;
  Wrong.JniPreHooks += 1;
  LintOptions Opts;
  Opts.Stats = &Wrong;
  Opts.IncludeInfo = false;
  LintReport Report = lintMachines(A.Models, Opts);
  EXPECT_GE(Report.named("consistency/stats-mismatch").size(), 1u);
  EXPECT_TRUE(Report.hasErrors());
}

//===----------------------------------------------------------------------===
// Relevance matrix vs Algorithm 1: the static derivation must agree with
// the hooks actually installed, function by function and in total.
//===----------------------------------------------------------------------===

TEST(RelevanceMatrix, AgreesWithInstalledHooksPerFunction) {
  ShippedAnalysis A;
  for (size_t I = 0; I < jni::NumJniFunctions; ++I) {
    FnId Id = static_cast<FnId>(I);
    EXPECT_EQ(A.Dispatcher.preCount(Id) > 0, A.Matrix.AnyPre.test(I))
        << jni::fnName(Id);
    EXPECT_EQ(A.Dispatcher.postCount(Id) > 0, A.Matrix.AnyPost.test(I))
        << jni::fnName(Id);
  }
}

TEST(RelevanceMatrix, RederivesSynthesisStats) {
  ShippedAnalysis A;
  EXPECT_EQ(A.Matrix.Machines.size(), A.Stats.MachineCount);
  EXPECT_EQ(A.Matrix.TotalTransitions, A.Stats.StateTransitionCount);
  EXPECT_EQ(A.Matrix.TotalPreHooks, A.Stats.JniPreHooks);
  EXPECT_EQ(A.Matrix.TotalPostHooks, A.Stats.JniPostHooks);
  EXPECT_EQ(A.Matrix.TotalNativeEntry, A.Stats.NativeEntryActions);
  EXPECT_EQ(A.Matrix.TotalNativeExit, A.Stats.NativeExitActions);
}

TEST(RelevanceMatrix, EnvStateObservesAllFunctionsPre) {
  ShippedAnalysis A;
  const MachineRelevance *Env = A.Matrix.rowFor("JNIEnv* state");
  ASSERT_NE(Env, nullptr);
  EXPECT_EQ(Env->Pre.count(), jni::NumJniFunctions);
  // Post hooks are sparse: most functions have none, so the sparse
  // dispatcher can skip the post path even in the full configuration.
  EXPECT_LT(A.Matrix.AnyPost.count(), jni::NumJniFunctions / 2);
}

//===----------------------------------------------------------------------===
// Elision is report-preserving: sparse and dense dispatch produce the
// same outcome and byte-identical report lists on every microbenchmark,
// in the full configuration and under machine ablation.
//===----------------------------------------------------------------------===

scenarios::WorldConfig jinnConfig(bool Sparse,
                                  std::vector<std::string> Machines = {}) {
  scenarios::WorldConfig Config;
  Config.Checker = scenarios::CheckerKind::Jinn;
  Config.JinnSparseDispatch = Sparse;
  Config.JinnEnabledMachines = std::move(Machines);
  return Config;
}

void expectSameReports(const std::vector<agent::JinnReport> &Dense,
                       const std::vector<agent::JinnReport> &Sparse) {
  ASSERT_EQ(Dense.size(), Sparse.size());
  for (size_t I = 0; I < Dense.size(); ++I) {
    EXPECT_EQ(Dense[I].Machine, Sparse[I].Machine) << "#" << I;
    EXPECT_EQ(Dense[I].Function, Sparse[I].Function) << "#" << I;
    EXPECT_EQ(Dense[I].Message, Sparse[I].Message) << "#" << I;
    EXPECT_EQ(Dense[I].EndOfRun, Sparse[I].EndOfRun) << "#" << I;
  }
}

void runEquivalence(std::vector<std::string> Machines) {
  for (const scenarios::MicroInfo &Info : scenarios::allMicrobenchmarks()) {
    SCOPED_TRACE(Info.ClassName);
    scenarios::ScenarioWorld Dense(jinnConfig(false, Machines));
    scenarios::runMicrobenchmark(Info.Id, Dense);
    Dense.shutdown();
    scenarios::ScenarioWorld Sparse(jinnConfig(true, Machines));
    scenarios::runMicrobenchmark(Info.Id, Sparse);
    Sparse.shutdown();
    EXPECT_EQ(scenarios::classify(Dense), scenarios::classify(Sparse));
    expectSameReports(Dense.Jinn->reporter().reports(),
                      Sparse.Jinn->reporter().reports());
  }
}

TEST(SparseDispatch, FullConfigurationReportsIdentical) {
  runEquivalence({});
}

TEST(SparseDispatch, AblatedConfigurationReportsIdentical) {
  // Only the local-reference machine: most functions now carry no hook at
  // all, so elision actually skips capture — and must change nothing.
  runEquivalence({"Local reference"});
}

TEST(SparseDispatch, RecordAndReplayStaysDeterministic) {
  // Elision must not starve the recorder: recording installs all-function
  // hooks, which defeat elision, so a sparse-dispatch record+replay run
  // still replays to the inline checker's exact report list.
  for (const scenarios::MicroInfo &Info : scenarios::allMicrobenchmarks()) {
    SCOPED_TRACE(Info.ClassName);
    scenarios::WorldConfig Config = jinnConfig(true);
    Config.JinnMode = agent::TraceMode::RecordAndReplay;
    scenarios::ScenarioWorld World(Config);
    scenarios::runMicrobenchmark(Info.Id, World);
    World.shutdown();

    const std::vector<agent::JinnReport> &Inline =
        World.Jinn->reporter().reports();
    if (Info.DetectableAtBoundary) {
      EXPECT_FALSE(Inline.empty()) << "inline checker missed the bug";
    }

    trace::Trace Recorded = World.Jinn->recorder()->collect();
    EXPECT_FALSE(Recorded.Events.empty());
    trace::ReplayResult Replayed = trace::replayTrace(Recorded, World.Vm);
    expectSameReports(Inline, Replayed.Reports);
  }
}

} // namespace
