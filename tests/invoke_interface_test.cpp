//===- tests/invoke_interface_test.cpp - JavaVM invocation interface -----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

using namespace jinn;
using namespace jinn::testing;

namespace {

struct InvokeInterface : ::testing::Test {
  VmWorld W;
  JavaVM *Vm = W.Rt.javaVm();
};

TEST_F(InvokeInterface, AttachCreatesThreadAndEnv) {
  JNIEnv *Env = nullptr;
  char Name[] = "pool-worker";
  ASSERT_EQ(Vm->functions->AttachCurrentThread(Vm, &Env, Name), JNI_OK);
  ASSERT_NE(Env, nullptr);
  EXPECT_EQ(Env->thread->name(), "pool-worker");
  EXPECT_EQ(W.Rt.currentThread(), Env->thread);
  // The attached thread can immediately use JNI.
  jstring S = Env->functions->NewStringUTF(Env, "from worker");
  EXPECT_EQ(Env->functions->GetStringUTFLength(Env, S), 11);
  EXPECT_EQ(Vm->functions->DetachCurrentThread(Vm), JNI_OK);
  EXPECT_EQ(Vm->functions->DetachCurrentThread(Vm), JNI_EDETACHED);
}

TEST_F(InvokeInterface, GetEnvReturnsTheCurrentThreadsEnv) {
  void *Out = nullptr;
  // No current thread recorded: detached.
  EXPECT_EQ(Vm->functions->GetEnv(Vm, &Out, JNI_VERSION_1_6),
            JNI_EDETACHED);
  jni::JniRuntime::ScopedCurrent Scope(W.Rt, &W.main());
  ASSERT_EQ(Vm->functions->GetEnv(Vm, &Out, JNI_VERSION_1_6), JNI_OK);
  EXPECT_EQ(Out, W.env());
  EXPECT_EQ(Vm->functions->GetEnv(Vm, &Out, JNI_VERSION_1_6 + 1),
            JNI_EVERSION);
}

// Regression: attaching an already-attached thread must be a no-op that
// hands back the existing env (the JNI spec's contract), not mint a second
// JThread for the same OS thread.
TEST_F(InvokeInterface, DoubleAttachReturnsExistingEnv) {
  JNIEnv *First = nullptr;
  char Name[] = "pool-worker";
  ASSERT_EQ(Vm->functions->AttachCurrentThread(Vm, &First, Name), JNI_OK);
  JNIEnv *Second = nullptr;
  char OtherName[] = "imposter";
  ASSERT_EQ(Vm->functions->AttachCurrentThread(Vm, &Second, OtherName),
            JNI_OK);
  EXPECT_EQ(Second, First);
  // The original attachment's identity is kept.
  EXPECT_EQ(Second->thread->name(), "pool-worker");
  // One attachment means one detach reaches the detached state.
  EXPECT_EQ(Vm->functions->DetachCurrentThread(Vm), JNI_OK);
  EXPECT_EQ(Vm->functions->DetachCurrentThread(Vm), JNI_EDETACHED);
}

// Regression: GetEnv must whitelist the known interface versions and
// answer JNI_EVERSION for anything else — not just for versions above 1.6.
TEST_F(InvokeInterface, GetEnvRejectsUnknownVersions) {
  jni::JniRuntime::ScopedCurrent Scope(W.Rt, &W.main());
  void *Out = nullptr;
  EXPECT_EQ(Vm->functions->GetEnv(Vm, &Out, JNI_VERSION_1_1), JNI_OK);
  EXPECT_EQ(Vm->functions->GetEnv(Vm, &Out, JNI_VERSION_1_2), JNI_OK);
  EXPECT_EQ(Vm->functions->GetEnv(Vm, &Out, JNI_VERSION_1_4), JNI_OK);
  EXPECT_EQ(Vm->functions->GetEnv(Vm, &Out, JNI_VERSION_1_6), JNI_OK);
  for (jint Bad : {jint(0), jint(-1), jint(0x00010003), jint(0x00030001),
                   jint(0x7fffffff)}) {
    Out = reinterpret_cast<void *>(uintptr_t(0xdead));
    EXPECT_EQ(Vm->functions->GetEnv(Vm, &Out, Bad), JNI_EVERSION);
    EXPECT_EQ(Out, nullptr); // the out-parameter is cleared on failure
  }
}

TEST_F(InvokeInterface, DestroyJavaVmShutsDown) {
  EXPECT_EQ(Vm->functions->DestroyJavaVM(Vm), JNI_OK);
  EXPECT_TRUE(W.Vm.isShutdown());
}

TEST_F(InvokeInterface, AttachedThreadLocalRefsAreIndependent) {
  JNIEnv *Worker = nullptr;
  ASSERT_EQ(Vm->functions->AttachCurrentThread(Vm, &Worker, nullptr),
            JNI_OK);
  jstring Ws = Worker->functions->NewStringUTF(Worker, "worker-local");
  EXPECT_EQ(Worker->functions->GetObjectRefType(Worker, Ws),
            JNILocalRefType);
  // Main's perspective: that local belongs to the worker.
  auto Peek = W.Vm.peekHandle(jni::handleWord(Ws), &W.main());
  EXPECT_EQ(Peek.S, jvm::Vm::PeekResult::Status::WrongThreadLive);
  Vm->functions->DetachCurrentThread(Vm);
  // Detach popped the worker's frames: the handle is dead.
  auto After = W.Vm.peekHandle(jni::handleWord(Ws), nullptr);
  EXPECT_EQ(After.S, jvm::Vm::PeekResult::Status::Stale);
}

} // namespace
