//===- tests/monitor_soak_test.cpp - Production monitoring soak tests ----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The production-monitoring contract under attach/detach churn: the
/// multi-tenant server soak runs thousands of short-lived request threads
/// while a monitor drains the streaming recorder into a bounded sink.
/// Asserts (1) deterministic sampled report merge — the same seed and
/// request schedule produce the same report list twice; (2) sampled-report
/// replay: every inline report of a sampled run is reproduced by replaying
/// the sink's retained trace; (3) bounded memory — per-thread recorder and
/// reporter buffers retire at detach, queue overflow surfaces in the
/// jinn.trace.dropped_events diagnostics counter, and RSS stays under the
/// soak ceiling; (4) the sink implementations retain, rotate, and prune as
/// configured. Meant to run clean under -fsanitize=thread (JINN_TSAN).
///
//===----------------------------------------------------------------------===//

#include "TestHarness.h"
#include "monitor/Monitor.h"
#include "monitor/TraceSink.h"
#include "support/Resource.h"
#include "trace/Replay.h"
#include "workloads/ServerSoak.h"

#include <algorithm>
#include <filesystem>
#include <tuple>

#include <unistd.h>

using namespace jinn;
using namespace jinn::scenarios;
using namespace jinn::workloads;

namespace {

/// Sanitizer builds inflate RSS by design; the absolute-memory assertions
/// are only meaningful on plain builds.
constexpr bool SanitizedBuild =
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
    true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
    true;
#else
    false;
#endif
#else
    false;
#endif

WorldConfig sampledConfig(uint32_t SampleRate) {
  WorldConfig Config;
  Config.Checker = CheckerKind::Jinn;
  Config.JinnSampleRate = SampleRate;
  // Record even at rate 1, so every configuration streams a trace for the
  // monitor to drain (sampling > 1 would force this promotion itself).
  Config.JinnMode = agent::TraceMode::RecordAndReplay;
  Config.JinnRecorder.StreamChunks = true;
  Config.JinnRecorder.MaxQueuedChunks = 4096;
  return Config;
}

SoakOptions smallSoak() {
  SoakOptions Opts;
  Opts.Workers = 2;
  Opts.Requests = 128;
  Opts.OpsPerRequest = 12;
  Opts.Tenants = 3;
  Opts.BugEveryNRequests = 4;
  return Opts;
}

std::vector<agent::JinnReport>
violations(const std::vector<agent::JinnReport> &Reports) {
  std::vector<agent::JinnReport> Out;
  for (const agent::JinnReport &R : Reports)
    if (!R.EndOfRun)
      Out.push_back(R);
  return Out;
}

/// Multiset inclusion of \p Sub in \p Super over (Machine, Function,
/// Message).
bool includedIn(const std::vector<agent::JinnReport> &Sub,
                std::vector<agent::JinnReport> Super) {
  for (const agent::JinnReport &R : Sub) {
    auto It = std::find_if(Super.begin(), Super.end(),
                           [&](const agent::JinnReport &S) {
                             return S.Machine == R.Machine &&
                                    S.Function == R.Function &&
                                    S.Message == R.Message;
                           });
    if (It == Super.end())
      return false;
    Super.erase(It);
  }
  return true;
}

} // namespace

// Same seed, same 1-worker request schedule => byte-identical sampled
// report lists across two fresh worlds. The sampling decision is keyed on
// the deterministic request-thread names, so which requests get checked is
// a pure function of the options.
TEST(MonitorSoak, DeterministicSampledReportMerge) {
  SoakOptions Opts = smallSoak();
  Opts.Workers = 1; // one worker => a deterministic request schedule
  Opts.Requests = 96;
  std::vector<agent::JinnReport> Lists[2];
  uint64_t Bugs[2] = {0, 0};
  for (int Round = 0; Round < 2; ++Round) {
    ScenarioWorld World(sampledConfig(8));
    SoakStats Stats = runServerSoak(World, Opts);
    Bugs[Round] = Stats.SeededBugs;
    Lists[Round] = violations(World.Jinn->reporter().reports());
    World.shutdown();
  }
  EXPECT_EQ(Bugs[0], Bugs[1]);
  EXPECT_GT(Bugs[0], 0u);
  ASSERT_EQ(Lists[0].size(), Lists[1].size());
  for (size_t I = 0; I < Lists[0].size(); ++I) {
    EXPECT_EQ(Lists[0][I].Machine, Lists[1][I].Machine) << I;
    EXPECT_EQ(Lists[0][I].Function, Lists[1][I].Function) << I;
    EXPECT_EQ(Lists[0][I].Message, Lists[1][I].Message) << I;
  }
}

// The replay contract of sampled mode: the trace retains the complete
// event stream of every sampled thread (and nothing else), so replaying
// the monitor's retained trace reproduces the inline report list exactly.
TEST(MonitorSoak, SampledReportsReplayFromRetainedTrace) {
  // Rate 4 over ~48 seeded bugs: the chance that no buggy request lands
  // on a sampled thread is (3/4)^48, i.e. negligible.
  ScenarioWorld World(sampledConfig(4));
  // The replay contract holds for reports whose lifecycle the retention
  // window covers; size the ring to hold the whole run so every inline
  // report is in scope no matter how many ticks elapse.
  monitor::RingSink::Options SinkOpts;
  SinkOpts.MaxSegments = 1u << 20;
  SinkOpts.MaxBytes = 1ull << 32;
  monitor::RingSink Sink(SinkOpts);
  monitor::JinnMonitor Monitor(World.Vm, *World.Jinn, Sink,
                               {/*IntervalMs=*/5});
  Monitor.start();
  SoakOptions Opts = smallSoak();
  Opts.Requests = 192;
  SoakStats Stats = runServerSoak(World, Opts);
  Monitor.finish();
  EXPECT_GT(Stats.SeededBugs, 0u);

  std::vector<agent::JinnReport> Inline =
      violations(World.Jinn->reporter().reports());
  World.shutdown();

  trace::Trace Retained = Sink.retained();
  EXPECT_GT(Retained.Events.size(), 0u);
  trace::ReplayResult Replayed = trace::replayTrace(Retained, World.Vm);
  std::vector<agent::JinnReport> Offline = violations(Replayed.Reports);

  // Replay reproduces the inline reports exactly — same multiset in both
  // directions (order may differ: inline merges per-thread buffers,
  // replay walks the global time order).
  EXPECT_GT(Inline.size(), 0u);
  EXPECT_EQ(Inline.size(), Offline.size());
  EXPECT_TRUE(includedIn(Inline, Offline))
      << Inline.size() << " inline vs " << Offline.size() << " replayed";
  EXPECT_TRUE(includedIn(Offline, Inline));

  // The monitor aggregated the sampled threads' crossings.
  monitor::MonitorSnapshot Snap = Monitor.snapshot();
  EXPECT_GT(Snap.Crossings, 0u);
  EXPECT_GT(Snap.LatencySamples, 0u);
  EXPECT_GE(Snap.Reports, Inline.size());
}

// Attach/detach churn must not accumulate per-thread state: recorder and
// reporter buffers retire at DetachCurrentThread and their storage is
// recycled, so after thousands of request threads only the still-attached
// threads (main) hold buffers.
TEST(MonitorSoak, DetachRetiresPerThreadBuffers) {
  ScenarioWorld World(sampledConfig(16));
  monitor::RingSink Sink;
  monitor::JinnMonitor Monitor(World.Vm, *World.Jinn, Sink,
                               {/*IntervalMs=*/5});
  Monitor.start();
  SoakOptions Opts = smallSoak();
  Opts.Requests = 256;
  runServerSoak(World, Opts);
  Monitor.finish();

  // Request threads are detached; only main (and no retired ghosts) may
  // still own a recorder or reporter buffer.
  EXPECT_LE(World.Jinn->recorder()->liveThreadBuffers(), 1u);
  EXPECT_LE(World.Jinn->reporter().liveThreadBuffers(), 1u);
  World.shutdown();
}

// Queue overflow in streaming mode (a monitor that never drains) must be
// bounded and surface in the jinn.trace.dropped_events counter rather
// than growing without limit or passing silently.
TEST(MonitorSoak, DroppedEventsSurfaceInDiagnostics) {
  WorldConfig Config = sampledConfig(1); // record every request thread
  Config.JinnRecorder.MaxQueuedChunks = 4; // tiny queue, no drainer
  ScenarioWorld World(Config);
  SoakOptions Opts = smallSoak();
  Opts.Requests = 96;
  runServerSoak(World, Opts);

  trace::TraceRecorder *Recorder = World.Jinn->recorder();
  EXPECT_GT(Recorder->droppedEvents(), 0u);
  EXPECT_EQ(World.Vm.diags().counter("jinn.trace.dropped_events"),
            Recorder->droppedEvents());
  // The drained view reports the drop delta it observed.
  trace::Trace Segment = Recorder->drainSealed();
  EXPECT_GT(Segment.Head.DroppedEvents, 0u);
  World.shutdown();
}

// The soak must hold RSS under the production ceiling: bounded recorder
// queue, bounded sink, retired buffers. (Absolute RSS is only meaningful
// on non-sanitized builds.)
TEST(MonitorSoak, RssStaysUnderCeiling) {
  if (SanitizedBuild)
    GTEST_SKIP() << "RSS ceiling not meaningful under sanitizers";
  if (currentRssBytes() == 0)
    GTEST_SKIP() << "RSS probe unavailable on this platform";
  constexpr uint64_t CeilingBytes = 768ull << 20;
  ScenarioWorld World(sampledConfig(16));
  monitor::RingSink::Options SinkOpts;
  SinkOpts.MaxSegments = 64;
  SinkOpts.MaxBytes = 64ull << 20;
  monitor::RingSink Sink(SinkOpts);
  monitor::MonitorOptions MonOpts;
  MonOpts.IntervalMs = 5;
  MonOpts.RssCeilingBytes = CeilingBytes;
  monitor::JinnMonitor Monitor(World.Vm, *World.Jinn, Sink, MonOpts);
  Monitor.start();
  SoakOptions Opts = smallSoak();
  Opts.Requests = 512;
  SoakStats Stats = runServerSoak(World, Opts);
  Monitor.finish();
  monitor::MonitorSnapshot Snap = Monitor.snapshot();
  EXPECT_LT(Snap.PeakRssBytes, CeilingBytes);
  EXPECT_LT(Stats.PeakRssBytes, CeilingBytes);
  World.shutdown();
}

// RingSink honors its segment-count bound, drop-oldest.
TEST(MonitorSoak, RingSinkEvictsOldest) {
  monitor::RingSink::Options Opts;
  Opts.MaxSegments = 3;
  monitor::RingSink Sink(Opts);
  for (uint64_t I = 0; I < 6; ++I) {
    trace::Trace Seg;
    Seg.Events.resize(4);
    for (size_t E = 0; E < Seg.Events.size(); ++E) {
      Seg.Events[E].TimeNs = I * 100 + E;
      Seg.Events[E].ThreadId = 1;
      Seg.Events[E].Seq = I * 100 + E;
      Seg.Events[E].Kind = trace::EventKind::GcEpoch;
    }
    Sink.append(std::move(Seg));
  }
  monitor::SinkStats Stats = Sink.stats();
  EXPECT_EQ(Stats.AppendedSegments, 6u);
  EXPECT_EQ(Stats.RetainedSegments, 3u);
  EXPECT_EQ(Stats.DroppedSegments, 3u);
  EXPECT_EQ(Stats.DroppedEvents, 12u);
  trace::Trace Merged = Sink.retained();
  ASSERT_EQ(Merged.Events.size(), 12u);
  // Oldest-first global order with fresh epochs.
  for (size_t E = 0; E + 1 < Merged.Events.size(); ++E) {
    EXPECT_LE(Merged.Events[E].TimeNs, Merged.Events[E + 1].TimeNs);
    EXPECT_EQ(Merged.Events[E].Epoch, E);
  }
  EXPECT_EQ(Merged.Events.front().TimeNs, 300u); // segments 0-2 evicted
}

// RotatingFileSink writes segment files, prunes past MaxSegments, and
// retained() reads the survivors (plus pending) back as one trace.
TEST(MonitorSoak, RotatingFileSinkRotatesAndPrunes) {
  // Unique per process so concurrent runs of the same binary don't race
  // on each other's segment files.
  const std::string Dir =
      "monitor_soak_test_segments." + std::to_string(::getpid());
  std::filesystem::remove_all(Dir);
  monitor::RotatingFileSink::Options Opts;
  Opts.Directory = Dir;
  Opts.RotateBytes = sizeof(trace::TraceEvent) * 8; // rotate every ~8 events
  Opts.MaxSegments = 2;
  monitor::RotatingFileSink Sink(Opts);
  for (uint64_t I = 0; I < 5; ++I) {
    trace::Trace Seg;
    Seg.Events.resize(8);
    for (size_t E = 0; E < Seg.Events.size(); ++E) {
      Seg.Events[E].TimeNs = I * 100 + E;
      Seg.Events[E].ThreadId = 1;
      Seg.Events[E].Seq = I * 100 + E;
      Seg.Events[E].Kind = trace::EventKind::GcEpoch;
    }
    Sink.append(std::move(Seg));
  }
  EXPECT_EQ(Sink.lastError(), "");
  EXPECT_LE(Sink.segmentFiles().size(), 2u);
  monitor::SinkStats Stats = Sink.stats();
  EXPECT_EQ(Stats.AppendedEvents, 40u);
  EXPECT_GT(Stats.DroppedSegments, 0u);
  trace::Trace Merged = Sink.retained();
  EXPECT_EQ(Merged.Events.size(), Stats.RetainedEvents);
  EXPECT_LE(Merged.Events.size(), 16u + 8u); // 2 files + <=1 pending rotation
  for (size_t E = 0; E + 1 < Merged.Events.size(); ++E)
    EXPECT_LE(Merged.Events[E].TimeNs, Merged.Events[E + 1].TimeNs);
  std::filesystem::remove_all(Dir);
}

// The pure sampling predicate is deterministic, respects rate 1, and the
// request-name scheme actually yields a nonempty strict subset at N=16.
TEST(MonitorSoak, SamplingPredicateIsDeterministicAndNontrivial) {
  ScenarioWorld World(sampledConfig(16));
  agent::JinnAgent &Jinn = *World.Jinn;
  unsigned Sampled = 0;
  const unsigned Names = 512;
  for (unsigned K = 0; K < Names; ++K) {
    std::string Name = "req-0-" + std::to_string(K);
    bool A = Jinn.sampledThread(100 + K, Name);
    bool B = Jinn.sampledThread(100 + K, Name);
    EXPECT_EQ(A, B) << Name;
    Sampled += A ? 1 : 0;
  }
  // ~1/16 of 512 = 32 expected; accept a wide band but not the extremes.
  EXPECT_GT(Sampled, 8u);
  EXPECT_LT(Sampled, 128u);

  ScenarioWorld Full(sampledConfig(1));
  EXPECT_TRUE(Full.Jinn->sampledThread(7, "anything"));
  World.shutdown();
  Full.shutdown();
}
