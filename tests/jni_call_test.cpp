//===- tests/jni_call_test.cpp - Call-family unit tests -------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the Call<T>Method{,V,A} families, CallStatic, CallNonvirtual,
/// and NewObject across all form variants, including the variadic ->
/// va_list -> jvalue-array delegation chain.
///
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

using namespace jinn;
using namespace jinn::testing;

namespace {

struct JniCall : ::testing::Test {
  VmWorld W;
  JNIEnv *Env = W.env();
  const JNINativeInterface_ *Fns = W.env()->functions;
  jclass Calc = nullptr;
  jobject Instance = nullptr;

  void SetUp() override {
    jvm::ClassDef Def;
    Def.Name = "t/Calc";
    Def.field("bias", "I");
    Def.method("addBias", "(I)I",
               [](jvm::Vm &V, jvm::JThread &, const jvm::Value &Self,
                  const std::vector<jvm::Value> &Args) {
                 jvm::HeapObject *HO = V.heap().resolve(Self.Obj);
                 return jvm::Value::makeInt(static_cast<int32_t>(
                     Args[0].I + HO->Fields[0].I));
               });
    Def.method("twice", "(D)D",
               [](jvm::Vm &, jvm::JThread &, const jvm::Value &,
                  const std::vector<jvm::Value> &Args) {
                 return jvm::Value::makeDouble(Args[0].D * 2);
               },
               /*IsStatic=*/true);
    Def.method("concat",
               "(Ljava/lang/String;Ljava/lang/String;)Ljava/lang/String;",
               [](jvm::Vm &V, jvm::JThread &, const jvm::Value &,
                  const std::vector<jvm::Value> &Args) {
                 return jvm::Value::makeRef(V.newString(
                     V.utf8Of(Args[0].Obj) + V.utf8Of(Args[1].Obj)));
               },
               /*IsStatic=*/true);
    Def.method("<init>", "(I)V",
               [](jvm::Vm &V, jvm::JThread &, const jvm::Value &Self,
                  const std::vector<jvm::Value> &Args) {
                 V.heap().resolve(Self.Obj)->Fields[0] =
                     jvm::Value::makeInt(static_cast<int32_t>(Args[0].I));
                 return jvm::Value::makeVoid();
               });
    Def.method("id", "()I",
               [](jvm::Vm &, jvm::JThread &, const jvm::Value &,
                  const std::vector<jvm::Value> &) {
                 return jvm::Value::makeInt(1);
               });
    W.define(Def);

    jvm::ClassDef Sub;
    Sub.Name = "t/Calc2";
    Sub.Super = "t/Calc";
    Sub.method("id", "()I",
               [](jvm::Vm &, jvm::JThread &, const jvm::Value &,
                  const std::vector<jvm::Value> &) {
                 return jvm::Value::makeInt(2);
               });
    W.define(Sub);

    Calc = Fns->FindClass(Env, "t/Calc");
    jmethodID Ctor = Fns->GetMethodID(Env, Calc, "<init>", "(I)V");
    Instance = Fns->NewObject(Env, Calc, Ctor, 10);
    ASSERT_NE(Instance, nullptr);
  }
};

TEST_F(JniCall, NewObjectRunsTheConstructor) {
  jfieldID Bias = Fns->GetFieldID(Env, Calc, "bias", "I");
  EXPECT_EQ(Fns->GetIntField(Env, Instance, Bias), 10);
}

TEST_F(JniCall, CallIntMethodAllThreeForms) {
  jmethodID Add = Fns->GetMethodID(Env, Calc, "addBias", "(I)I");
  // A form.
  jvalue Args[1];
  Args[0].i = 5;
  EXPECT_EQ(Fns->CallIntMethodA(Env, Instance, Add, Args), 15);
  // Variadic form (delegates through V to A).
  EXPECT_EQ(Fns->CallIntMethod(Env, Instance, Add, 7), 17);
}

TEST_F(JniCall, CallStaticDoubleMethod) {
  jmethodID Twice = Fns->GetStaticMethodID(Env, Calc, "twice", "(D)D");
  jvalue Args[1];
  Args[0].d = 1.5;
  EXPECT_DOUBLE_EQ(Fns->CallStaticDoubleMethodA(Env, Calc, Twice, Args), 3.0);
  EXPECT_DOUBLE_EQ(Fns->CallStaticDoubleMethod(Env, Calc, Twice, 2.25), 4.5);
}

TEST_F(JniCall, CallStaticObjectMethodWithRefArgs) {
  jmethodID Concat = Fns->GetStaticMethodID(
      Env, Calc, "concat",
      "(Ljava/lang/String;Ljava/lang/String;)Ljava/lang/String;");
  jstring A = Fns->NewStringUTF(Env, "foo");
  jstring B = Fns->NewStringUTF(Env, "bar");
  jvalue Args[2];
  Args[0].l = A;
  Args[1].l = B;
  jobject Out = Fns->CallStaticObjectMethodA(Env, Calc, Concat, Args);
  ASSERT_NE(Out, nullptr);
  EXPECT_EQ(W.Vm.utf8Of(W.Rt.deref(Env, Out)), "foobar");
}

TEST_F(JniCall, VirtualDispatchAndCallNonvirtual) {
  jclass Calc2 = Fns->FindClass(Env, "t/Calc2");
  jmethodID Ctor = Fns->GetMethodID(Env, Calc, "<init>", "(I)V");
  jobject Sub = Fns->NewObject(Env, Calc2, Ctor, 0);
  jmethodID BaseId = Fns->GetMethodID(Env, Calc, "id", "()I");
  // Virtual: the override runs.
  EXPECT_EQ(Fns->CallIntMethodA(Env, Sub, BaseId, nullptr), 2);
  // Nonvirtual: the base implementation runs.
  EXPECT_EQ(Fns->CallNonvirtualIntMethodA(Env, Sub, Calc, BaseId, nullptr),
            1);
  EXPECT_EQ(Fns->CallNonvirtualIntMethod(Env, Sub, Calc, BaseId), 1);
}

TEST_F(JniCall, NullReceiverThrowsNpe) {
  jmethodID Add = Fns->GetMethodID(Env, Calc, "addBias", "(I)I");
  jvalue Args[1];
  Args[0].i = 1;
  EXPECT_EQ(Fns->CallIntMethodA(Env, nullptr, Add, Args), 0);
  EXPECT_EQ(W.pendingClass(), "java/lang/NullPointerException");
}

TEST_F(JniCall, StaticInstanceMismatchIsUndefined) {
  jmethodID Twice = Fns->GetStaticMethodID(Env, Calc, "twice", "(D)D");
  // Calling a static method through the instance-call family: row 2.
  Fns->CallDoubleMethodA(Env, Instance, Twice, nullptr);
  EXPECT_TRUE(W.Vm.diags().has(IncidentKind::UndefinedState));
}

TEST_F(JniCall, InvalidMethodIdIsUndefined) {
  int Stack = 0;
  Fns->CallIntMethodA(Env, Instance,
                      reinterpret_cast<jmethodID>(&Stack), nullptr);
  EXPECT_TRUE(W.Vm.diags().has(IncidentKind::UndefinedState));
}

TEST_F(JniCall, ExceptionInCalleePropagates) {
  jvm::ClassDef Def;
  Def.Name = "t/Boom";
  Def.method("boom", "()V",
             [](jvm::Vm &V, jvm::JThread &T, const jvm::Value &,
                const std::vector<jvm::Value> &) {
               V.throwNew(T, "java/lang/IllegalStateException", "from Java");
               return jvm::Value::makeVoid();
             },
             /*IsStatic=*/true);
  W.define(Def);
  jclass Boom = Fns->FindClass(Env, "t/Boom");
  jmethodID M = Fns->GetStaticMethodID(Env, Boom, "boom", "()V");
  Fns->CallStaticVoidMethodA(Env, Boom, M, nullptr);
  EXPECT_EQ(W.pendingClass(), "java/lang/IllegalStateException");
}

TEST_F(JniCall, BooleanCharShortLongFloatForms) {
  jvm::ClassDef Def;
  Def.Name = "t/Kinds";
  Def.method("flip", "(Z)Z",
             [](jvm::Vm &, jvm::JThread &, const jvm::Value &,
                const std::vector<jvm::Value> &Args) {
               return jvm::Value::makeBoolean(Args[0].I == 0);
             },
             true);
  Def.method("up", "(C)C",
             [](jvm::Vm &, jvm::JThread &, const jvm::Value &,
                const std::vector<jvm::Value> &Args) {
               return jvm::Value::makeChar(
                   static_cast<uint16_t>(Args[0].I - 32));
             },
             true);
  Def.method("halve", "(S)S",
             [](jvm::Vm &, jvm::JThread &, const jvm::Value &,
                const std::vector<jvm::Value> &Args) {
               return jvm::Value::makeShort(
                   static_cast<int16_t>(Args[0].I / 2));
             },
             true);
  Def.method("sq", "(J)J",
             [](jvm::Vm &, jvm::JThread &, const jvm::Value &,
                const std::vector<jvm::Value> &Args) {
               return jvm::Value::makeLong(Args[0].I * Args[0].I);
             },
             true);
  Def.method("neg", "(F)F",
             [](jvm::Vm &, jvm::JThread &, const jvm::Value &,
                const std::vector<jvm::Value> &Args) {
               return jvm::Value::makeFloat(
                   -static_cast<float>(Args[0].D));
             },
             true);
  W.define(Def);
  jclass K = Fns->FindClass(Env, "t/Kinds");
  EXPECT_EQ(Fns->CallStaticBooleanMethod(
                Env, K, Fns->GetStaticMethodID(Env, K, "flip", "(Z)Z"),
                JNI_FALSE),
            JNI_TRUE);
  EXPECT_EQ(Fns->CallStaticCharMethod(
                Env, K, Fns->GetStaticMethodID(Env, K, "up", "(C)C"), 'a'),
            static_cast<jchar>('A'));
  EXPECT_EQ(Fns->CallStaticShortMethod(
                Env, K, Fns->GetStaticMethodID(Env, K, "halve", "(S)S"), 40),
            20);
  EXPECT_EQ(Fns->CallStaticLongMethod(
                Env, K, Fns->GetStaticMethodID(Env, K, "sq", "(J)J"),
                static_cast<jlong>(9)),
            81);
  EXPECT_FLOAT_EQ(
      Fns->CallStaticFloatMethod(
          Env, K, Fns->GetStaticMethodID(Env, K, "neg", "(F)F"), 2.5),
      -2.5f);
}

TEST_F(JniCall, GetMethodIdStaticnessSeparation) {
  EXPECT_EQ(Fns->GetMethodID(Env, Calc, "twice", "(D)D"), nullptr);
  EXPECT_EQ(W.pendingClass(), "java/lang/NoSuchMethodError");
  W.main().Pending = jvm::ObjectId();
  EXPECT_EQ(Fns->GetStaticMethodID(Env, Calc, "addBias", "(I)I"), nullptr);
  EXPECT_EQ(W.pendingClass(), "java/lang/NoSuchMethodError");
}

} // namespace
