//===- tests/concurrency_test.cpp - Multi-threaded JNI/VM stress tests ---===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// True multi-threaded execution: several OS threads attach through the
/// invocation interface and hammer local/global references, string and
/// array allocation, monitors, and the collector concurrently — with and
/// without the Jinn agent interposed. The suite is meant to run clean
/// under -fsanitize=thread (configure with -DJINN_TSAN=ON).
///
//===----------------------------------------------------------------------===//

#include "TestHarness.h"
#include "scenarios/Scenarios.h"
#include "workloads/Workloads.h"

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

using namespace jinn;
using namespace jinn::testing;

namespace {

constexpr int NumThreads = 4;

/// Spin barrier so worker phases line up without depending on <barrier>.
struct SpinBarrier {
  explicit SpinBarrier(int N) : Target(N) {}
  void arriveAndWait() {
    int Gen = Generation.load(std::memory_order_acquire);
    if (Arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == Target) {
      Arrived.store(0, std::memory_order_relaxed);
      Generation.fetch_add(1, std::memory_order_acq_rel);
      return;
    }
    while (Generation.load(std::memory_order_acquire) == Gen)
      std::this_thread::yield();
  }
  const int Target;
  std::atomic<int> Arrived{0};
  std::atomic<int> Generation{0};
};

TEST(Concurrency, LocalAndGlobalRefsAcrossThreads) {
  VmWorld W;
  JavaVM *Jvm = W.Rt.javaVm();
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      JNIEnv *Env = nullptr;
      if (Jvm->functions->AttachCurrentThread(Jvm, &Env, nullptr) != JNI_OK) {
        ++Failures;
        return;
      }
      const JNINativeInterface_ *Fns = Env->functions;
      for (int I = 0; I < 200; ++I) {
        jstring S = Fns->NewStringUTF(Env, "concurrent");
        if (Fns->GetStringUTFLength(Env, S) != 10)
          ++Failures;
        jobject G = Fns->NewGlobalRef(Env, S);
        Fns->DeleteLocalRef(Env, S);
        if (Fns->GetStringUTFLength(Env, static_cast<jstring>(G)) != 10)
          ++Failures;
        if (I % 16 == 0) {
          if (Fns->PushLocalFrame(Env, 8) == JNI_OK) {
            jstring Inner = Fns->NewStringUTF(Env, "frame-local");
            if (Fns->GetStringUTFLength(Env, Inner) != 11)
              ++Failures;
            Fns->PopLocalFrame(Env, nullptr);
          }
        }
        Fns->DeleteGlobalRef(Env, G);
      }
      Jvm->functions->DetachCurrentThread(Jvm);
    });
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_FALSE(W.main().Poisoned);
}

TEST(Concurrency, AllocationSurvivesAutoGcOnAllThreads) {
  jvm::VmOptions Options;
  Options.AutoGcPeriod = 32; // collect aggressively while workers allocate
  VmWorld W(Options);
  JavaVM *Jvm = W.Rt.javaVm();
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      JNIEnv *Env = nullptr;
      if (Jvm->functions->AttachCurrentThread(Jvm, &Env, nullptr) != JNI_OK) {
        ++Failures;
        return;
      }
      const JNINativeInterface_ *Fns = Env->functions;
      for (int I = 0; I < 150; ++I) {
        jintArray Arr = Fns->NewIntArray(Env, 8);
        jint Out[8] = {0};
        jint In[8] = {T, I, T + I, T * I, 1, 2, 3, 4};
        Fns->SetIntArrayRegion(Env, Arr, 0, 8, In);
        jstring S = Fns->NewStringUTF(Env, "gc-survivor");
        Fns->GetIntArrayRegion(Env, Arr, 0, 8, Out);
        if (std::memcmp(In, Out, sizeof In) != 0)
          ++Failures;
        if (Fns->GetStringUTFLength(Env, S) != 11)
          ++Failures;
        Fns->DeleteLocalRef(Env, S);
        Fns->DeleteLocalRef(Env, Arr);
      }
      Jvm->functions->DetachCurrentThread(Jvm);
    });
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_GT(W.Vm.heap().stats().GcCount, 0u);
}

TEST(Concurrency, ExplicitGcRacesMutators) {
  VmWorld W;
  JavaVM *Jvm = W.Rt.javaVm();
  std::atomic<int> Failures{0};
  std::atomic<bool> Done{false};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      JNIEnv *Env = nullptr;
      if (Jvm->functions->AttachCurrentThread(Jvm, &Env, nullptr) != JNI_OK) {
        ++Failures;
        return;
      }
      const JNINativeInterface_ *Fns = Env->functions;
      for (int I = 0; I < 120; ++I) {
        jstring S = Fns->NewStringUTF(Env, "raced");
        if (Fns->GetStringUTFLength(Env, S) != 5)
          ++Failures;
        Fns->DeleteLocalRef(Env, S);
      }
      Jvm->functions->DetachCurrentThread(Jvm);
    });
  std::thread Collector([&] {
    while (!Done.load(std::memory_order_acquire))
      W.Vm.gc(); // stop-the-world from an unattached host thread
  });
  for (std::thread &Th : Threads)
    Th.join();
  Done.store(true, std::memory_order_release);
  Collector.join();
  EXPECT_EQ(Failures.load(), 0);
}

TEST(Concurrency, MonitorsBalanceAcrossThreads) {
  VmWorld W;
  JavaVM *Jvm = W.Rt.javaVm();
  // A shared object all workers contend on, published as a global ref.
  JNIEnv *Main = W.env();
  jstring Local = Main->functions->NewStringUTF(Main, "shared-lock");
  jobject Shared = Main->functions->NewGlobalRef(Main, Local);
  Main->functions->DeleteLocalRef(Main, Local);

  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      JNIEnv *Env = nullptr;
      if (Jvm->functions->AttachCurrentThread(Jvm, &Env, nullptr) != JNI_OK) {
        ++Failures;
        return;
      }
      const JNINativeInterface_ *Fns = Env->functions;
      for (int I = 0; I < 100; ++I) {
        // The simulator cannot block a logical thread, so a contended
        // MonitorEnter surfaces as JNI_ERR (with no pending exception);
        // retry until the owner releases. A bounded spin keeps a genuine
        // failure from hanging the test.
        jint Rc = JNI_ERR;
        for (int Spin = 0; Spin < 100000; ++Spin) {
          Rc = Fns->MonitorEnter(Env, Shared);
          if (Rc == JNI_OK || Fns->ExceptionCheck(Env))
            break;
          std::this_thread::yield();
        }
        if (Rc != JNI_OK) {
          ++Failures;
          continue;
        }
        if (Fns->MonitorExit(Env, Shared) != JNI_OK)
          ++Failures;
      }
      Jvm->functions->DetachCurrentThread(Jvm);
    });
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(W.Vm.heldMonitorCount(), 0u);
  Main->functions->DeleteGlobalRef(Main, Shared);
}

TEST(Concurrency, JinnStaysSilentOnCorrectConcurrentUsage) {
  scenarios::WorldConfig Config;
  Config.Checker = scenarios::CheckerKind::Jinn;
  scenarios::ScenarioWorld World(Config);
  workloads::prepareWorkloadWorld(World);
  const workloads::WorkloadInfo &Info = *workloads::workloadByName("db");
  workloads::WorkloadRun Run =
      workloads::runWorkloadConcurrent(Info, World, 64, NumThreads);
  EXPECT_GT(Run.JniCalls, 0u);
  ASSERT_NE(World.Jinn, nullptr);
  EXPECT_TRUE(World.Jinn->reporter().reports().empty());
}

TEST(Concurrency, NoViolationIsLostUnderContention) {
  JinnWorld W;
  JavaVM *Jvm = W.Rt.javaVm();
  SpinBarrier Barrier(NumThreads);
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      JNIEnv *Env = nullptr;
      if (Jvm->functions->AttachCurrentThread(Jvm, &Env, nullptr) != JNI_OK) {
        ++Failures;
        return;
      }
      const JNINativeInterface_ *Fns = Env->functions;
      jstring S = Fns->NewStringUTF(Env, "doomed");
      jobject G = Fns->NewGlobalRef(Env, S);
      Fns->DeleteLocalRef(Env, S);
      Fns->DeleteGlobalRef(Env, G);
      // All first deletes are done before any second delete runs, so slot
      // recycling cannot re-adopt a word another worker is double-freeing.
      Barrier.arriveAndWait();
      Fns->DeleteGlobalRef(Env, G); // double free: one violation per thread
      Fns->ExceptionClear(Env);
      Jvm->functions->DetachCurrentThread(Jvm);
    });
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(W.Jinn.reporter().countFor("Global or weak global reference"),
            static_cast<size_t>(NumThreads));
}

} // namespace
