//===- tests/fuzz_corpus_test.cpp - Checked-in reproducer replay ---------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every reproducer committed under fuzz/corpus/ replays with its
/// recorded verdict: clean entries stay report-free, bug entries produce
/// exactly the spec-predicted report, and the full oracle stack agrees.
/// The .jfz format round-trips, and expectation drift (a corpus file
/// whose recorded report no longer matches the op table) is a load
/// error, never a silently rewritten test.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/Executor.h"
#include "fuzz/PyFuzz.h"

#include <gtest/gtest.h>

using namespace jinn;
using namespace jinn::fuzz;

namespace {

const char *corpusDir() { return JINN_SOURCE_DIR "/fuzz/corpus"; }

std::vector<CorpusEntry> loadAll() {
  std::vector<std::string> Errors;
  std::vector<CorpusEntry> Entries = loadCorpusDir(corpusDir(), Errors);
  for (const std::string &Error : Errors)
    ADD_FAILURE() << Error;
  return Entries;
}

TEST(FuzzCorpus, LoadsWithoutErrors) {
  std::vector<CorpusEntry> Entries = loadAll();
  EXPECT_GE(Entries.size(), 6u);
}

TEST(FuzzCorpus, EveryEntryReplaysWithItsRecordedVerdict) {
  for (const CorpusEntry &Entry : loadAll()) {
    if (Entry.Seq.Domain == "py") {
      PyExecResult R = runPySequence(Entry.Seq);
      for (const std::string &Failure : R.Failures)
        ADD_FAILURE() << Entry.Name << ": " << Failure;
      EXPECT_TRUE(R.Pass) << Entry.Name;
      continue;
    }
    ExecResult R = runJniSequence(Entry.Seq);
    for (const std::string &Failure : R.Failures)
      ADD_FAILURE() << Entry.Name << ": " << Failure;
    EXPECT_TRUE(R.Pass) << Entry.Name;
    if (Entry.ExpectClean) {
      EXPECT_TRUE(R.Inline.empty()) << Entry.Name;
    } else {
      ASSERT_EQ(R.Inline.size(), 1u) << Entry.Name;
      EXPECT_EQ(R.Inline.front().Machine, Entry.Expect.Machine) << Entry.Name;
    }
  }
}

TEST(FuzzCorpus, SerializationRoundTrips) {
  Sequence Seq;
  Seq.OpNames = {"slot_string", "global_new", "global_delete",
                 "bug_global_dangling"};
  std::string Text = serializeSequence(Seq);
  CorpusEntry Entry;
  std::string Error;
  ASSERT_TRUE(parseCorpusText(Text, Entry, Error)) << Error;
  EXPECT_EQ(Entry.Seq.OpNames, Seq.OpNames);
  EXPECT_FALSE(Entry.ExpectClean);
  EXPECT_EQ(Entry.Expect.Machine, "Global or weak global reference");
  EXPECT_EQ(serializeSequence(Entry.Seq), Text);
}

TEST(FuzzCorpus, DriftedExpectationIsALoadError) {
  std::string Drifted = "domain jni\n"
                        "op slot_string\n"
                        "op global_new\n"
                        "op global_delete\n"
                        "op bug_global_dangling\n"
                        "expect-machine Monitor\n"
                        "expect-message something else entirely\n";
  CorpusEntry Entry;
  std::string Error;
  EXPECT_FALSE(parseCorpusText(Drifted, Entry, Error));
  EXPECT_NE(Error.find("drifted"), std::string::npos) << Error;
}

TEST(FuzzCorpus, UnknownOpIsALoadError) {
  CorpusEntry Entry;
  std::string Error;
  EXPECT_FALSE(parseCorpusText(
      "domain jni\nop not_a_real_op\nexpect-clean\n", Entry, Error));
  EXPECT_NE(Error.find("unknown op"), std::string::npos) << Error;
}

} // namespace
