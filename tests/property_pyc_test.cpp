//===- tests/property_pyc_test.cpp - Python/C refcount fuzz properties ---===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for the Python/C checker: random *protocol-correct*
/// extension code never triggers it and never leaks; random injected
/// use-after-release always triggers it; and the interpreter's refcount
/// accounting balances exactly.
///
//===----------------------------------------------------------------------===//

#include "fuzz/PyFuzz.h"
#include "pyjinn/PyChecker.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace jinn;
using namespace jinn::pyc;
using namespace jinn::pyjinn;

namespace {

/// Random correct extension: build containers, borrow items while the
/// owner is alive, release everything.
void runLegalExtension(PyInterp &I, SplitMix64 &Rng, int Steps) {
  const PyApi *Api = activePyApi(I);
  std::vector<PyObject *> Owned; // we hold one reference each
  for (int Step = 0; Step < Steps; ++Step) {
    switch (Rng.nextBelow(5)) {
    case 0:
      Owned.push_back(Api->PyInt_FromLong(
          &I, static_cast<long>(Rng.nextBelow(1000))));
      break;
    case 1:
      Owned.push_back(Api->PyString_FromString(&I, "spam"));
      break;
    case 2: { // build a list and borrow from it while it lives
      PyObject *List = Api->Py_BuildValue(&I, "[sss]", "a", "b", "c");
      PyObject *Item =
          Api->PyList_GetItem(&I, List, Rng.nextBelow(3));
      EXPECT_NE(Api->PyString_AsString(&I, Item), nullptr);
      Owned.push_back(List);
      break;
    }
    case 3: { // append with proper give-back
      if (Owned.empty())
        break;
      PyObject *List = Api->PyList_New(&I, 0);
      PyObject *Item = Api->PyInt_FromLong(&I, 7);
      Api->PyList_Append(&I, List, Item);
      Api->Py_DecRef(&I, Item);
      Owned.push_back(List);
      break;
    }
    default: // release something we own
      if (!Owned.empty()) {
        size_t Pick = Rng.nextBelow(Owned.size());
        Api->Py_DecRef(&I, Owned[Pick]);
        Owned.erase(Owned.begin() + Pick);
      }
      break;
    }
  }
  for (PyObject *Obj : Owned)
    Api->Py_DecRef(&I, Obj);
}

TEST(PycProperty, LegalExtensionsNeverTriggerTheChecker) {
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    PyInterp I;
    PyChecker Checker(I);
    SplitMix64 Rng(Seed);
    runLegalExtension(I, Rng, 200);
    EXPECT_TRUE(Checker.violations().empty()) << "seed " << Seed;
    EXPECT_EQ(Checker.leakedObjects(), 0u) << "seed " << Seed;
    EXPECT_EQ(I.liveCount(), 0u) << "seed " << Seed;
  }
}

TEST(PycProperty, InjectedUseAfterReleaseAlwaysTriggers) {
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    PyInterp I;
    PyChecker Checker(I);
    const PyApi *Api = activePyApi(I);
    SplitMix64 Rng(Seed * 3);
    runLegalExtension(I, Rng, static_cast<int>(Rng.nextBelow(100)));
    ASSERT_TRUE(Checker.violations().empty());

    PyObject *List = Api->Py_BuildValue(&I, "[ss]", "x", "y");
    PyObject *Borrowed = Api->PyList_GetItem(&I, List, 0);
    Api->Py_DecRef(&I, List); // the borrow dies with its owner
    Api->PyString_AsString(&I, Borrowed);
    EXPECT_EQ(Checker.countFor("Reference ownership"), 1u)
        << "seed " << Seed;
  }
}

TEST(PycProperty, RefcountsBalanceExactly) {
  PyInterp I;
  const PyApi *Api = defaultPyApi();
  SplitMix64 Rng(11);
  for (int Round = 0; Round < 10; ++Round) {
    uint64_t Before = I.stats().Allocated - I.stats().Deallocated;
    EXPECT_EQ(Before, I.liveCount());
    runLegalExtension(I, Rng, 150);
    EXPECT_EQ(I.liveCount(), 0u);
    EXPECT_EQ(I.stats().Allocated, I.stats().Deallocated);
  }
  (void)Api;
}

/// The jinn-fuzz generator as a property driver: many seeds' worth of
/// generated clean walks must satisfy the same never-triggers/never-leaks
/// property as the handwritten runLegalExtension, and every generated bug
/// path must provoke exactly its declared violation.
TEST(PycProperty, FuzzGeneratedSequencesHoldTheProperty) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    for (uint64_t Index = 0; Index < 4; ++Index) {
      fuzz::PyExecResult R =
          fuzz::runPySequence(fuzz::cleanPySequence(Seed, Index));
      for (const std::string &Failure : R.Failures)
        ADD_FAILURE() << "seed " << Seed << " index " << Index << ": "
                      << Failure;
      EXPECT_TRUE(R.Pass);
    }
    for (const std::string &BugName : fuzz::pyBugOpNames()) {
      fuzz::PyExecResult R =
          fuzz::runPySequence(fuzz::bugPySequence(Seed, BugName, Seed));
      for (const std::string &Failure : R.Failures)
        ADD_FAILURE() << "seed " << Seed << " " << BugName << ": " << Failure;
      EXPECT_TRUE(R.Pass);
    }
  }
}

TEST(PycProperty, ContainersReleaseChildrenRecursively) {
  PyInterp I;
  const PyApi *Api = defaultPyApi();
  // Nested tuple of lists of strings.
  PyObject *Root = Api->Py_BuildValue(&I, "([ss][s]i)", "a", "b", "c", 5L);
  ASSERT_NE(Root, nullptr);
  EXPECT_GT(I.liveCount(), 4u);
  Api->Py_DecRef(&I, Root);
  EXPECT_EQ(I.liveCount(), 0u);
}

} // namespace
