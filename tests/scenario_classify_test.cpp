//===- tests/scenario_classify_test.cpp - Outcome classifier tests -------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "scenarios/Scenarios.h"

#include <gtest/gtest.h>

using namespace jinn;
using namespace jinn::scenarios;

namespace {

TEST(OutcomeNames, AreTable1Vocabulary) {
  EXPECT_STREQ(outcomeName(Outcome::Running), "running");
  EXPECT_STREQ(outcomeName(Outcome::Crash), "crash");
  EXPECT_STREQ(outcomeName(Outcome::Warning), "warning");
  EXPECT_STREQ(outcomeName(Outcome::Error), "error");
  EXPECT_STREQ(outcomeName(Outcome::Npe), "NPE");
  EXPECT_STREQ(outcomeName(Outcome::Leak), "leak");
  EXPECT_STREQ(outcomeName(Outcome::Deadlock), "deadlock");
  EXPECT_STREQ(outcomeName(Outcome::JinnException), "exception");
}

TEST(OutcomeNames, ValidBugReportsPerSection63) {
  EXPECT_TRUE(isValidBugReport(Outcome::Warning));
  EXPECT_TRUE(isValidBugReport(Outcome::Error));
  EXPECT_TRUE(isValidBugReport(Outcome::JinnException));
  EXPECT_FALSE(isValidBugReport(Outcome::Crash));
  EXPECT_FALSE(isValidBugReport(Outcome::Npe));
  EXPECT_FALSE(isValidBugReport(Outcome::Leak));
  EXPECT_FALSE(isValidBugReport(Outcome::Running));
  EXPECT_FALSE(isValidBugReport(Outcome::Deadlock));
}

TEST(Classify, CleanWorldIsRunning) {
  ScenarioWorld World(WorldConfig{});
  World.runAsNative("Clean", [](JNIEnv *Env) {
    jstring S = Env->functions->NewStringUTF(Env, "fine");
    Env->functions->DeleteLocalRef(Env, S);
  });
  World.shutdown();
  EXPECT_EQ(classify(World), Outcome::Running);
}

TEST(Classify, JinnExceptionOutranksProductionSignals) {
  WorldConfig Config;
  Config.Checker = CheckerKind::Jinn;
  ScenarioWorld World(Config);
  // Produce both a leak AND a Jinn report: the exception wins.
  World.runAsNative("Both", [](JNIEnv *Env) {
    jintArray Arr = Env->functions->NewIntArray(Env, 4);
    Env->functions->GetIntArrayElements(Env, Arr, nullptr); // pin leak
    jstring S = Env->functions->NewStringUTF(Env, "x");
    Env->functions->DeleteLocalRef(Env, S);
    Env->functions->GetStringUTFLength(Env, S); // Jinn throws
  });
  World.shutdown();
  EXPECT_EQ(classify(World), Outcome::JinnException);
}

TEST(Classify, NpeDetectedFromPendingException) {
  ScenarioWorld World(WorldConfig{});
  World.runAsNative("NpeCase", [](JNIEnv *Env) {
    Env->vm->throwNew(*Env->thread, "java/lang/NullPointerException",
                      "synthetic");
  });
  EXPECT_EQ(classify(World), Outcome::Npe);
}

TEST(Classify, LeakWinsOverSilentRun) {
  ScenarioWorld World(WorldConfig{});
  World.runAsNative("Leaky", [](JNIEnv *Env) {
    jstring S = Env->functions->NewStringUTF(Env, "kept");
    Env->functions->NewGlobalRef(Env, S);
  });
  World.shutdown();
  EXPECT_EQ(classify(World), Outcome::Leak);
}

TEST(MicroInfo, TableIsConsistent) {
  const auto &All = allMicrobenchmarks();
  ASSERT_EQ(All.size(), static_cast<size_t>(MicroId::Count));
  size_t Detectable = 0;
  for (size_t I = 0; I < All.size(); ++I) {
    EXPECT_EQ(static_cast<size_t>(All[I].Id), I);
    EXPECT_NE(All[I].ClassName, nullptr);
    Detectable += All[I].DetectableAtBoundary;
  }
  // All but pitfall 8 and the three fixed pushdown variants, which are
  // correct by construction and must not be flagged.
  EXPECT_EQ(Detectable, All.size() - 4);
  EXPECT_FALSE(microInfo(MicroId::UnterminatedString).DetectableAtBoundary);
  EXPECT_FALSE(microInfo(MicroId::PopWithoutPushFixed).DetectableAtBoundary);
  EXPECT_FALSE(
      microInfo(MicroId::MonitorExitUnmatchedFixed).DetectableAtBoundary);
  EXPECT_FALSE(microInfo(MicroId::CriticalNestedFixed).DetectableAtBoundary);
  EXPECT_EQ(microInfo(MicroId::LocalDangling).Pitfall, 13);
}

} // namespace
