//===- tests/gc_stress_test.cpp - Concurrent allocation vs. GC stress ----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stress tests for the concurrent substrate VM (DESIGN.md §12): TLAB
/// allocation and incremental marking racing real mutator threads. The
/// invariants under test are the ones the bug detectors depend on:
///
///   (a) no live (reachable) object is ever reclaimed or corrupted,
///   (b) moving GC still invalidates stale ObjectIds — a reclaimed id
///       never resolves again, so the Table 1 dangling micros keep firing,
///   (c) the newborn handshake keeps a just-allocated object alive across
///       a collection triggered by its own allocation, on every thread.
///
/// The suite is meant to run clean under -fsanitize=thread and
/// -fsanitize=address (configure with -DJINN_TSAN=ON / -DJINN_ASAN=ON).
///
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace jinn;
using namespace jinn::testing;
using jinn::jvm::HeapObject;
using jinn::jvm::ObjectId;

namespace {

constexpr int NumThreads = 4;

jvm::VmOptions stressOptions() {
  jvm::VmOptions Options;
  Options.IncrementalMark = true;
  Options.GcMarkStepBudget = 16; // many mark pauses -> many mutator windows
  Options.TlabSlots = 8;         // frequent refills contend on the heap lock
  Options.MoveOnGc = true;
  return Options;
}

/// Spin barrier so worker phases line up without depending on <barrier>.
struct SpinBarrier {
  explicit SpinBarrier(int N) : Target(N) {}
  void arriveAndWait() {
    int Gen = Generation.load(std::memory_order_acquire);
    if (Arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == Target) {
      Arrived.store(0, std::memory_order_relaxed);
      Generation.fetch_add(1, std::memory_order_acq_rel);
      return;
    }
    while (Generation.load(std::memory_order_acquire) == Gen)
      std::this_thread::yield();
  }
  const int Target;
  std::atomic<int> Arrived{0};
  std::atomic<int> Generation{0};
};

// (a) Live objects survive: workers build object graphs (arrays of strings,
// exercising the SetObjectArrayElement write barrier) and re-read them while
// a dedicated collector thread runs back-to-back incremental cycles.
TEST(GcStress, ConcurrentAllocatorsVsIncrementalCollector) {
  VmWorld W(stressOptions());
  JavaVM *Jvm = W.Rt.javaVm();
  std::atomic<int> Failures{0};
  std::atomic<bool> Done{false};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      JNIEnv *Env = nullptr;
      if (Jvm->functions->AttachCurrentThread(Jvm, &Env, nullptr) != JNI_OK) {
        ++Failures;
        return;
      }
      const JNINativeInterface_ *Fns = Env->functions;
      jclass StringCls = Fns->FindClass(Env, "java/lang/String");
      for (int I = 0; I < 200; ++I) {
        jobjectArray Arr = Fns->NewObjectArray(Env, 4, StringCls, nullptr);
        for (jsize K = 0; K < 4; ++K) {
          jstring S = Fns->NewStringUTF(Env, "payload");
          // Stores into a possibly-already-marked container: the dirty
          // barrier must re-grey Arr or the payload dies mid-cycle.
          Fns->SetObjectArrayElement(Env, Arr, K, S);
          Fns->DeleteLocalRef(Env, S);
        }
        for (jsize K = 0; K < 4; ++K) {
          jstring S = static_cast<jstring>(
              Fns->GetObjectArrayElement(Env, Arr, K));
          if (Fns->GetStringUTFLength(Env, S) != 7)
            ++Failures;
          Fns->DeleteLocalRef(Env, S);
        }
        Fns->DeleteLocalRef(Env, Arr);
      }
      Jvm->functions->DetachCurrentThread(Jvm);
    });
  std::thread Collector([&] {
    // do-while: on a loaded box the workers can all finish before this
    // thread is first scheduled, and the stats assertions below need at
    // least one completed cycle.
    do
      W.Vm.gc();
    while (!Done.load(std::memory_order_acquire));
  });
  for (std::thread &Th : Threads)
    Th.join();
  Done.store(true, std::memory_order_release);
  Collector.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_FALSE(W.main().Poisoned);
  EXPECT_GT(W.Vm.heap().stats().MarkIncrements, 0u);
  EXPECT_GT(W.Vm.heap().stats().MovingGcCount, 0u);
}

// (b) Stale ids stay stale: ids whose objects were dropped concurrently
// must never resolve after collection, while rooted ids keep resolving with
// intact payloads and fresh simulated addresses (motion still happens).
TEST(GcStress, MovingGcInvalidatesDroppedIdsAndPreservesRootedOnes) {
  VmWorld W(stressOptions());
  std::atomic<int> Failures{0};
  std::vector<std::vector<ObjectId>> Dropped(NumThreads);
  std::vector<std::vector<ObjectId>> Rooted(NumThreads);
  std::atomic<bool> Done{false};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I < 150; ++I) {
        ObjectId Keep = W.Vm.newStringUtf16(u"rooted-payload");
        W.Vm.newGlobalRef(Keep, /*Weak=*/false); // root it for the VM's life
        Rooted[T].push_back(Keep);
        // Allocated and immediately dropped: reclaimable garbage.
        Dropped[T].push_back(W.Vm.newPrimArray(jvm::JType::Int, 16));
      }
    });
  std::thread Collector([&] {
    while (!Done.load(std::memory_order_acquire))
      W.Vm.gc();
  });
  for (std::thread &Th : Threads)
    Th.join();
  Done.store(true, std::memory_order_release);
  Collector.join();

  // Two full cycles from quiescence: anything the racing cycles left
  // floating is gone after the second.
  W.Vm.gc();
  W.Vm.gc();
  for (int T = 0; T < NumThreads; ++T) {
    for (ObjectId Id : Dropped[T]) {
      EXPECT_EQ(W.Vm.heap().resolve(Id), nullptr);
      EXPECT_TRUE(W.Vm.heap().isStale(Id));
    }
    for (ObjectId Id : Rooted[T]) {
      HeapObject *Obj = W.Vm.heap().resolve(Id);
      ASSERT_NE(Obj, nullptr);
      EXPECT_EQ(Obj->Chars, u"rooted-payload");
      EXPECT_GT(Obj->MoveCount, 0u); // the simulated mover still ran
    }
  }
  EXPECT_EQ(Failures.load(), 0);
}

// (c) Newborn handshake: AutoGcPeriod=1 triggers a collection inside every
// allocation, from whichever thread trips the period. The object each call
// returns must be usable immediately — the Newborn slot publication closes
// the allocated-but-unreachable window.
TEST(GcStress, NewbornSurvivesGcTriggeredByItsOwnAllocation) {
  jvm::VmOptions Options = stressOptions();
  Options.AutoGcPeriod = 1;
  Options.GcMarkStepBudget = 4;
  VmWorld W(Options);
  JavaVM *Jvm = W.Rt.javaVm();
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      JNIEnv *Env = nullptr;
      if (Jvm->functions->AttachCurrentThread(Jvm, &Env, nullptr) != JNI_OK) {
        ++Failures;
        return;
      }
      const JNINativeInterface_ *Fns = Env->functions;
      for (int I = 0; I < 100; ++I) {
        jstring S = Fns->NewStringUTF(Env, "newborn");
        if (Fns->GetStringUTFLength(Env, S) != 7)
          ++Failures;
        Fns->DeleteLocalRef(Env, S);
      }
      Jvm->functions->DetachCurrentThread(Jvm);
    });
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_GT(W.Vm.heap().stats().GcCount, 0u);
}

// Regression (ISSUE satellite 1): concurrent findClass on a not-yet-defined
// array class must return one canonical Klass* — the shared->unique window
// re-probes under the definition lock instead of defining twice.
TEST(GcStress, ConcurrentArrayClassLookupYieldsOneKlass) {
  VmWorld W;
  constexpr int Lookups = 8;
  SpinBarrier Barrier(Lookups);
  std::vector<jvm::Klass *> Results(Lookups, nullptr);
  std::vector<std::thread> Threads;
  for (int T = 0; T < Lookups; ++T)
    Threads.emplace_back([&, T] {
      Barrier.arriveAndWait(); // maximize same-instant definition attempts
      Results[T] = W.Vm.findClass("[[Ljava/lang/String;");
    });
  for (std::thread &Th : Threads)
    Th.join();
  ASSERT_NE(Results[0], nullptr);
  for (int T = 1; T < Lookups; ++T)
    EXPECT_EQ(Results[T], Results[0]);
  // The element class chain was defined exactly once too.
  EXPECT_EQ(W.Vm.findClass("[[Ljava/lang/String;"), Results[0]);
}

// The dangling-reference detection path end to end, after racing cycles:
// a stale id observed through JNI still routes through the undefined-op
// policy (the Table 1 dangling micros depend on exactly this).
TEST(GcStress, DanglingDetectionStillFiresAfterConcurrentCycles) {
  VmWorld W(stressOptions());
  std::atomic<bool> Done{false};
  std::thread Collector([&] {
    while (!Done.load(std::memory_order_acquire))
      W.Vm.gc();
  });
  ObjectId Doomed;
  for (int I = 0; I < 50; ++I)
    Doomed = W.Vm.newPrimArray(jvm::JType::Int, 4);
  Done.store(true, std::memory_order_release);
  Collector.join();
  W.Vm.gc();
  W.Vm.gc();
  EXPECT_TRUE(W.Vm.heap().isStale(Doomed));
  EXPECT_EQ(W.Vm.heap().resolve(Doomed), nullptr);
}

// Report determinism across the new substrate knobs: the same
// single-threaded violation sequence must produce byte-identical report
// lists whether the mark is incremental or monolithic, and whatever the
// TLAB batch size — the knobs change pause shape, never detection.
TEST(GcStress, SubstrateKnobsDoNotChangeReports) {
  auto runConfig = [](jvm::VmOptions Options) {
    Options.AutoGcPeriod = 8; // collections interleave with the violations
    JinnWorld W(Options);
    JNIEnv *Env = W.env();
    const JNINativeInterface_ *Fns = Env->functions;
    for (int I = 0; I < 20; ++I) {
      jstring S = Fns->NewStringUTF(Env, "doomed");
      jobject G = Fns->NewGlobalRef(Env, S);
      Fns->DeleteGlobalRef(Env, G);
      Fns->DeleteGlobalRef(Env, G); // violation: global double free
      Fns->ExceptionClear(Env);
      Fns->DeleteLocalRef(Env, S);
      Fns->GetStringUTFLength(Env, S); // violation: dangling local use
      Fns->ExceptionClear(Env);
      W.Vm.gc();
    }
    W.Vm.shutdown();
    std::vector<std::string> Out;
    for (const agent::JinnReport &Report : W.reports())
      Out.push_back(Report.Machine + "|" + Report.Function + "|" +
                    Report.Message);
    return Out;
  };

  jvm::VmOptions Monolithic;
  Monolithic.IncrementalMark = false;
  jvm::VmOptions TinySteps;
  TinySteps.IncrementalMark = true;
  TinySteps.GcMarkStepBudget = 4;
  TinySteps.TlabSlots = 1;
  std::vector<std::string> Defaults = runConfig(jvm::VmOptions());
  EXPECT_EQ(Defaults.size(), 40u);
  EXPECT_EQ(runConfig(Monolithic), Defaults);
  EXPECT_EQ(runConfig(TinySteps), Defaults);
}

} // namespace
