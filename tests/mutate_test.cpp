//===- tests/mutate_test.cpp - Mutation campaign regression tests --------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regression anchors for the jinn-mutate campaign (DESIGN.md §16): the
/// registry invariants, the unmutated contract-probe values, and — most
/// importantly — the probes that were added to close discovered blind
/// spots. Each blind-spot test flips the mutant on in-process and asserts
/// the probe section moves; if a refactor ever re-opens the gap, the
/// corresponding test fails here, independent of the full campaign.
///
//===----------------------------------------------------------------------===//

#include "mutate/Harness.h"
#include "mutate/Mutation.h"
#include "scenarios/Scenarios.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

using namespace jinn;
using namespace jinn::mutate;

namespace {

/// RAII: no test may leak an active mutant into its neighbours.
struct MutantGuard {
  explicit MutantGuard(M Which) {
    setActiveMutant(static_cast<int>(Which));
  }
  ~MutantGuard() { setActiveMutant(0); }
};

std::string probeLine(const std::vector<std::string> &Lines,
                      const char *Prefix) {
  for (const std::string &Line : Lines)
    if (Line.rfind(Prefix, 0) == 0)
      return Line;
  return "<missing: " + std::string(Prefix) + ">";
}

} // namespace

TEST(MutantRegistry, IdsAndNamesAreUniqueAndResolvable) {
  const std::vector<MutantInfo> &Mutants = allMutants();
  ASSERT_GE(Mutants.size(), 20u);
  std::set<int> Ids;
  std::set<std::string> Names;
  for (const MutantInfo &Info : Mutants) {
    EXPECT_TRUE(Ids.insert(Info.Id).second) << "duplicate id " << Info.Id;
    EXPECT_TRUE(Names.insert(Info.Name).second)
        << "duplicate name " << Info.Name;
    EXPECT_EQ(findMutant(Info.Id), &Info);
    EXPECT_EQ(findMutant(std::string(Info.Name)), &Info);
    EXPECT_EQ(findMutant(std::to_string(Info.Id)), &Info);
    EXPECT_NE(Info.Rationale, std::string());
  }
  EXPECT_EQ(findMutant(0), nullptr);
  EXPECT_EQ(findMutant("no-such-mutant"), nullptr);
  EXPECT_EQ(activeMutant(), 0) << "tests must start unmutated";
}

TEST(MutantRegistry, EverySurvivorIsAnnotated) {
  // The gate enforces this against the campaign JSON; this is the
  // compile-time half — annotations must name a real policy.
  for (const MutantInfo &Info : allMutants())
    EXPECT_TRUE(Info.Expected == Expect::Killed ||
                Info.Expected == Expect::SurvivesEquivalent ||
                Info.Expected == Expect::SurvivesBlindSpot);
}

TEST(ContractProbes, UnmutatedContractsHold) {
  std::vector<std::string> Probes = runContractProbes();
  // EnsureLocalCapacity(-1) must be rejected with JNI_ERR.
  EXPECT_EQ(probeLine(Probes, "probe:ensure-negative="),
            "probe:ensure-negative=-1");
  // A foreign MonitorExit fails with a pending IllegalMonitorState-
  // Exception while enter and the matching exit both succeed.
  EXPECT_EQ(probeLine(Probes, "probe:monitor-exit-foreign="),
            "probe:monitor-exit-foreign=enter:0,foreign:-1,pending:1,"
            "matching:0");
  // An ensured capacity of 24 really holds 21 locals.
  EXPECT_EQ(probeLine(Probes, "probe:ensure-grows="),
            "probe:ensure-grows=rc:0,live:20,outcome:running");
  // The attach frame holds exactly 16 locals: FindClass + 16 allocations
  // is one over and must classify as a leak (capacity overflow).
  EXPECT_EQ(probeLine(Probes, "probe:frame-boundary="),
            "probe:frame-boundary=attach:0,live:16,outcome:leak");
  // The false-positive contract behind the exit-gate blind spot: a held
  // monitor plus one rejected foreign exit stays report-free under Jinn.
  EXPECT_EQ(probeLine(Probes, "probe:jinn-foreign-exit="),
            "probe:jinn-foreign-exit=reports:0[]");
}

//===----------------------------------------------------------------------===
// Blind-spot regressions: each fixed gap keeps a test proving the closing
// oracle still observes its mutant.
//===----------------------------------------------------------------------===

TEST(BlindSpotRegression, FrameCapacitySlackIsObserved) {
  // Mutant 1 survived the original battery: no oracle exercised the
  // attach frame at its exact capacity. The frame-boundary probe must
  // flip from leak to running when the frame gains a slack slot.
  std::vector<std::string> Base = runContractProbes();
  MutantGuard Guard(M::JvmFrameCapacityPlusOne);
  std::vector<std::string> Mutated = runContractProbes();
  EXPECT_NE(probeLine(Base, "probe:frame-boundary="),
            probeLine(Mutated, "probe:frame-boundary="));
  EXPECT_EQ(probeLine(Mutated, "probe:frame-boundary="),
            "probe:frame-boundary=attach:0,live:16,outcome:running");
}

TEST(BlindSpotRegression, EnsureCapacityMustActuallyGrow) {
  std::vector<std::string> Base = runContractProbes();
  MutantGuard Guard(M::JvmEnsureCapacityIgnored);
  std::vector<std::string> Mutated = runContractProbes();
  EXPECT_NE(probeLine(Base, "probe:ensure-grows="),
            probeLine(Mutated, "probe:ensure-grows="));
}

TEST(BlindSpotRegression, NegativeCapacityMustBeRejected) {
  MutantGuard Guard(M::JniEnsureNegativeAccepted);
  EXPECT_EQ(probeLine(runContractProbes(), "probe:ensure-negative="),
            "probe:ensure-negative=0");
}

TEST(BlindSpotRegression, MaskedMonitorExitFailureIsObserved) {
  MutantGuard Guard(M::JniMonitorExitFailureMasked);
  std::string Line =
      probeLine(runContractProbes(), "probe:monitor-exit-foreign=");
  // The masked exit claims JNI_OK and raises no exception.
  EXPECT_NE(Line.find("foreign:0"), std::string::npos) << Line;
  EXPECT_NE(Line.find("pending:0"), std::string::npos) << Line;
}

TEST(BlindSpotRegression, RejectedForeignExitMustNotPopShadow) {
  // Mutant 10, the campaign's headline discovery: with the JNI_OK gate
  // dropped, MonitorBalance pops its shadow counter for the rejected
  // foreign exit, then reports a false unmatched-exit on the legitimate
  // matching exit.
  std::vector<std::string> Base = runContractProbes();
  EXPECT_EQ(probeLine(Base, "probe:jinn-foreign-exit="),
            "probe:jinn-foreign-exit=reports:0[]");
  MutantGuard Guard(M::SpecMonitorExitGateDropped);
  std::string Line =
      probeLine(runContractProbes(), "probe:jinn-foreign-exit=");
  EXPECT_NE(Line, "probe:jinn-foreign-exit=reports:0[]");
  EXPECT_NE(Line.find("MonitorExit"), std::string::npos) << Line;
}

TEST(BlindSpotRegression, NullnessInversionFlipsACleanMicro) {
  // Sanity anchor: the machinery really is runtime-switchable — the same
  // process observes a clean micro turning into a Jinn report under the
  // inverted nullness guard, then back to clean after the guard resets.
  using namespace jinn::scenarios;
  WorldConfig Cfg;
  Cfg.Checker = CheckerKind::Jinn;
  EXPECT_EQ(runMicroToOutcome(MicroId::PopWithoutPushFixed, Cfg),
            Outcome::Running);
  {
    MutantGuard Guard(M::SpecNullnessInverted);
    EXPECT_NE(runMicroToOutcome(MicroId::PopWithoutPushFixed, Cfg),
              Outcome::Running);
  }
  EXPECT_EQ(runMicroToOutcome(MicroId::PopWithoutPushFixed, Cfg),
            Outcome::Running);
}

TEST(KillJudge, EquivalentMutantProducesIdenticalFingerprint) {
  // Mutant 2 (one fewer TLAB slot) is the annotated equivalent: the
  // whole fingerprint, not just the probes, must match the baseline.
  Verdict V = judgeMutant(static_cast<int>(M::JvmTlabRefillMinusOne));
  EXPECT_EQ(V.Status, "survived");
  EXPECT_TRUE(V.KilledBy.empty());
  EXPECT_EQ(activeMutant(), 0) << "judge must restore the active mutant";
}
