//===- tests/heap_test.cpp - Heap and GC unit tests ----------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jvm/Heap.h"
#include "jvm/Klass.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace jinn;
using namespace jinn::jvm;

namespace jinn::jvm {

/// Befriended by Heap: lets tests force internal slot state that would take
/// four billion recycles to reach naturally.
struct HeapTestAccess {
  static void setGen(Heap &H, ObjectId Id, uint32_t Gen) {
    HeapObject &Obj = H.Slots[Id.Index];
    uint64_t State = Obj.State.load(std::memory_order_relaxed);
    Obj.State.store(HeapObject::packState(Gen, HeapObject::liveOf(State)),
                    std::memory_order_relaxed);
  }
};

} // namespace jinn::jvm

namespace {

struct HeapTest : ::testing::Test {
  /// TLAB size 1 keeps the classic allocator behavior these unit tests
  /// were written against: every allocation refills from the free list
  /// first, so a just-collected slot is recycled immediately.
  Heap H{1};
  Klass Dummy{"Dummy", nullptr};
};

TEST_F(HeapTest, AllocateAndResolve) {
  ObjectId Id = H.allocPlain(&Dummy, 3);
  HeapObject *Obj = H.resolve(Id);
  ASSERT_NE(Obj, nullptr);
  EXPECT_EQ(Obj->Kl, &Dummy);
  EXPECT_EQ(Obj->Fields.size(), 3u);
  EXPECT_EQ(H.liveCount(), 1u);
}

TEST_F(HeapTest, NullIdNeverResolves) {
  EXPECT_EQ(H.resolve(ObjectId()), nullptr);
  EXPECT_FALSE(H.isStale(ObjectId())); // null is null, not dangling
}

TEST_F(HeapTest, UnreachableObjectsAreCollected) {
  ObjectId Kept = H.allocPlain(&Dummy, 0);
  ObjectId Dropped = H.allocPlain(&Dummy, 0);
  H.collect({Kept}, /*Move=*/false);
  EXPECT_NE(H.resolve(Kept), nullptr);
  EXPECT_EQ(H.resolve(Dropped), nullptr);
  EXPECT_TRUE(H.isStale(Dropped));
  EXPECT_EQ(H.liveCount(), 1u);
}

TEST_F(HeapTest, FieldsKeepObjectsAlive) {
  ObjectId Inner = H.allocPlain(&Dummy, 0);
  ObjectId Outer = H.allocPlain(&Dummy, 1);
  H.resolve(Outer)->Fields[0] = Value::makeRef(Inner);
  H.collect({Outer}, false);
  EXPECT_NE(H.resolve(Inner), nullptr);
}

TEST_F(HeapTest, ObjectArraysTraceElements) {
  ObjectId Elem = H.allocPlain(&Dummy, 0);
  ObjectId Arr = H.allocObjArray(&Dummy, 2);
  H.resolve(Arr)->ObjElems[0] = Elem;
  H.collect({Arr}, false);
  EXPECT_NE(H.resolve(Elem), nullptr);
  H.collect({}, false);
  EXPECT_EQ(H.resolve(Elem), nullptr);
}

TEST_F(HeapTest, CyclesAreCollected) {
  ObjectId A = H.allocPlain(&Dummy, 1);
  ObjectId B = H.allocPlain(&Dummy, 1);
  H.resolve(A)->Fields[0] = Value::makeRef(B);
  H.resolve(B)->Fields[0] = Value::makeRef(A);
  H.collect({}, false);
  EXPECT_EQ(H.liveCount(), 0u);
}

TEST_F(HeapTest, SlotReuseBumpsGeneration) {
  ObjectId Old = H.allocPlain(&Dummy, 0);
  H.collect({}, false);
  ObjectId New = H.allocPlain(&Dummy, 0);
  EXPECT_EQ(New.Index, Old.Index); // the slot was recycled
  EXPECT_GT(New.Gen, Old.Gen);
  EXPECT_EQ(H.resolve(Old), nullptr); // the old id stays dead forever
  EXPECT_NE(H.resolve(New), nullptr);
}

TEST_F(HeapTest, MovingCollectionChangesAddresses) {
  ObjectId Id = H.allocPlain(&Dummy, 0);
  uint64_t Before = H.resolve(Id)->Address;
  H.collect({Id}, /*Move=*/true);
  EXPECT_NE(H.resolve(Id)->Address, Before);
  EXPECT_EQ(H.resolve(Id)->MoveCount, 1u);
}

TEST_F(HeapTest, PinnedObjectsDoNotMove) {
  ObjectId Id = H.allocPrimArray(&Dummy, JType::Int, 8);
  H.resolve(Id)->PinCount = 1;
  uint64_t Before = H.resolve(Id)->Address;
  H.collect({Id}, /*Move=*/true);
  EXPECT_EQ(H.resolve(Id)->Address, Before);
  EXPECT_EQ(H.resolve(Id)->MoveCount, 0u);
}

TEST_F(HeapTest, BeforeSweepSeesMarks) {
  ObjectId Kept = H.allocPlain(&Dummy, 0);
  ObjectId Dropped = H.allocPlain(&Dummy, 0);
  bool KeptMarked = false, DroppedMarked = true;
  H.collect({Kept}, false, [&] {
    KeptMarked = H.isMarked(Kept);
    DroppedMarked = H.isMarked(Dropped);
  });
  EXPECT_TRUE(KeptMarked);
  EXPECT_FALSE(DroppedMarked);
}

TEST_F(HeapTest, StringAndPrimArrayPayloads) {
  ObjectId Str = H.allocString(&Dummy, u"hello");
  EXPECT_EQ(H.resolve(Str)->Chars, u"hello");
  ObjectId Arr = H.allocPrimArray(&Dummy, JType::Long, 4);
  EXPECT_EQ(H.resolve(Arr)->PrimElems.size(), 4u);
  EXPECT_EQ(H.resolve(Arr)->ElemKind, JType::Long);
}

// Regression: a recycled slot whose 32-bit generation counter wraps must
// skip generation 0 — otherwise the fresh ObjectId aliases null (isNull()
// is Gen == 0) and every resolve of the new resident fails.
TEST_F(HeapTest, GenerationWraparoundSkipsNullGeneration) {
  ObjectId First = H.allocPlain(&Dummy, 0);
  HeapTestAccess::setGen(H, First, 0xffffffffu);
  H.collect({}, /*Move=*/false); // frees the slot onto the free list
  ObjectId Recycled = H.allocPlain(&Dummy, 0); // reuses it; Gen wraps
  EXPECT_EQ(Recycled.Index, First.Index);
  EXPECT_FALSE(Recycled.isNull());
  EXPECT_NE(Recycled.Gen, 0u);
  ASSERT_NE(H.resolve(Recycled), nullptr);
  EXPECT_EQ(H.liveCount(), 1u);
}

TEST_F(HeapTest, StatsAccumulate) {
  for (int I = 0; I < 10; ++I)
    H.allocPlain(&Dummy, 0);
  H.collect({}, true);
  EXPECT_EQ(H.stats().TotalAllocated, 10u);
  EXPECT_EQ(H.stats().TotalCollected, 10u);
  EXPECT_EQ(H.stats().GcCount, 1u);
  EXPECT_EQ(H.stats().MovingGcCount, 1u);
}

//===----------------------------------------------------------------------===
// TLAB allocation and incremental marking
//===----------------------------------------------------------------------===

TEST(HeapTlab, RefillsInBatches) {
  Heap H(64);
  Klass Dummy{"Dummy", nullptr};
  for (int I = 0; I < 64; ++I)
    H.allocPlain(&Dummy, 0);
  EXPECT_EQ(H.stats().TlabRefills, 1u);
  H.allocPlain(&Dummy, 0);
  EXPECT_EQ(H.stats().TlabRefills, 2u);
  EXPECT_EQ(H.liveCount(), 65u);
}

TEST(HeapTlab, RecycledSlotsStillGoStaleAcrossBatches) {
  Heap H(8);
  Klass Dummy{"Dummy", nullptr};
  std::vector<ObjectId> Ids;
  for (int I = 0; I < 32; ++I)
    Ids.push_back(H.allocPlain(&Dummy, 0));
  H.collect({}, /*Move=*/false);
  for (ObjectId Id : Ids)
    EXPECT_TRUE(H.isStale(Id));
  // Recycling through the TLAB free path bumps generations as before.
  for (int I = 0; I < 32; ++I) {
    ObjectId Fresh = H.allocPlain(&Dummy, 0);
    EXPECT_NE(H.resolve(Fresh), nullptr);
  }
  for (ObjectId Id : Ids)
    EXPECT_EQ(H.resolve(Id), nullptr);
}

TEST(HeapIncremental, BarrierCatchesStoreIntoScannedContainer) {
  Heap H(1);
  Klass Dummy{"Dummy", nullptr};
  ObjectId Container = H.allocPlain(&Dummy, 1);
  ObjectId Payload = H.allocPlain(&Dummy, 0);
  // Mark runs to completion before the mutator stores Payload into the
  // (now black) container; without the barrier the remark would miss it.
  H.beginIncrementalMark({Container});
  EXPECT_TRUE(H.incrementalMarkStep(1000));
  H.resolve(Container)->Fields[0] = Value::makeRef(Payload);
  EXPECT_TRUE(H.markInProgress());
  H.recordRefStore(Container);
  H.finishCollect({Container}, /*Move=*/false);
  EXPECT_NE(H.resolve(Payload), nullptr);
  EXPECT_GE(H.stats().DirtyRecords, 1u);
}

TEST(HeapIncremental, ObjectsAllocatedDuringMarkSurvive) {
  Heap H(1);
  Klass Dummy{"Dummy", nullptr};
  ObjectId Root = H.allocPlain(&Dummy, 0);
  H.beginIncrementalMark({Root});
  ObjectId Newborn = H.allocPlain(&Dummy, 0); // allocate black
  H.finishCollect({Root}, /*Move=*/false);
  EXPECT_NE(H.resolve(Newborn), nullptr);
  // It was floating garbage, though: the next full cycle reclaims it.
  H.collect({Root}, /*Move=*/false);
  EXPECT_EQ(H.resolve(Newborn), nullptr);
}

TEST(HeapIncremental, BudgetedStepsEventuallyDrain) {
  Heap H(16);
  Klass Dummy{"Dummy", nullptr};
  // A chain of 100 objects forces multiple budgeted increments.
  ObjectId Head = H.allocPlain(&Dummy, 1);
  ObjectId Tail = Head;
  for (int I = 0; I < 99; ++I) {
    ObjectId Next = H.allocPlain(&Dummy, 1);
    H.resolve(Tail)->Fields[0] = Value::makeRef(Next);
    Tail = Next;
  }
  H.beginIncrementalMark({Head});
  int Steps = 0;
  while (!H.incrementalMarkStep(10))
    ++Steps;
  EXPECT_GT(Steps, 2);
  H.finishCollect({Head}, /*Move=*/true);
  EXPECT_EQ(H.liveCount(), 100u);
  EXPECT_GE(H.stats().MarkIncrements, static_cast<uint64_t>(Steps));
}

// Property: after a random reachable/unreachable population, collection
// keeps exactly the reachable set.
TEST_F(HeapTest, RandomReachabilityProperty) {
  SplitMix64 Rng(7);
  for (int Round = 0; Round < 20; ++Round) {
    std::vector<ObjectId> Roots, Reachable, Garbage;
    std::vector<ObjectId> FreeSlots; // reachable objects with an unset field
    for (int I = 0; I < 30; ++I) {
      ObjectId Id = H.allocPlain(&Dummy, 1);
      if (Rng.chance(1, 3)) {
        Roots.push_back(Id);
        Reachable.push_back(Id);
        FreeSlots.push_back(Id);
      } else if (!FreeSlots.empty() && Rng.chance(1, 2)) {
        // Hang it off a reachable object whose field is still unset.
        size_t Pick = Rng.nextBelow(FreeSlots.size());
        H.resolve(FreeSlots[Pick])->Fields[0] = Value::makeRef(Id);
        FreeSlots.erase(FreeSlots.begin() + Pick);
        Reachable.push_back(Id);
        FreeSlots.push_back(Id);
      } else {
        Garbage.push_back(Id);
      }
    }
    H.collect(Roots, Rng.chance(1, 2));
    for (ObjectId Id : Reachable)
      EXPECT_NE(H.resolve(Id), nullptr);
    for (ObjectId Id : Garbage)
      EXPECT_EQ(H.resolve(Id), nullptr);
    H.collect({}, false); // clean slate for the next round
  }
}

} // namespace
