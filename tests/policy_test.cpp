//===- tests/policy_test.cpp - Production-policy unit tests ---------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Verifies that the undefined-behavior policy encodes Table 1's default
/// columns, and that Vm::undefined applies each outcome correctly.
///
//===----------------------------------------------------------------------===//

#include "jvm/Vm.h"

#include <gtest/gtest.h>

using namespace jinn;
using namespace jinn::jvm;

namespace {

TEST(Policy, Table1DefaultColumns) {
  using Op = UndefinedOp;
  using Out = ProductionOutcome;
  struct Row {
    Op O;
    Out HotSpot;
    Out J9;
  } Rows[] = {
      {Op::PendingExceptionUse, Out::Ignore, Out::Crash},   // row 1
      {Op::InvalidArgument, Out::Ignore, Out::Crash},       // row 2
      {Op::ClassObjectConfusion, Out::Crash, Out::Crash},   // row 3
      {Op::IdReferenceConfusion, Out::Crash, Out::Crash},   // row 6
      {Op::UnterminatedString, Out::Ignore, Out::ThrowNpe}, // row 8
      {Op::AccessControl, Out::ThrowNpe, Out::ThrowNpe},    // row 9
      {Op::DanglingLocalRef, Out::Crash, Out::Crash},       // row 13
      {Op::WrongThreadEnv, Out::Ignore, Out::Crash},        // row 14
      {Op::CriticalRegionCall, Out::Deadlock, Out::Deadlock}, // row 16
      {Op::DanglingGlobalRef, Out::Crash, Out::Crash},
  };
  for (const Row &R : Rows) {
    EXPECT_EQ(productionBehavior(VmFlavor::HotSpotLike, R.O), R.HotSpot)
        << undefinedOpName(R.O);
    EXPECT_EQ(productionBehavior(VmFlavor::J9Like, R.O), R.J9)
        << undefinedOpName(R.O);
  }
}

TEST(Policy, IgnoreRecordsUndefinedStateAndContinues) {
  Vm V;
  ProductionOutcome Out =
      V.undefined(V.mainThread(), UndefinedOp::InvalidArgument, "detail");
  EXPECT_EQ(Out, ProductionOutcome::Ignore);
  EXPECT_TRUE(V.diags().has(IncidentKind::UndefinedState));
  EXPECT_FALSE(V.mainThread().Poisoned);
}

TEST(Policy, CrashPoisonsTheThread) {
  VmOptions Options;
  Options.Flavor = VmFlavor::J9Like;
  Vm V(Options);
  V.undefined(V.mainThread(), UndefinedOp::DanglingLocalRef, "detail");
  EXPECT_TRUE(V.diags().has(IncidentKind::SimulatedCrash));
  EXPECT_TRUE(V.mainThread().Poisoned);
}

TEST(Policy, ThrowNpeSetsPendingException) {
  Vm V;
  V.undefined(V.mainThread(), UndefinedOp::AccessControl, "final write");
  ASSERT_FALSE(V.mainThread().Pending.isNull());
  EXPECT_EQ(V.klassOf(V.mainThread().Pending)->name(),
            "java/lang/NullPointerException");
}

TEST(Policy, DeadlockPoisonsAndRecords) {
  Vm V;
  V.undefined(V.mainThread(), UndefinedOp::CriticalRegionCall, "FindClass");
  EXPECT_TRUE(V.diags().has(IncidentKind::PotentialDeadlock));
  EXPECT_TRUE(V.mainThread().Poisoned);
}

TEST(Policy, PoisonedThreadSuppressesInvocation) {
  Vm V;
  V.mainThread().Poisoned = true;
  Value Out = V.invokeByName(V.mainThread(), "java/lang/String", "anything",
                             "()V", Value::makeNull(), {});
  EXPECT_EQ(Out.Kind, JType::Void);
  EXPECT_TRUE(V.mainThread().Pending.isNull()); // not even a lookup error
}

TEST(Policy, FlavorNames) {
  EXPECT_STREQ(vmFlavorName(VmFlavor::HotSpotLike), "hotspot");
  EXPECT_STREQ(vmFlavorName(VmFlavor::J9Like), "j9");
}

} // namespace
