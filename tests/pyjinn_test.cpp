//===- tests/pyjinn_test.cpp - Python/C checker tests (paper §7) ---------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pyjinn/PyChecker.h"
#include "scenarios/PythonScenarios.h"

#include <gtest/gtest.h>

using namespace jinn;
using namespace jinn::pyc;
using namespace jinn::pyjinn;

namespace {

TEST(PyChecker, Figure11DangleBugIsDetected) {
  PyInterp I;
  PyChecker Checker(I);
  auto Printed = scenarios::runPyDangleBug(I);
  EXPECT_EQ(Printed.first, "Eric");
  // The checker suppressed the second, dangling read.
  EXPECT_EQ(Printed.second, "");
  ASSERT_EQ(Checker.countFor("Reference ownership"), 1u);
  EXPECT_EQ(Checker.violations().front().Function, "PyString_AsString");
}

TEST(PyChecker, Figure11IsSilentCorruptionInProduction) {
  PyInterp I;
  auto Printed = scenarios::runPyDangleBug(I);
  EXPECT_EQ(Printed.first, "Eric");
  // Production reads the freed slot: garbage, no diagnosis.
  EXPECT_EQ(Printed.second, "<freed>");
  EXPECT_TRUE(I.diags().has(IncidentKind::UndefinedState));
}

TEST(PyChecker, GilBugIsDetected) {
  PyInterp I;
  PyChecker Checker(I);
  scenarios::runPyGilBug(I);
  EXPECT_EQ(Checker.countFor("GIL state"), 1u);
}

TEST(PyChecker, ExceptionBugIsDetected) {
  PyInterp I;
  PyChecker Checker(I);
  scenarios::runPyExceptionBug(I);
  EXPECT_EQ(Checker.countFor("Exception state"), 1u);
}

TEST(PyChecker, CleanExtensionProducesNoReportsAndNoLeaks) {
  PyInterp I;
  PyChecker Checker(I);
  scenarios::runPyCleanExtension(I);
  EXPECT_TRUE(Checker.violations().empty());
  EXPECT_EQ(Checker.leakedObjects(), 0u);
}

TEST(PyChecker, DoubleDecrefReportedBeforeTheCrash) {
  PyInterp I;
  PyChecker Checker(I);
  const PyApi *Api = activePyApi(I);
  PyObject *Obj = Api->PyInt_FromLong(&I, 5);
  Api->Py_DecRef(&I, Obj);
  Api->Py_DecRef(&I, Obj);
  EXPECT_EQ(Checker.countFor("Reference ownership"), 1u);
  // The checker suppressed the call, so no simulated crash occurred.
  EXPECT_FALSE(I.diags().has(IncidentKind::SimulatedCrash));
}

TEST(PyChecker, LeakedObjectsAreCounted) {
  PyInterp I;
  PyChecker Checker(I);
  const PyApi *Api = activePyApi(I);
  Api->PyInt_FromLong(&I, 1); // never released
  Api->PyString_FromString(&I, "also leaked");
  EXPECT_EQ(Checker.leakedObjects(), 2u);
}

TEST(PyChecker, TypeConstraintViolationsAreDetected) {
  // §7.1's "type constraints" class: the interpreter sometimes forgoes
  // these checks; the synthesized checker always performs them.
  PyInterp I;
  PyChecker Checker(I);
  const PyApi *Api = activePyApi(I);
  PyObject *NotAList = Api->PyInt_FromLong(&I, 3);
  EXPECT_EQ(Api->PyList_GetItem(&I, NotAList, 0), nullptr);
  ASSERT_EQ(Checker.countFor("Type constraints"), 1u);
  EXPECT_EQ(Checker.violations().front().Function, "PyList_GetItem");

  Api->PyErr_Clear(&I);
  Checker.clearViolations();
  PyObject *Str = Api->PyString_FromString(&I, "s");
  Api->PyInt_AsLong(&I, Str);
  EXPECT_EQ(Checker.countFor("Type constraints"), 1u);
}

TEST(PyChecker, CorrectTypesPassTheTypeMachine) {
  PyInterp I;
  PyChecker Checker(I);
  const PyApi *Api = activePyApi(I);
  PyObject *List = Api->PyList_New(&I, 0);
  PyObject *Item = Api->PyInt_FromLong(&I, 9);
  Api->PyList_Append(&I, List, Item);
  EXPECT_EQ(Api->PyInt_AsLong(&I, Api->PyList_GetItem(&I, List, 0)), 9);
  Api->Py_DecRef(&I, Item);
  Api->Py_DecRef(&I, List);
  EXPECT_TRUE(Checker.violations().empty());
}

TEST(PyChecker, SpecFileCoversEveryApiFunction) {
  // The synthesizer's input must describe each of the 23 table entries.
  EXPECT_EQ(pyFnSpecs().size(), 23u);
  EXPECT_EQ(pyFnSpec("PyList_GetItem")->Return, RefReturn::Borrowed);
  EXPECT_EQ(pyFnSpec("PyList_SetItem")->StealsParam, 2);
  EXPECT_EQ(pyFnSpec("Py_BuildValue")->Return, RefReturn::New);
  EXPECT_TRUE(pyFnSpec("PyErr_Clear")->ExceptionOblivious);
}

} // namespace
