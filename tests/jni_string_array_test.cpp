//===- tests/jni_string_array_test.cpp - String/array unit tests ---------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

using namespace jinn;
using namespace jinn::testing;

namespace {

struct JniStrArr : ::testing::Test {
  VmWorld W;
  JNIEnv *Env = W.env();
  const JNINativeInterface_ *Fns = W.env()->functions;
};

TEST_F(JniStrArr, NewStringUtfAndLengths) {
  jstring S = Fns->NewStringUTF(Env, "caf\xc3\xa9");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(Fns->GetStringLength(Env, S), 4);     // UTF-16 units
  EXPECT_EQ(Fns->GetStringUTFLength(Env, S), 5);  // UTF-8 bytes
}

TEST_F(JniStrArr, NewStringFromUtf16) {
  const jchar Chars[] = {'h', 'i', 0x4e2d};
  jstring S = Fns->NewString(Env, Chars, 3);
  EXPECT_EQ(Fns->GetStringLength(Env, S), 3);
  EXPECT_EQ(W.Vm.utf8Of(W.Rt.deref(Env, S)), "hi\xe4\xb8\xad");
}

TEST_F(JniStrArr, GetStringUTFCharsIsTerminatedButUtf16IsNot) {
  jstring S = Fns->NewStringUTF(Env, "abc");
  jboolean IsCopy = JNI_FALSE;
  const char *Utf = Fns->GetStringUTFChars(Env, S, &IsCopy);
  ASSERT_NE(Utf, nullptr);
  EXPECT_EQ(IsCopy, JNI_TRUE);
  EXPECT_STREQ(Utf, "abc"); // NUL-terminated, per the specification
  Fns->ReleaseStringUTFChars(Env, S, Utf);

  // GetStringChars makes NO terminator promise (pitfall 8): the tracked
  // buffer is exactly Len units long.
  const jchar *Chars = Fns->GetStringChars(Env, S, nullptr);
  const jni::BufferRecord *Record = W.Rt.findBuffer(Chars);
  ASSERT_NE(Record, nullptr);
  EXPECT_EQ(Record->Len, 3u);
  EXPECT_EQ(Record->Bytes, 3 * sizeof(jchar));
  Fns->ReleaseStringChars(Env, S, Chars);
  EXPECT_EQ(W.Rt.findBuffer(Chars), nullptr);
}

TEST_F(JniStrArr, StringRegionAndBounds) {
  jstring S = Fns->NewStringUTF(Env, "hello world");
  jchar Buf[5];
  Fns->GetStringRegion(Env, S, 6, 5, Buf);
  EXPECT_EQ(Buf[0], 'w');
  EXPECT_EQ(Buf[4], 'd');
  char Utf[6] = {};
  Fns->GetStringUTFRegion(Env, S, 0, 5, Utf);
  EXPECT_STREQ(Utf, "hello");
  Fns->GetStringRegion(Env, S, 8, 10, Buf);
  EXPECT_EQ(W.pendingClass(), "java/lang/StringIndexOutOfBoundsException");
}

TEST_F(JniStrArr, PinningBlocksMotionUntilRelease) {
  jstring S = Fns->NewStringUTF(Env, "pinned");
  const char *Utf = Fns->GetStringUTFChars(Env, S, nullptr);
  jvm::ObjectId Id = W.Rt.deref(Env, S);
  uint64_t Addr = W.Vm.heap().resolve(Id)->Address;
  W.Vm.gc();
  EXPECT_EQ(W.Vm.heap().resolve(Id)->Address, Addr); // pinned: no motion
  Fns->ReleaseStringUTFChars(Env, S, Utf);
  W.Vm.gc();
  EXPECT_NE(W.Vm.heap().resolve(Id)->Address, Addr);
}

TEST_F(JniStrArr, IntArrayElementsCopyBackModes) {
  jintArray Arr = Fns->NewIntArray(Env, 4);
  jint Init[4] = {1, 2, 3, 4};
  Fns->SetIntArrayRegion(Env, Arr, 0, 4, Init);

  jint *Elems = Fns->GetIntArrayElements(Env, Arr, nullptr);
  ASSERT_NE(Elems, nullptr);
  EXPECT_EQ(Elems[2], 3);
  Elems[2] = 33;

  // JNI_COMMIT copies back but keeps the buffer usable.
  Fns->ReleaseIntArrayElements(Env, Arr, Elems, JNI_COMMIT);
  jint Out[4];
  Fns->GetIntArrayRegion(Env, Arr, 0, 4, Out);
  EXPECT_EQ(Out[2], 33);
  Elems[3] = 44;
  // JNI_ABORT frees without copying.
  Fns->ReleaseIntArrayElements(Env, Arr, Elems, JNI_ABORT);
  Fns->GetIntArrayRegion(Env, Arr, 0, 4, Out);
  EXPECT_EQ(Out[3], 4);
}

TEST_F(JniStrArr, ReleaseModeZeroCopiesAndFrees) {
  jdoubleArray Arr = Fns->NewDoubleArray(Env, 2);
  jdouble *Elems = Fns->GetDoubleArrayElements(Env, Arr, nullptr);
  Elems[0] = 1.5;
  Elems[1] = -2.5;
  Fns->ReleaseDoubleArrayElements(Env, Arr, Elems, 0);
  jdouble Out[2];
  Fns->GetDoubleArrayRegion(Env, Arr, 0, 2, Out);
  EXPECT_DOUBLE_EQ(Out[0], 1.5);
  EXPECT_DOUBLE_EQ(Out[1], -2.5);
  EXPECT_EQ(W.Rt.outstandingBuffers(), 0u);
}

TEST_F(JniStrArr, ArrayRegionBounds) {
  jbyteArray Arr = Fns->NewByteArray(Env, 3);
  jbyte Buf[8] = {};
  Fns->GetByteArrayRegion(Env, Arr, 1, 3, Buf);
  EXPECT_EQ(W.pendingClass(), "java/lang/ArrayIndexOutOfBoundsException");
  W.main().Pending = jvm::ObjectId();
  Fns->SetByteArrayRegion(Env, Arr, -1, 2, Buf);
  EXPECT_EQ(W.pendingClass(), "java/lang/ArrayIndexOutOfBoundsException");
}

TEST_F(JniStrArr, ObjectArraysStoreAndCheck) {
  jclass Str = Fns->FindClass(Env, "java/lang/String");
  jstring Init = Fns->NewStringUTF(Env, "init");
  jobjectArray Arr = Fns->NewObjectArray(Env, 3, Str, Init);
  ASSERT_NE(Arr, nullptr);
  EXPECT_EQ(Fns->GetArrayLength(Env, Arr), 3);
  jobject E1 = Fns->GetObjectArrayElement(Env, Arr, 1);
  EXPECT_EQ(Fns->IsSameObject(Env, E1, Init), JNI_TRUE);

  jstring S = Fns->NewStringUTF(Env, "replacement");
  Fns->SetObjectArrayElement(Env, Arr, 0, S);
  EXPECT_EQ(Fns->IsSameObject(
                Env, Fns->GetObjectArrayElement(Env, Arr, 0), S),
            JNI_TRUE);

  // Array store check: a Throwable is not a String.
  jclass Rte = Fns->FindClass(Env, "java/lang/RuntimeException");
  jobject Wrong = Fns->AllocObject(Env, Rte);
  Fns->SetObjectArrayElement(Env, Arr, 2, Wrong);
  EXPECT_EQ(W.pendingClass(), "java/lang/ArrayStoreException");
  W.main().Pending = jvm::ObjectId();

  // Bounds.
  Fns->GetObjectArrayElement(Env, Arr, 3);
  EXPECT_EQ(W.pendingClass(), "java/lang/ArrayIndexOutOfBoundsException");
}

TEST_F(JniStrArr, ObjectArrayElementsSurviveGc) {
  jclass Str = Fns->FindClass(Env, "java/lang/String");
  jobjectArray Arr = Fns->NewObjectArray(Env, 1, Str, nullptr);
  jstring S = Fns->NewStringUTF(Env, "element");
  Fns->SetObjectArrayElement(Env, Arr, 0, S);
  Fns->DeleteLocalRef(Env, S);
  W.Vm.gc();
  jobject Out = Fns->GetObjectArrayElement(Env, Arr, 0);
  EXPECT_EQ(W.Vm.utf8Of(W.Rt.deref(Env, Out)), "element");
}

TEST_F(JniStrArr, CriticalSectionsTrackDepthAndPins) {
  jintArray Arr = Fns->NewIntArray(Env, 8);
  void *P1 = Fns->GetPrimitiveArrayCritical(Env, Arr, nullptr);
  ASSERT_NE(P1, nullptr);
  EXPECT_EQ(W.main().CriticalDepth, 1);
  // Nested acquire of a string critical is legal.
  jstring S = [&] {
    // Creating the string BEFORE entering would be cleaner; do it under
    // the window to verify the VM flags sensitive calls... actually
    // NewStringUTF here would be the pitfall; create before.
    return nullptr;
  }();
  (void)S;
  Fns->ReleasePrimitiveArrayCritical(Env, Arr, P1, 0);
  EXPECT_EQ(W.main().CriticalDepth, 0);
}

TEST_F(JniStrArr, SensitiveCallInsideCriticalIsDeadlockInProduction) {
  jintArray Arr = Fns->NewIntArray(Env, 8);
  void *P = Fns->GetPrimitiveArrayCritical(Env, Arr, nullptr);
  Fns->FindClass(Env, "java/lang/String"); // forbidden here
  EXPECT_TRUE(W.Vm.diags().has(IncidentKind::PotentialDeadlock));
  (void)P;
}

TEST_F(JniStrArr, StringCriticalPairing) {
  jstring S = Fns->NewStringUTF(Env, "critical");
  const jchar *P = Fns->GetStringCritical(Env, S, nullptr);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(W.main().CriticalDepth, 1);
  Fns->ReleaseStringCritical(Env, S, P);
  EXPECT_EQ(W.main().CriticalDepth, 0);
}

TEST_F(JniStrArr, DoubleReleaseIsInvalidArgument) {
  jintArray Arr = Fns->NewIntArray(Env, 2);
  jint *Elems = Fns->GetIntArrayElements(Env, Arr, nullptr);
  Fns->ReleaseIntArrayElements(Env, Arr, Elems, 0);
  Fns->ReleaseIntArrayElements(Env, Arr, Elems, 0);
  EXPECT_TRUE(W.Vm.diags().has(IncidentKind::UndefinedState)); // HotSpot row2
}

TEST_F(JniStrArr, TypeMismatchedArrayAccessIsUndefined) {
  jintArray Arr = Fns->NewIntArray(Env, 2);
  // Reading it as a long array is an invalid argument.
  Fns->GetLongArrayElements(
      Env, reinterpret_cast<jlongArray>(Arr), nullptr);
  EXPECT_TRUE(W.Vm.diags().has(IncidentKind::UndefinedState));
}

TEST_F(JniStrArr, GetArrayLengthOnNonArrayIsUndefined) {
  jstring S = Fns->NewStringUTF(Env, "not an array");
  Fns->GetArrayLength(Env, reinterpret_cast<jarray>(S));
  EXPECT_TRUE(W.Vm.diags().has(IncidentKind::UndefinedState));
}

// Parameterized sweep over all eight primitive array kinds: create, fill
// via region, read back via elements.
struct Kind {
  const char *Name;
  jvm::JType T;
};

class AllPrimArrays : public ::testing::TestWithParam<Kind> {};

TEST_P(AllPrimArrays, NewFillReadBack) {
  VmWorld W;
  JNIEnv *Env = W.env();
  jvm::ObjectId Arr = W.Vm.newPrimArray(GetParam().T, 5);
  jarray Handle = reinterpret_cast<jarray>(
      jinn::jni::wordToRef(W.main().newLocalRef(Arr)));
  EXPECT_EQ(Env->functions->GetArrayLength(Env, Handle), 5);
  jvm::HeapObject *HO = W.Vm.heap().resolve(Arr);
  EXPECT_EQ(HO->ElemKind, GetParam().T);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllPrimArrays,
    ::testing::Values(Kind{"boolean", jvm::JType::Boolean},
                      Kind{"byte", jvm::JType::Byte},
                      Kind{"char", jvm::JType::Char},
                      Kind{"short", jvm::JType::Short},
                      Kind{"int", jvm::JType::Int},
                      Kind{"long", jvm::JType::Long},
                      Kind{"float", jvm::JType::Float},
                      Kind{"double", jvm::JType::Double}),
    [](const ::testing::TestParamInfo<Kind> &Info) {
      return Info.param.Name;
    });

} // namespace
