//===- tests/rng_streams_test.cpp - SplitMix64 stream derivation ---------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzer hands every (machine, worker, sequence) its own generator
/// via SplitMix64::split. These tests pin the properties the fuzzer's
/// reproducibility depends on: splitting is a const derivation (the
/// parent is not perturbed, re-splitting replays bit-for-bit), sibling
/// streams are pairwise decorrelated, and nested splits stay independent
/// of the order in which they are taken.
///
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using jinn::SplitMix64;

namespace {

std::vector<uint64_t> draw(SplitMix64 Rng, size_t N) {
  std::vector<uint64_t> Out;
  for (size_t I = 0; I < N; ++I)
    Out.push_back(Rng.next());
  return Out;
}

TEST(RngStreams, SplitIsReplayable) {
  SplitMix64 Root(42);
  EXPECT_EQ(draw(Root.split(7), 64), draw(Root.split(7), 64));
  // Same id from an equal-seeded parent replays too.
  SplitMix64 Other(42);
  EXPECT_EQ(draw(Root.split(7), 64), draw(Other.split(7), 64));
}

TEST(RngStreams, SplitDoesNotPerturbTheParent) {
  SplitMix64 A(123), B(123);
  (void)A.split(0);
  (void)A.split(999);
  // A split a thousand streams, B none: identical output regardless.
  (void)A.streamSeed(5);
  EXPECT_EQ(draw(A, 32), draw(B, 32));
}

TEST(RngStreams, SiblingStreamsAreDistinct) {
  SplitMix64 Root(1);
  std::set<uint64_t> Seeds;
  for (uint64_t Id = 0; Id < 1024; ++Id)
    Seeds.insert(Root.streamSeed(Id));
  EXPECT_EQ(Seeds.size(), 1024u);
  // Adjacent ids must not produce correlated prefixes (the failure mode
  // of naive `seed + id` derivations).
  std::vector<uint64_t> S0 = draw(Root.split(0), 16);
  std::vector<uint64_t> S1 = draw(Root.split(1), 16);
  size_t Collisions = 0;
  for (size_t I = 0; I < S0.size(); ++I)
    Collisions += S0[I] == S1[I];
  EXPECT_EQ(Collisions, 0u);
}

TEST(RngStreams, StreamsDifferFromTheParentSequence) {
  SplitMix64 Root(9001);
  std::vector<uint64_t> Parent = draw(Root, 16);
  std::vector<uint64_t> Child = draw(SplitMix64(9001).split(0), 16);
  EXPECT_NE(Parent, Child);
}

TEST(RngStreams, NestedSplitsAreOrderIndependent) {
  SplitMix64 Root(7);
  // machine stream -> per-sequence stream, taken in two different orders.
  uint64_t A = Root.split(3).split(11).next();
  (void)Root.split(5);
  (void)Root.split(3).split(12);
  uint64_t B = Root.split(3).split(11).next();
  EXPECT_EQ(A, B);
}

TEST(RngStreams, GeneratorStillMatchesReferenceSequence) {
  // The base sequence is unchanged by the split extension: SplitMix64
  // from seed 0 must produce the published reference values.
  SplitMix64 Rng(0);
  EXPECT_EQ(Rng.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(Rng.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(Rng.next(), 0x06c45d188009454fULL);
}

} // namespace
