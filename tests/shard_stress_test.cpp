//===- tests/shard_stress_test.cpp - Striped shadow-state stress tests ---===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stress for the concurrency-scalable shadow-state layout: N OS threads
/// hammer create/use/delete of global references, monitors, and pinned
/// resources across shard boundaries, with and without deliberate
/// violations. The merged report list must match a single-threaded run of
/// the same logical scenarios, shard-count and report-buffer knobs must
/// not change what is reported, and the whole suite must run clean under
/// -fsanitize=thread (configure with -DJINN_TSAN=ON).
///
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

using namespace jinn;
using namespace jinn::testing;

namespace {

constexpr int NumThreads = 4;
constexpr int Iterations = 50;

/// JinnWorld with explicit agent options (shard count, report buffer).
class TunedJinnWorld : public VmWorld {
public:
  explicit TunedJinnWorld(agent::JinnOptions Options)
      : Host(Rt), Jinn(static_cast<agent::JinnAgent &>(Host.load(
                      std::make_unique<agent::JinnAgent>(
                          std::move(Options))))) {}

  jvmti::AgentHost Host;
  agent::JinnAgent &Jinn;
};

/// Balanced churn over the three striped resource machines; no violation.
void correctChurn(JNIEnv *Env, int Rounds) {
  const JNINativeInterface_ *Fns = Env->functions;
  for (int I = 0; I < Rounds; ++I) {
    jstring S = Fns->NewStringUTF(Env, "churn");
    jobject G = Fns->NewGlobalRef(Env, S);
    Fns->GetStringUTFLength(Env, static_cast<jstring>(G));
    if (Fns->MonitorEnter(Env, G) == JNI_OK)
      Fns->MonitorExit(Env, G);
    jintArray Arr = Fns->NewIntArray(Env, 4);
    if (jint *Elems = Fns->GetIntArrayElements(Env, Arr, nullptr))
      Fns->ReleaseIntArrayElements(Env, Arr, Elems, 0);
    Fns->DeleteLocalRef(Env, Arr);
    Fns->DeleteGlobalRef(Env, G);
    Fns->DeleteLocalRef(Env, S);
  }
}

/// One deterministic violation bundle: a global-ref double free, a pinned
/// double free, and a dangling local use — three reports, all with
/// thread-independent messages, resources balanced afterwards.
void violationBundle(JNIEnv *Env) {
  const JNINativeInterface_ *Fns = Env->functions;

  jstring S = Fns->NewStringUTF(Env, "doomed");
  jobject G = Fns->NewGlobalRef(Env, S);
  Fns->DeleteGlobalRef(Env, G);
  Fns->DeleteGlobalRef(Env, G); // violation 1: global double free
  Fns->ExceptionClear(Env);

  jintArray Arr = Fns->NewIntArray(Env, 8);
  jint *Elems = Fns->GetIntArrayElements(Env, Arr, nullptr);
  Fns->ReleaseIntArrayElements(Env, Arr, Elems, 0);
  Fns->ReleaseIntArrayElements(Env, Arr, Elems, 0); // violation 2: pin
  Fns->ExceptionClear(Env);
  Fns->DeleteLocalRef(Env, Arr);

  Fns->DeleteLocalRef(Env, S);
  Fns->GetStringUTFLength(Env, S); // violation 3: dangling local use
  Fns->ExceptionClear(Env);
}

/// Canonical order for comparing report lists across runs whose thread
/// interleavings differ.
std::vector<std::tuple<std::string, std::string, std::string, bool>>
canonical(const std::vector<agent::JinnReport> &Reports) {
  std::vector<std::tuple<std::string, std::string, std::string, bool>> Out;
  Out.reserve(Reports.size());
  for (const agent::JinnReport &Report : Reports)
    Out.emplace_back(Report.Machine, Report.Function, Report.Message,
                     Report.EndOfRun);
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// Runs \p Body on \p Threads attached OS threads (Body(Env) per thread),
/// or inline on the main thread Threads times when Threads == 0.
template <typename Fn>
void runOnThreads(VmWorld &W, int Threads, Fn Body) {
  JavaVM *Jvm = W.Rt.javaVm();
  std::atomic<int> Failures{0};
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&] {
      JNIEnv *Env = nullptr;
      if (Jvm->functions->AttachCurrentThread(Jvm, &Env, nullptr) != JNI_OK) {
        ++Failures;
        return;
      }
      Body(Env);
      Jvm->functions->DetachCurrentThread(Jvm);
    });
  for (std::thread &Th : Workers)
    Th.join();
  ASSERT_EQ(Failures.load(), 0);
}

TEST(ShardStress, CorrectChurnAcrossShardBoundariesIsSilent) {
  agent::JinnOptions Options;
  TunedJinnWorld W(std::move(Options));
  runOnThreads(W, NumThreads,
               [](JNIEnv *Env) { correctChurn(Env, Iterations); });
  W.Vm.shutdown();
  EXPECT_TRUE(W.Jinn.reporter().reports().empty());
  // The contention proxy was published for the striped machines.
  EXPECT_GT(W.Vm.diags().counter("jinn.lock_acquires.global-ref"), 0u);
  EXPECT_GT(W.Vm.diags().counter("jinn.lock_acquires.monitor"), 0u);
  EXPECT_GT(W.Vm.diags().counter("jinn.lock_acquires.pinned-resource"), 0u);
}

TEST(ShardStress, MergedReportListMatchesSingleThreadedRun) {
  // N threads, each running the same deterministic violation bundles...
  agent::JinnOptions MtOptions;
  TunedJinnWorld Mt(std::move(MtOptions));
  runOnThreads(Mt, NumThreads, [](JNIEnv *Env) {
    for (int I = 0; I < Iterations; ++I)
      violationBundle(Env);
  });
  Mt.Vm.shutdown();

  // ...must merge to exactly the reports of one thread running all of
  // them sequentially (same multiset; order is canonicalized because OS
  // interleavings differ across runs).
  agent::JinnOptions StOptions;
  TunedJinnWorld St(std::move(StOptions));
  for (int T = 0; T < NumThreads; ++T)
    for (int I = 0; I < Iterations; ++I)
      violationBundle(St.env());
  St.Vm.shutdown();

  auto MtList = canonical(Mt.Jinn.reporter().reports());
  auto StList = canonical(St.Jinn.reporter().reports());
  ASSERT_EQ(MtList.size(),
            static_cast<size_t>(NumThreads * Iterations * 3));
  EXPECT_EQ(MtList, StList);
}

TEST(ShardStress, ShardCountKnobDoesNotChangeReports) {
  std::vector<std::tuple<std::string, std::string, std::string, bool>>
      Lists[2];
  const unsigned ShardCounts[2] = {1, 256};
  for (int K = 0; K < 2; ++K) {
    agent::JinnOptions Options;
    Options.ShardCount = ShardCounts[K];
    TunedJinnWorld W(std::move(Options));
    runOnThreads(W, NumThreads, [](JNIEnv *Env) {
      correctChurn(Env, Iterations / 2);
      for (int I = 0; I < Iterations / 2; ++I)
        violationBundle(Env);
    });
    W.Vm.shutdown();
    Lists[K] = canonical(W.Jinn.reporter().reports());
    ASSERT_EQ(Lists[K].size(),
              static_cast<size_t>(NumThreads * (Iterations / 2) * 3));
  }
  EXPECT_EQ(Lists[0], Lists[1]);
}

TEST(ShardStress, TinyReportBufferFlushesEverything) {
  // Buffer capacity 1 forces a merge on every report; a huge capacity
  // defers every merge to the final snapshot. Same list either way.
  std::vector<std::tuple<std::string, std::string, std::string, bool>>
      Lists[2];
  const size_t Buffers[2] = {1, 1u << 20};
  for (int K = 0; K < 2; ++K) {
    agent::JinnOptions Options;
    Options.ReportBufferSize = Buffers[K];
    TunedJinnWorld W(std::move(Options));
    runOnThreads(W, NumThreads, [](JNIEnv *Env) {
      for (int I = 0; I < Iterations; ++I)
        violationBundle(Env);
    });
    W.Vm.shutdown();
    Lists[K] = canonical(W.Jinn.reporter().reports());
    ASSERT_EQ(Lists[K].size(),
              static_cast<size_t>(NumThreads * Iterations * 3));
  }
  EXPECT_EQ(Lists[0], Lists[1]);
}

TEST(ShardStress, SingleThreadProgramOrderIsPreserved) {
  // On one OS thread the merged list must equal exact program order (the
  // per-thread stamps are strictly monotonic), not just the same multiset.
  agent::JinnOptions Options;
  Options.ReportBufferSize = 2; // exercise mid-run flushes too
  TunedJinnWorld W(std::move(Options));
  for (int I = 0; I < 5; ++I)
    violationBundle(W.env());
  W.Vm.shutdown();
  const std::vector<agent::JinnReport> &Reports = W.Jinn.reporter().reports();
  ASSERT_EQ(Reports.size(), 15u);
  for (int I = 0; I < 5; ++I) {
    EXPECT_EQ(Reports[I * 3 + 0].Machine, "Global or weak global reference");
    EXPECT_EQ(Reports[I * 3 + 1].Machine,
              "Pinned or copied string or array");
    EXPECT_EQ(Reports[I * 3 + 2].Machine, "Local reference");
  }
}

} // namespace
