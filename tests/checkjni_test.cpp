//===- tests/checkjni_test.cpp - -Xcheck:jni emulation unit tests --------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checkjni/XcheckAgent.h"
#include "scenarios/Scenarios.h"

#include <gtest/gtest.h>

using namespace jinn;
using namespace jinn::checkjni;

namespace {

TEST(BehaviorFor, EncodesTable1Columns) {
  // Row 1: warning / error.
  EXPECT_EQ(behaviorFor(Vendor::HotSpot, "Exception state", "", false),
            CheckerBehavior::Warning);
  EXPECT_EQ(behaviorFor(Vendor::J9, "Exception state", "", false),
            CheckerBehavior::Error);
  // Row 14: error / miss (J9 crashes in production instead).
  EXPECT_EQ(behaviorFor(Vendor::HotSpot, "JNIEnv* state", "", false),
            CheckerBehavior::Error);
  EXPECT_EQ(behaviorFor(Vendor::J9, "JNIEnv* state", "", false),
            CheckerBehavior::Miss);
  // Row 16: warning / error.
  EXPECT_EQ(behaviorFor(Vendor::HotSpot, "Critical-section state", "",
                        false),
            CheckerBehavior::Warning);
  EXPECT_EQ(behaviorFor(Vendor::J9, "Critical-section state", "", false),
            CheckerBehavior::Error);
  // Row 3: error / error.
  for (Vendor V : {Vendor::HotSpot, Vendor::J9})
    EXPECT_EQ(behaviorFor(V, "Fixed typing", "", false),
              CheckerBehavior::Error);
  // Rows 2 and 9: both miss.
  for (Vendor V : {Vendor::HotSpot, Vendor::J9}) {
    EXPECT_EQ(behaviorFor(V, "Nullness", "", false), CheckerBehavior::Miss);
    EXPECT_EQ(behaviorFor(V, "Entity-specific typing", "", false),
              CheckerBehavior::Miss);
    EXPECT_EQ(behaviorFor(V, "Access control", "", false),
              CheckerBehavior::Miss);
  }
  // Row 13: dangling references are errors for both.
  for (Vendor V : {Vendor::HotSpot, Vendor::J9})
    EXPECT_EQ(behaviorFor(V, "Local reference", "dangling reference",
                          false),
              CheckerBehavior::Error);
  // Rows 11/12: leaks and overflow — miss / warning.
  EXPECT_EQ(behaviorFor(Vendor::HotSpot, "Local reference", "overflow",
                        true),
            CheckerBehavior::Miss);
  EXPECT_EQ(behaviorFor(Vendor::J9, "Local reference", "overflow", true),
            CheckerBehavior::Warning);
  EXPECT_EQ(behaviorFor(Vendor::HotSpot, "Monitor", "", true),
            CheckerBehavior::Miss);
  EXPECT_EQ(behaviorFor(Vendor::J9, "Monitor", "", true),
            CheckerBehavior::Warning);
}

TEST(XcheckAgent, NamesFollowTheVendor) {
  XcheckAgent Hs(Vendor::HotSpot);
  XcheckAgent J9(Vendor::J9);
  EXPECT_STREQ(Hs.name(), "xcheck:hotspot");
  EXPECT_STREQ(J9.name(), "xcheck:j9");
  EXPECT_STREQ(vendorName(Vendor::HotSpot), "hotspot");
}

TEST(XcheckAgent, HotSpotWarningKeepsTheProgramRunning) {
  scenarios::WorldConfig Config;
  Config.Checker = scenarios::CheckerKind::Xcheck;
  scenarios::ScenarioWorld World(Config);
  JNIEnv *Env = World.env();
  jclass Rte = Env->functions->FindClass(Env, "java/lang/RuntimeException");
  Env->functions->ThrowNew(Env, Rte, "pending");
  // The sensitive call is flagged with a warning AND still executes
  // (HotSpot prints and continues): FindClass returns a value.
  jclass Out = Env->functions->FindClass(Env, "java/lang/String");
  EXPECT_NE(Out, nullptr);
  ASSERT_EQ(World.Xcheck->reporter().detections().size(), 1u);
  EXPECT_EQ(World.Xcheck->reporter().detections()[0].Behavior,
            CheckerBehavior::Warning);
  EXPECT_FALSE(World.Vm.mainThread().Poisoned);
}

TEST(XcheckAgent, J9ErrorAbortsTheVm) {
  scenarios::WorldConfig Config;
  Config.Flavor = jvm::VmFlavor::J9Like;
  Config.Checker = scenarios::CheckerKind::Xcheck;
  scenarios::ScenarioWorld World(Config);
  JNIEnv *Env = World.env();
  jclass Rte = Env->functions->FindClass(Env, "java/lang/RuntimeException");
  Env->functions->ThrowNew(Env, Rte, "pending");
  jclass Out = Env->functions->FindClass(Env, "java/lang/String");
  EXPECT_EQ(Out, nullptr); // suppressed: the VM aborted
  EXPECT_TRUE(World.Vm.mainThread().Poisoned);
}

TEST(XcheckAgent, NonFatalModeDiagnosesAndContinues) {
  // The "-Xcheck:jni:nonfatal" option J9's own abort banner recommends.
  // Run the J9-style checker on an Ignore-flavored VM so the continued
  // execution is observable (on a J9-flavored VM the program continues
  // into the very undefined behavior the check warned about and crashes —
  // the point of nonfatal being a diagnosis aid, not a safety net).
  jvm::VmOptions Options;
  Options.Flavor = jvm::VmFlavor::HotSpotLike;
  jvm::Vm Vm(Options);
  jni::JniRuntime Rt(Vm);
  jvmti::AgentHost Host(Rt);
  auto &Agent = static_cast<XcheckAgent &>(Host.load(
      std::make_unique<XcheckAgent>(Vendor::J9, /*NonFatal=*/true)));
  EXPECT_STREQ(Agent.name(), "xcheck:j9:nonfatal");

  JNIEnv *Env = Rt.mainEnv();
  jclass Rte = Env->functions->FindClass(Env, "java/lang/RuntimeException");
  Env->functions->ThrowNew(Env, Rte, "pending");
  jclass Out = Env->functions->FindClass(Env, "java/lang/String");
  // Diagnosed as an error but execution continued (the call ran).
  ASSERT_GE(Agent.reporter().detections().size(), 1u);
  EXPECT_EQ(Agent.reporter().detections()[0].Behavior,
            CheckerBehavior::Error);
  EXPECT_NE(Out, nullptr);
  EXPECT_FALSE(Vm.mainThread().Poisoned);
}

TEST(XcheckAgent, CleanRunsProduceNoDetections) {
  for (auto Flavor : {jvm::VmFlavor::HotSpotLike, jvm::VmFlavor::J9Like}) {
    scenarios::WorldConfig Config;
    Config.Flavor = Flavor;
    Config.Checker = scenarios::CheckerKind::Xcheck;
    scenarios::ScenarioWorld World(Config);
    JNIEnv *Env = World.env();
    jstring S = Env->functions->NewStringUTF(Env, "ok");
    Env->functions->GetStringUTFLength(Env, S);
    jobject G = Env->functions->NewGlobalRef(Env, S);
    Env->functions->DeleteGlobalRef(Env, G);
    Env->functions->DeleteLocalRef(Env, S);
    World.shutdown();
    EXPECT_TRUE(World.Xcheck->reporter().detections().empty());
  }
}

TEST(XcheckAgent, J9LeakWarningsAtVmDeathOnly) {
  scenarios::WorldConfig Config;
  Config.Flavor = jvm::VmFlavor::J9Like;
  Config.Checker = scenarios::CheckerKind::Xcheck;
  scenarios::ScenarioWorld World(Config);
  JNIEnv *Env = World.env();
  jstring S = Env->functions->NewStringUTF(Env, "leak");
  Env->functions->NewGlobalRef(Env, S);
  EXPECT_TRUE(World.Xcheck->reporter().detections().empty());
  World.shutdown();
  ASSERT_EQ(World.Xcheck->reporter().detections().size(), 1u);
  EXPECT_EQ(World.Xcheck->reporter().detections()[0].Machine,
            "Global or weak global reference");
}

} // namespace
