//===- tests/jinn_smoke_test.cpp - End-to-end smoke tests ----------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"

using namespace jinn;
using namespace jinn::testing;

TEST(JinnSmoke, CleanProgramProducesNoReports) {
  JinnWorld W;
  JNIEnv *Env = W.env();
  jclass Str = Env->functions->FindClass(Env, "java/lang/String");
  ASSERT_NE(Str, nullptr);
  jstring S = Env->functions->NewStringUTF(Env, "hello");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(Env->functions->GetStringUTFLength(Env, S), 5);
  EXPECT_EQ(W.reportCount(), 0u);
  EXPECT_EQ(W.pendingClass(), "");
}

TEST(JinnSmoke, PendingExceptionOnSensitiveCallIsReported) {
  JinnWorld W;
  JNIEnv *Env = W.env();
  jclass Rte = Env->functions->FindClass(Env, "java/lang/RuntimeException");
  ASSERT_NE(Rte, nullptr);
  ASSERT_EQ(Env->functions->ThrowNew(Env, Rte, "checked by native code"),
            JNI_OK);
  // An exception is now pending; FindClass is exception-sensitive.
  jclass C2 = Env->functions->FindClass(Env, "java/lang/String");
  EXPECT_EQ(C2, nullptr);
  ASSERT_EQ(W.reportCount(), 1u);
  EXPECT_EQ(W.firstReportMachine(), "Exception state");
  EXPECT_EQ(W.pendingClass(), "jinn/JNIAssertionFailure");
  // The original exception is the cause.
  jvm::ObjectId Cause = W.Vm.throwableCause(W.main().Pending);
  EXPECT_EQ(W.Vm.klassOf(Cause)->name(), "java/lang/RuntimeException");
}

TEST(JinnSmoke, DanglingLocalRefAcrossNativeCallsIsReported) {
  // A reduction of the GNOME bug (paper Figure 1): a native method stores
  // a local reference in C state; a later native call uses it.
  JinnWorld W;
  static jobject Escaped; // the C heap cell (cb->receiver)
  Escaped = nullptr;

  jvm::ClassDef Def;
  Def.Name = "Callback";
  Def.nativeMethod("bind", "(Ljava/lang/String;)V", /*IsStatic=*/true,
                   "Callback.java:3");
  Def.nativeMethod("fire", "()V", /*IsStatic=*/true, "Callback.java:9");
  W.define(Def);

  W.bindNative("Callback", "bind", "(Ljava/lang/String;)V",
               [](JNIEnv *, jobject, const jvalue *Args) -> jvalue {
                 Escaped = Args[0].l; // escapes the native frame
                 jvalue R;
                 R.j = 0;
                 return R;
               });
  W.bindNative("Callback", "fire", "()V",
               [](JNIEnv *Env, jobject, const jvalue *) -> jvalue {
                 // BUG: uses the dead local reference.
                 Env->functions->GetStringUTFLength(
                     Env, static_cast<jstring>(Escaped));
                 jvalue R;
                 R.j = 0;
                 return R;
               });

  jvm::ObjectId Arg = W.Vm.newString("receiver");
  W.call("Callback", "bind", "(Ljava/lang/String;)V",
         jvm::Value::makeNull(), {jvm::Value::makeRef(Arg)});
  EXPECT_EQ(W.reportCount(), 0u);

  W.call("Callback", "fire", "()V");
  ASSERT_GE(W.reportCount(), 1u);
  EXPECT_EQ(W.firstReportMachine(), "Local reference");
  EXPECT_NE(W.reports().front().Message.find("dangling"), std::string::npos);
}

TEST(JinnSmoke, ProductionRunCrashesWhereJinnThrows) {
  // The same dangling-reference mistake without Jinn, on a J9-like VM,
  // (simulated-)crashes: Table 1 row 13.
  jvm::VmOptions Options;
  Options.Flavor = jvm::VmFlavor::J9Like;
  VmWorld W(Options);
  JNIEnv *Env = W.env();

  jstring S = Env->functions->NewStringUTF(Env, "x");
  Env->functions->DeleteLocalRef(Env, S);
  Env->functions->GetStringUTFLength(Env, S);
  EXPECT_TRUE(W.Vm.diags().has(IncidentKind::SimulatedCrash));
  EXPECT_TRUE(W.main().Poisoned);
}
