//===- tests/jinn_agent_test.cpp - Agent options & integration tests -----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"
#include "checkjni/XcheckAgent.h"

using namespace jinn;
using namespace jinn::testing;

namespace {

TEST(JinnAgentOptions, AblatedAgentOnlyRunsSelectedMachines) {
  VmWorld W;
  jvmti::AgentHost Host(W.Rt);
  agent::JinnOptions Options;
  Options.EnabledMachines = {"Nullness"};
  auto &Jinn = static_cast<agent::JinnAgent &>(
      Host.load(std::make_unique<agent::JinnAgent>(std::move(Options))));
  ASSERT_EQ(Jinn.activeMachines().size(), 1u);
  EXPECT_EQ(Jinn.activeMachines()[0]->spec().Name, "Nullness");

  JNIEnv *Env = W.env();
  // A nullness bug is caught...
  Env->functions->GetStringUTFChars(Env, nullptr, nullptr);
  EXPECT_EQ(Jinn.reporter().countFor("Nullness"), 1u);
  W.main().Pending = jvm::ObjectId();
  // ...but a dangling local reference slips through to the production
  // policy (the local-reference machine is disabled).
  jstring S = Env->functions->NewStringUTF(Env, "x");
  Env->functions->DeleteLocalRef(Env, S);
  Env->functions->GetStringUTFLength(Env, S);
  EXPECT_EQ(Jinn.reporter().countFor("Local reference"), 0u);
  EXPECT_TRUE(W.Vm.diags().has(IncidentKind::UndefinedState) ||
              W.Vm.diags().has(IncidentKind::SimulatedCrash));
}

TEST(JinnAgentOptions, FullAgentActivatesAllFourteenMachines) {
  JinnWorld W;
  EXPECT_EQ(W.Jinn.activeMachines().size(), 14u);
  EXPECT_EQ(W.Jinn.stats().MachineCount, 14u);
}

TEST(JinnAgent, DebuggerHookFiresAtThePointOfFailure) {
  // Paper §2.3: a debugger catches the exception at the faulting call and
  // can inspect the full program state.
  JinnWorld W;
  std::vector<std::string> HookLog;
  W.Jinn.reporter().OnViolation =
      [&](const agent::JinnReport &Report) {
        // At hook time the faulting thread still has its full stack.
        HookLog.push_back(Report.Machine + " @ " + Report.Function);
      };
  JNIEnv *Env = W.env();
  jstring S = Env->functions->NewStringUTF(Env, "x");
  Env->functions->DeleteLocalRef(Env, S);
  Env->functions->GetStringUTFLength(Env, S);
  ASSERT_EQ(HookLog.size(), 1u);
  EXPECT_EQ(HookLog[0], "Local reference @ GetStringUTFLength");
}

TEST(JinnAgent, TwoAgentsCanCoexist) {
  // Jinn plus an -Xcheck emulation on the same VM: both observe the bug.
  VmWorld W;
  jvmti::AgentHost Host(W.Rt);
  auto &Jinn = static_cast<agent::JinnAgent &>(
      Host.load(std::make_unique<agent::JinnAgent>()));
  auto &Xcheck = static_cast<checkjni::XcheckAgent &>(Host.load(
      std::make_unique<checkjni::XcheckAgent>(checkjni::Vendor::HotSpot)));

  JNIEnv *Env = W.env();
  jclass Rte = Env->functions->FindClass(Env, "java/lang/RuntimeException");
  Env->functions->ThrowNew(Env, Rte, "pending");
  Env->functions->FindClass(Env, "java/lang/Object");
  // Both agents observe the same failure: the ad-hoc checker's
  // whole-table hook warns first (HotSpot style: print and continue),
  // then Jinn's synthesized check throws and suppresses the call.
  ASSERT_EQ(Xcheck.reporter().detections().size(), 1u);
  EXPECT_EQ(Xcheck.reporter().detections()[0].Behavior,
            checkjni::CheckerBehavior::Warning);
  EXPECT_EQ(Jinn.reporter().countFor("Exception state"), 1u);
  EXPECT_EQ(W.pendingClass(), "jinn/JNIAssertionFailure");
}

TEST(JinnAgent, ReloadOnFreshVmStartsClean) {
  for (int Round = 0; Round < 3; ++Round) {
    JinnWorld W;
    JNIEnv *Env = W.env();
    jstring S = Env->functions->NewStringUTF(Env, "x");
    Env->functions->GetStringUTFLength(Env, S);
    W.Vm.shutdown();
    EXPECT_EQ(W.reportCount(), 0u) << "round " << Round;
  }
}

TEST(JinnAgent, SynthesisStatsAreStable) {
  JinnWorld A, B;
  EXPECT_EQ(A.Jinn.stats().instrumentationPoints(),
            B.Jinn.stats().instrumentationPoints());
  EXPECT_EQ(A.Jinn.stats().JniPreHooks, B.Jinn.stats().JniPreHooks);
  EXPECT_GT(A.Jinn.stats().JniPreHooks, 1000u); // the cross product is big
}

} // namespace
