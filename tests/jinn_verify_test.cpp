//===- tests/jinn_verify_test.cpp - Static verifier (analysis/verify) ----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static-vs-dynamic agreement contract: abstract interpretation of
/// lifted crossing programs must reproduce the dynamic checker's verdicts
/// byte-for-byte on straight-line programs, classify may vs must across
/// branches and loops, and derive the pushdown (counter-guarded) checks
/// from the interval domain alone — without leaning on the replay hints.
///
//===----------------------------------------------------------------------===//

#include "analysis/verify/Examples.h"
#include "analysis/verify/Interp.h"
#include "analysis/verify/Lift.h"
#include "fuzz/Generator.h"
#include "scenarios/Scenarios.h"
#include "trace/TraceFile.h"

#include "gtest/gtest.h"

#include <cstdio>

using namespace jinn;
using namespace jinn::analysis::verify;

namespace {

void expectSameReports(const std::vector<agent::JinnReport> &A,
                       const std::vector<agent::JinnReport> &B,
                       const std::string &Context) {
  ASSERT_EQ(A.size(), B.size()) << Context;
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Machine, B[I].Machine) << Context << " report " << I;
    EXPECT_EQ(A[I].Function, B[I].Function) << Context << " report " << I;
    EXPECT_EQ(A[I].Message, B[I].Message) << Context << " report " << I;
    EXPECT_EQ(A[I].EndOfRun, B[I].EndOfRun) << Context << " report " << I;
  }
}

bool machineIn(const std::vector<agent::JinnReport> &Reports,
               const std::string &Machine) {
  for (const agent::JinnReport &R : Reports)
    if (R.Machine == Machine)
      return true;
  return false;
}

/// Every Table-1 micro: the static must-verdict equals the dynamic report
/// list byte-for-byte; detectable micros are flagged, fixed variants and
/// the boundary-undetectable pitfall are not; nothing is classified may.
TEST(JinnVerify, MicroMustBugAgreement) {
  std::vector<analysis::MachineModel> Models = verifierModels();
  for (const scenarios::MicroInfo &Info : scenarios::allMicrobenchmarks()) {
    LiftedProgram P = liftMicro(Info.Id);
    Verdict V = verifyCfg(P.Cfg, Models);
    expectSameReports(V.Must, P.Oracle, Info.ClassName);
    EXPECT_TRUE(V.May.empty()) << Info.ClassName;
    EXPECT_EQ(Info.DetectableAtBoundary, !V.Must.empty()) << Info.ClassName;
  }
}

/// The pushdown micros' reports derive from the interval domain alone:
/// with every pushdown-machine hint stripped from the lifted program, the
/// must-verdict still carries the exact report text.
TEST(JinnVerify, PushdownAbstractDerivation) {
  std::vector<analysis::MachineModel> Models = verifierModels();
  struct Case {
    scenarios::MicroId Id;
    const char *Machine;
  } Cases[] = {
      {scenarios::MicroId::PopWithoutPush, "Local-frame nesting"},
      {scenarios::MicroId::MonitorExitUnmatched, "Monitor balance"},
      {scenarios::MicroId::CriticalNested, "Critical-section nesting"},
  };
  for (const Case &C : Cases) {
    LiftedProgram P = liftMicro(C.Id);
    ASSERT_EQ(P.Oracle.size(), 1u) << C.Machine;
    for (BasicBlock &B : P.Cfg.Blocks)
      for (CrossEvent &Ev : B.Events)
        Ev.Witnessed.clear();
    Verdict V = verifyCfg(P.Cfg, Models);
    expectSameReports(V.Must, P.Oracle, C.Machine);
    EXPECT_GE(V.Stats.AbstractReports, 1u) << C.Machine;
    // Stripped hints: nothing to confirm against.
    EXPECT_EQ(V.Stats.AbstractConfirmed, 0u) << C.Machine;
  }

  // With the hints kept, the abstract derivation is cross-validated.
  LiftedProgram P = liftMicro(scenarios::MicroId::PopWithoutPush);
  Verdict V = verifyCfg(P.Cfg, Models);
  EXPECT_GE(V.Stats.AbstractConfirmed, 1u);
}

/// Branch joins classify may (one arm) vs must (every arm), and loops
/// reach a fixpoint — with widening where the counter would otherwise
/// grow without bound. The example set declares its own expectations.
TEST(JinnVerify, BranchingMayVsMustAndLoops) {
  std::vector<analysis::MachineModel> Models = verifierModels();
  for (const VerifyExample &E : verifyExamples()) {
    Verdict V = verifyCfg(E.Cfg, Models);
    EXPECT_EQ(E.ExpectMust, machineIn(V.Must, E.Machine)) << E.Cfg.Name;
    EXPECT_EQ(E.ExpectMay, machineIn(V.May, E.Machine)) << E.Cfg.Name;
    if (!E.ExpectMust && !E.ExpectMay) {
      EXPECT_FALSE(V.flagged()) << E.Cfg.Name;
    }
    if (E.ExpectWidening) {
      EXPECT_GT(V.Stats.Widenings, 0u) << E.Cfg.Name;
    }
    EXPECT_GT(V.Stats.BlockIterations, 0u) << E.Cfg.Name;
  }
}

/// Generator-driven fuzz paths: clean sequences verify clean; every bug
/// op's path produces a must-verdict byte-identical to the dynamic
/// oracle; nothing on these single-path programs is may.
TEST(JinnVerify, CorpusAgreement) {
  std::vector<analysis::MachineModel> Models = verifierModels();
  fuzz::Generator Gen(0x7465737453eedULL);

  for (const char *Machine :
       {"Local-frame nesting", "Monitor balance",
        "Critical-section nesting", "Local reference"}) {
    LiftedProgram P = liftJniSequence(Gen.cleanJniSequence(Machine, 1));
    Verdict V = verifyCfg(P.Cfg, Models);
    EXPECT_TRUE(P.Oracle.empty()) << Machine;
    EXPECT_FALSE(V.flagged()) << Machine;
  }

  for (const char *Bug :
       {"bug_pop_unbalanced", "bug_monitor_exit_unmatched",
        "bug_critical_nested", "bug_exc_pending"}) {
    LiftedProgram P = liftJniSequence(Gen.bugJniSequence(Bug, 2));
    Verdict V = verifyCfg(P.Cfg, Models);
    EXPECT_FALSE(P.Oracle.empty()) << Bug;
    expectSameReports(V.Must, P.Oracle, Bug);
    EXPECT_TRUE(V.May.empty()) << Bug;
  }
}

/// A trace round-tripped through the binary file format and lifted
/// without replay hints (the foreign-trace path) still yields the
/// pushdown must-bug purely from the interval domain.
TEST(JinnVerify, ForeignTraceFileVerdict) {
  scenarios::WorldConfig Config;
  Config.Checker = scenarios::CheckerKind::Jinn;
  Config.JinnMode = agent::TraceMode::RecordAndReplay;
  scenarios::ScenarioWorld World(Config);
  scenarios::runMicrobenchmark(scenarios::MicroId::PopWithoutPush, World);
  World.shutdown();
  trace::Trace Recorded = World.Jinn->recorder()->collect();

  std::string Path = testing::TempDir() + "jinn_verify_roundtrip.jinntrace";
  std::string Err;
  ASSERT_TRUE(trace::writeTraceFile(Recorded, Path, &Err)) << Err;
  trace::Trace FromDisk;
  ASSERT_TRUE(trace::readTraceFile(FromDisk, Path, &Err)) << Err;
  std::remove(Path.c_str());

  ClientCfg Cfg = liftTrace(FromDisk, World.Vm, "roundtrip",
                            /*PinWitnessed=*/false);
  Verdict V = verifyCfg(Cfg, verifierModels());
  ASSERT_EQ(V.Must.size(), 1u);
  EXPECT_EQ(V.Must.front().Machine, "Local-frame nesting");
  EXPECT_EQ(V.Must.front().Function, "PopLocalFrame");
  EXPECT_EQ(V.Must.front().Message,
            "PopLocalFrame without a matching PushLocalFrame in "
            "PopLocalFrame.");
  EXPECT_TRUE(V.May.empty());
}

/// The lifter's success gating: a micro whose balance calls all succeed
/// lifts with Success on those calls, and the balanced fixed variants
/// stay verdict-free even though they move the counters.
TEST(JinnVerify, LiftedSuccessGating) {
  LiftedProgram P = liftMicro(scenarios::MicroId::MonitorExitUnmatchedFixed);
  size_t Enters = 0, Exits = 0;
  for (const BasicBlock &B : P.Cfg.Blocks)
    for (const CrossEvent &Ev : B.Events) {
      if (Ev.K != CrossEvent::Kind::Call)
        continue;
      if (Ev.Fn == jni::FnId::MonitorEnter && Ev.Success)
        ++Enters;
      if (Ev.Fn == jni::FnId::MonitorExit && Ev.Success)
        ++Exits;
    }
  EXPECT_GT(Enters, 0u);
  EXPECT_EQ(Enters, Exits);
  Verdict V = verifyCfg(P.Cfg, verifierModels());
  EXPECT_FALSE(V.flagged());
}

} // namespace
