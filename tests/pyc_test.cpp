//===- tests/pyc_test.cpp - Python/C substrate unit tests ----------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pyc/PyRuntime.h"

#include <gtest/gtest.h>

using namespace jinn;
using namespace jinn::pyc;

namespace {

struct PycTest : ::testing::Test {
  PyInterp I;
  const PyApi *Api = defaultPyApi();
};

TEST_F(PycTest, IntRoundTrip) {
  PyObject *Obj = Api->PyInt_FromLong(&I, 12345);
  ASSERT_NE(Obj, nullptr);
  EXPECT_EQ(Obj->RefCnt, 1);
  EXPECT_EQ(Api->PyInt_AsLong(&I, Obj), 12345);
  Api->Py_DecRef(&I, Obj);
  EXPECT_FALSE(I.isLive(Obj));
}

TEST_F(PycTest, StringRoundTrip) {
  PyObject *Obj = Api->PyString_FromString(&I, "spam");
  EXPECT_STREQ(Api->PyString_AsString(&I, Obj), "spam");
  Api->Py_DecRef(&I, Obj);
}

TEST_F(PycTest, ListSetItemStealsAndGetItemBorrows) {
  PyObject *List = Api->PyList_New(&I, 1);
  PyObject *Item = Api->PyInt_FromLong(&I, 7);
  ASSERT_EQ(Api->PyList_SetItem(&I, List, 0, Item), 0);
  EXPECT_EQ(Item->RefCnt, 1); // stolen, not incremented
  PyObject *Borrowed = Api->PyList_GetItem(&I, List, 0);
  EXPECT_EQ(Borrowed, Item);
  EXPECT_EQ(Item->RefCnt, 1); // borrowing does not increment
  Api->Py_DecRef(&I, List);
  EXPECT_FALSE(I.isLive(Item)); // the container released its item
}

TEST_F(PycTest, AppendTakesItsOwnReference) {
  PyObject *List = Api->PyList_New(&I, 0);
  PyObject *Item = Api->PyInt_FromLong(&I, 7);
  ASSERT_EQ(Api->PyList_Append(&I, List, Item), 0);
  EXPECT_EQ(Item->RefCnt, 2);
  Api->Py_DecRef(&I, Item);
  EXPECT_TRUE(I.isLive(Item)); // the list still owns it
  Api->Py_DecRef(&I, List);
  EXPECT_FALSE(I.isLive(Item));
}

TEST_F(PycTest, BuildValueListOfStrings) {
  PyObject *List = Api->Py_BuildValue(&I, "[sss]", "a", "b", "c");
  ASSERT_NE(List, nullptr);
  EXPECT_EQ(List->Kind, PyKind::List);
  ASSERT_EQ(Api->PyList_Size(&I, List), 3);
  EXPECT_STREQ(
      Api->PyString_AsString(&I, Api->PyList_GetItem(&I, List, 1)), "b");
  Api->Py_DecRef(&I, List);
  EXPECT_EQ(I.liveCount(), 0u);
}

TEST_F(PycTest, BuildValueNestedTuple) {
  PyObject *Tuple = Api->Py_BuildValue(&I, "(i[ss])", 42L, "x", "y");
  ASSERT_NE(Tuple, nullptr);
  EXPECT_EQ(Tuple->Kind, PyKind::Tuple);
  PyObject *Inner = Api->PyTuple_GetItem(&I, Tuple, 1);
  EXPECT_EQ(Inner->Kind, PyKind::List);
  EXPECT_EQ(Api->PyList_Size(&I, Inner), 2);
  Api->Py_DecRef(&I, Tuple);
  EXPECT_EQ(I.liveCount(), 0u);
}

TEST_F(PycTest, SlotReuseMakesDanglingPointersAliasNewObjects) {
  PyObject *Old = Api->PyInt_FromLong(&I, 1);
  uint32_t OldGen = Old->Gen;
  Api->Py_DecRef(&I, Old);
  PyObject *Reused = Api->PyString_FromString(&I, "recycled");
  EXPECT_EQ(Reused, Old); // the freed slot was recycled
  EXPECT_GT(Reused->Gen, OldGen);
  Api->Py_DecRef(&I, Reused);
}

TEST_F(PycTest, DoubleDecrefIsASimulatedCrash) {
  PyObject *Obj = Api->PyInt_FromLong(&I, 1);
  Api->Py_DecRef(&I, Obj);
  Api->Py_DecRef(&I, Obj);
  EXPECT_TRUE(I.diags().has(IncidentKind::SimulatedCrash));
}

TEST_F(PycTest, ExceptionStateRoundTrip) {
  EXPECT_EQ(Api->PyErr_Occurred(&I), nullptr);
  Api->PyErr_SetString(&I, I.excTypeError(), "bad argument");
  EXPECT_EQ(Api->PyErr_Occurred(&I), I.excTypeError());
  EXPECT_EQ(I.PendingMessage, "bad argument");
  Api->PyErr_Clear(&I);
  EXPECT_EQ(Api->PyErr_Occurred(&I), nullptr);
}

TEST_F(PycTest, GilSaveRestore) {
  EXPECT_EQ(I.GilDepth, 1);
  void *State = Api->PyEval_SaveThread(&I);
  EXPECT_EQ(I.GilDepth, 0);
  Api->PyEval_RestoreThread(&I, State);
  EXPECT_EQ(I.GilDepth, 1);
}

TEST_F(PycTest, ImmortalSingletonsSurviveDecref) {
  Api->Py_DecRef(&I, I.none());
  EXPECT_TRUE(I.isLive(I.none()));
  EXPECT_TRUE(I.diags().has(IncidentKind::SimulatedCrash));
}

} // namespace
