//===- tests/vm_test.cpp - VM core unit tests ----------------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jvm/Vm.h"

#include <gtest/gtest.h>

using namespace jinn;
using namespace jinn::jvm;

namespace {

struct VmTest : ::testing::Test {
  Vm V;
  JThread &Main = V.mainThread();
};

TEST_F(VmTest, BootstrapClassesExist) {
  for (const char *Name :
       {"java/lang/Object", "java/lang/Class", "java/lang/String",
        "java/lang/Throwable", "java/lang/RuntimeException",
        "java/lang/NullPointerException", "java/lang/Error",
        "java/lang/OutOfMemoryError", "java/nio/ByteBuffer",
        "java/lang/reflect/Method", "java/lang/reflect/Field"})
    EXPECT_NE(V.findClass(Name), nullptr) << Name;
}

TEST_F(VmTest, ClassHierarchy) {
  Klass *Npe = V.findClass("java/lang/NullPointerException");
  EXPECT_TRUE(Npe->isSubclassOf(V.findClass("java/lang/RuntimeException")));
  EXPECT_TRUE(Npe->isSubclassOf(V.throwableClass()));
  EXPECT_TRUE(Npe->isSubclassOf(V.objectClass()));
  EXPECT_FALSE(V.throwableClass()->isSubclassOf(Npe));
}

TEST_F(VmTest, MirrorsRoundTrip) {
  Klass *Str = V.stringClass();
  EXPECT_EQ(V.klassFromMirror(Str->Mirror), Str);
  EXPECT_EQ(V.klassOf(Str->Mirror), V.classClass());
}

TEST_F(VmTest, ArrayClassesOnDemand) {
  Klass *IntArr = V.findClass("[I");
  ASSERT_NE(IntArr, nullptr);
  EXPECT_TRUE(IntArr->isArray());
  EXPECT_EQ(IntArr->elementType().Kind, JType::Int);
  EXPECT_EQ(IntArr->super(), V.objectClass());
  Klass *StrArr = V.findClass("[Ljava/lang/String;");
  ASSERT_NE(StrArr, nullptr);
  EXPECT_EQ(StrArr->elementType().ClassName, "java/lang/String");
  // Unknown element class: no array class either.
  EXPECT_EQ(V.findClass("[Lno/such/Class;"), nullptr);
}

TEST_F(VmTest, DefineClassWithFieldsAndMethods) {
  ClassDef Def;
  Def.Name = "t/Point";
  Def.field("x", "I").field("y", "I").field("ORIGIN", "Lt/Point;",
                                            /*IsStatic=*/true);
  Def.method("sum", "()I",
             [](Vm &V2, JThread &, const Value &Self,
                const std::vector<Value> &) {
               HeapObject *HO = V2.heap().resolve(Self.Obj);
               return Value::makeInt(static_cast<int32_t>(
                   HO->Fields[0].I + HO->Fields[1].I));
             });
  Klass *Kl = V.defineClass(Def);
  ASSERT_NE(Kl, nullptr);
  EXPECT_EQ(Kl->InstanceSlots, 2u);
  EXPECT_NE(Kl->findField("x", "I", false), nullptr);
  EXPECT_NE(Kl->findField("ORIGIN", "Lt/Point;", true), nullptr);
  EXPECT_EQ(Kl->findField("x", "I", true), nullptr); // staticness matters

  ObjectId P = V.newObject(Kl);
  V.heap().resolve(P)->Fields[0] = Value::makeInt(3);
  V.heap().resolve(P)->Fields[1] = Value::makeInt(4);
  Value Sum = V.invokeByName(Main, "t/Point", "sum", "()I",
                             Value::makeRef(P), {});
  EXPECT_EQ(Sum.I, 7);
}

TEST_F(VmTest, FieldSlotsIncludeInherited) {
  ClassDef Base;
  Base.Name = "t/Base";
  Base.field("a", "I");
  V.defineClass(Base);
  ClassDef Derived;
  Derived.Name = "t/Derived";
  Derived.Super = "t/Base";
  Derived.field("b", "I");
  Klass *Kl = V.defineClass(Derived);
  EXPECT_EQ(Kl->InstanceSlots, 2u);
  EXPECT_EQ(Kl->findField("a", "I", false)->Slot, 0u);
  EXPECT_EQ(Kl->findField("b", "I", false)->Slot, 1u);
}

TEST_F(VmTest, MalformedDefinitionsRejected) {
  ClassDef BadField;
  BadField.Name = "t/BadField";
  BadField.field("f", "Q");
  EXPECT_EQ(V.defineClass(BadField), nullptr);

  ClassDef BadMethod;
  BadMethod.Name = "t/BadMethod";
  BadMethod.method("m", "(", nullptr);
  EXPECT_EQ(V.defineClass(BadMethod), nullptr);

  ClassDef NoSuper;
  NoSuper.Name = "t/NoSuper";
  NoSuper.Super = "t/DoesNotExist";
  EXPECT_EQ(V.defineClass(NoSuper), nullptr);
}

TEST_F(VmTest, VirtualDispatchSelectsOverride) {
  ClassDef Base;
  Base.Name = "t/Animal";
  Base.method("speak", "()I",
              [](Vm &, JThread &, const Value &, const std::vector<Value> &) {
                return Value::makeInt(1);
              });
  V.defineClass(Base);
  ClassDef Derived;
  Derived.Name = "t/Dog";
  Derived.Super = "t/Animal";
  Derived.method("speak", "()I",
                 [](Vm &, JThread &, const Value &,
                    const std::vector<Value> &) { return Value::makeInt(2); });
  V.defineClass(Derived);

  ObjectId Dog = V.newObject(V.findClass("t/Dog"));
  MethodInfo *BaseSpeak =
      V.findClass("t/Animal")->findMethod("speak", "()I", false);
  Value Virtual = V.invoke(Main, BaseSpeak, Value::makeRef(Dog), {}, true);
  EXPECT_EQ(Virtual.I, 2);
  Value Direct = V.invoke(Main, BaseSpeak, Value::makeRef(Dog), {}, false);
  EXPECT_EQ(Direct.I, 1);
}

TEST_F(VmTest, ExceptionsCarryMessageCauseAndStack) {
  Main.Stack.push_back({false, "T.main(T.java:3)"});
  ObjectId Cause = V.makeThrowable(Main, "java/lang/RuntimeException",
                                   "root cause");
  ObjectId Ex = V.makeThrowable(Main, "java/lang/Error", "wrapper", Cause);
  Main.Stack.pop_back();
  EXPECT_EQ(V.throwableMessage(Ex), "wrapper");
  EXPECT_EQ(V.throwableCause(Ex), Cause);
  std::string Text = V.describeThrowable(Ex);
  EXPECT_NE(Text.find("java.lang.Error: wrapper"), std::string::npos);
  EXPECT_NE(Text.find("Caused by: java.lang.RuntimeException: root cause"),
            std::string::npos);
  EXPECT_NE(Text.find("\tat T.main(T.java:3)"), std::string::npos);
}

TEST_F(VmTest, ThrowNewSetsPendingAndInvokeShortCircuits) {
  ClassDef Def;
  Def.Name = "t/Thrower";
  Def.method("boom", "()I",
             [](Vm &V2, JThread &T, const Value &,
                const std::vector<Value> &) {
               V2.throwNew(T, "java/lang/IllegalStateException", "boom");
               return Value::makeInt(99);
             });
  V.defineClass(Def);
  Value Out = V.invokeByName(Main, "t/Thrower", "boom", "()I",
                             Value::makeNull(), {});
  // The result is suppressed; the exception is pending.
  EXPECT_EQ(Out.I, 0);
  EXPECT_EQ(V.klassOf(Main.Pending)->name(),
            "java/lang/IllegalStateException");
}

TEST_F(VmTest, InvokeOnMissingClassOrMethodThrows) {
  V.invokeByName(Main, "no/Such", "m", "()V", Value::makeNull(), {});
  EXPECT_EQ(V.klassOf(Main.Pending)->name(), "java/lang/NoClassDefFoundError");
  Main.Pending = ObjectId();
  V.invokeByName(Main, "java/lang/String", "nope", "()V", Value::makeNull(),
                 {});
  EXPECT_EQ(V.klassOf(Main.Pending)->name(), "java/lang/NoSuchMethodError");
}

TEST_F(VmTest, UnboundNativeThrowsUnsatisfiedLinkError) {
  ClassDef Def;
  Def.Name = "t/Native";
  Def.nativeMethod("n", "()V", true);
  V.defineClass(Def);
  V.invokeByName(Main, "t/Native", "n", "()V", Value::makeNull(), {});
  EXPECT_EQ(V.klassOf(Main.Pending)->name(),
            "java/lang/UnsatisfiedLinkError");
}

TEST_F(VmTest, GlobalRefsSurviveGcAndWeaksClear) {
  ObjectId Strong = V.newString("strong");
  ObjectId Weak = V.newString("weak");
  uint64_t StrongRef = V.newGlobalRef(Strong, false);
  uint64_t WeakRef = V.newGlobalRef(Weak, true);
  V.gc();
  EXPECT_EQ(V.resolveGlobal(*decodeHandle(StrongRef)), Strong);
  // The weak target had no strong refs: cleared, handle resolves to null.
  EXPECT_EQ(V.globalRefState(*decodeHandle(WeakRef)), LocalRefState::Live);
  EXPECT_TRUE(V.resolveGlobal(*decodeHandle(WeakRef)).isNull());
}

TEST_F(VmTest, DeleteGlobalRefInvalidatesAndRecycles) {
  ObjectId Obj = V.newString("g");
  uint64_t Ref = V.newGlobalRef(Obj, false);
  EXPECT_TRUE(V.deleteGlobalRef(*decodeHandle(Ref)));
  EXPECT_EQ(V.globalRefState(*decodeHandle(Ref)), LocalRefState::Stale);
  EXPECT_FALSE(V.deleteGlobalRef(*decodeHandle(Ref)));
  uint64_t Ref2 = V.newGlobalRef(Obj, false);
  EXPECT_EQ(decodeHandle(Ref2)->Slot, decodeHandle(Ref)->Slot);
  EXPECT_GT(decodeHandle(Ref2)->Gen, decodeHandle(Ref)->Gen);
}

TEST_F(VmTest, MonitorsNestAndRequireOwner) {
  ObjectId Lock = V.newObject(V.objectClass());
  EXPECT_EQ(V.monitorEnter(Main, Lock), MonitorResult::Ok);
  EXPECT_EQ(V.monitorEnter(Main, Lock), MonitorResult::Ok);
  EXPECT_EQ(V.heldMonitorCount(), 1u);
  JThread &Other = V.attachThread("other");
  EXPECT_EQ(V.monitorEnter(Other, Lock), MonitorResult::WouldBlock);
  EXPECT_EQ(V.monitorExit(Other, Lock), MonitorResult::IllegalState);
  EXPECT_EQ(V.monitorExit(Main, Lock), MonitorResult::Ok);
  EXPECT_EQ(V.monitorExit(Main, Lock), MonitorResult::Ok);
  EXPECT_EQ(V.heldMonitorCount(), 0u);
  EXPECT_EQ(V.monitorExit(Main, Lock), MonitorResult::IllegalState);
}

TEST_F(VmTest, PinsBlockMotionAndUnpinRestoresIt) {
  ObjectId Arr = V.newPrimArray(JType::Int, 4);
  uint64_t Keep = V.newGlobalRef(Arr, false);
  (void)Keep;
  V.pinObject(Main, Arr, PinKind::ArrayElements);
  uint64_t Addr = V.heap().resolve(Arr)->Address;
  V.gc();
  EXPECT_EQ(V.heap().resolve(Arr)->Address, Addr);
  EXPECT_TRUE(V.unpinObject(Main, Arr, PinKind::ArrayElements));
  EXPECT_FALSE(V.unpinObject(Main, Arr, PinKind::ArrayElements));
  V.gc();
  EXPECT_NE(V.heap().resolve(Arr)->Address, Addr);
}

TEST_F(VmTest, GcSkippedDuringCriticalSection) {
  ObjectId Garbage = V.newString("unreachable");
  Main.CriticalDepth = 1;
  V.gc();
  EXPECT_NE(V.heap().resolve(Garbage), nullptr); // GC was refused
  Main.CriticalDepth = 0;
  V.gc();
  EXPECT_EQ(V.heap().resolve(Garbage), nullptr);
}

TEST_F(VmTest, AutoGcRunsEveryPeriod) {
  VmOptions Options;
  Options.AutoGcPeriod = 8;
  Vm Auto(Options);
  for (int I = 0; I < 64; ++I)
    Auto.newString("transient");
  EXPECT_GT(Auto.heap().stats().GcCount, 0u);
}

TEST_F(VmTest, Utf8Utf16RoundTrip) {
  for (const char *Sample : {"", "ascii", "caf\xc3\xa9", "\xe4\xb8\xad"}) {
    ObjectId Str = V.newString(Sample);
    EXPECT_EQ(V.utf8Of(Str), Sample);
  }
}

TEST_F(VmTest, ShutdownFiresVmDeathOnce) {
  struct Counter : VmEventObserver {
    int Deaths = 0;
    void onVmDeath() override { ++Deaths; }
  } Obs;
  V.addObserver(&Obs);
  V.shutdown();
  V.shutdown();
  EXPECT_EQ(Obs.Deaths, 1);
  V.removeObserver(&Obs);
}

TEST_F(VmTest, MethodAndFieldIdRegistries) {
  Klass *Str = V.stringClass();
  (void)Str;
  Klass *Thr = V.throwableClass();
  FieldInfo *Msg = Thr->findField("message", "Ljava/lang/String;", false);
  EXPECT_TRUE(V.isFieldId(Msg));
  EXPECT_FALSE(V.isMethodId(Msg));
  int Dummy = 0;
  EXPECT_FALSE(V.isFieldId(&Dummy));
}

} // namespace
