//===- tests/jni_traits_test.cpp - Trait-table invariants ----------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trait table is the "scanned header" driving all checkers and the
/// Table 2 census; these tests pin down its structural invariants.
///
//===----------------------------------------------------------------------===//

#include "jni/JniTraits.h"

#include <gtest/gtest.h>

#include <string>

using namespace jinn;
using namespace jinn::jni;

namespace {

size_t countIf(bool (*Pred)(const FnTraits &)) {
  size_t N = 0;
  for (const FnTraits &T : allFnTraits())
    if (Pred(T))
      ++N;
  return N;
}

TEST(JniTraits, RegistryHasExactly229Functions) {
  EXPECT_EQ(NumJniFunctions, 229u);
  EXPECT_EQ(allFnTraits().size(), 229u);
}

TEST(JniTraits, FnIdNameRoundTrip) {
  for (size_t I = 0; I < NumJniFunctions; ++I) {
    FnId Id = static_cast<FnId>(I);
    EXPECT_EQ(fnIdByName(fnName(Id)), Id);
  }
  EXPECT_EQ(fnIdByName("NoSuchFunction"), FnId::Count);
}

TEST(JniTraits, ExactlyTwentyExceptionObliviousFunctions) {
  EXPECT_EQ(countIf([](const FnTraits &T) { return T.ExceptionOblivious; }),
            20u);
}

TEST(JniTraits, ExactlyFourCriticalAllowedFunctions) {
  EXPECT_EQ(countIf([](const FnTraits &T) { return T.CriticalAllowed; }),
            4u);
}

TEST(JniTraits, ExactlyEighteenFieldWriters) {
  EXPECT_EQ(countIf([](const FnTraits &T) { return T.IsFieldSet; }), 18u);
}

TEST(JniTraits, ExactlyTwelvePinAcquireSites) {
  EXPECT_EQ(countIf([](const FnTraits &T) {
              return T.Resource == ResourceRole::PinAcquire;
            }),
            12u);
  EXPECT_EQ(countIf([](const FnTraits &T) {
              return T.Resource == ResourceRole::PinRelease;
            }),
            12u);
}

TEST(JniTraits, CallFamilyCounts) {
  size_t Virtual = 0, Nonvirtual = 0, Static = 0, Ctor = 0;
  for (const FnTraits &T : allFnTraits()) {
    Virtual += T.Call == CallKind::Virtual;
    Nonvirtual += T.Call == CallKind::Nonvirtual;
    Static += T.Call == CallKind::Static;
    Ctor += T.Call == CallKind::Ctor;
  }
  EXPECT_EQ(Virtual, 30u);
  EXPECT_EQ(Nonvirtual, 30u);
  EXPECT_EQ(Static, 30u);
  EXPECT_EQ(Ctor, 3u);
}

TEST(JniTraits, EntityConsumersNumber131) {
  EXPECT_EQ(countIf([](const FnTraits &T) {
              return (T.hasParam(ArgClass::MethodId) ||
                      T.hasParam(ArgClass::FieldId)) &&
                     !T.ProducesMethodId && !T.ProducesFieldId;
            }),
            131u); // exactly the paper's Table 2 count
}

TEST(JniTraits, SpotCheckSignatures) {
  const FnTraits &Find = fnTraits(FnId::FindClass);
  EXPECT_EQ(Find.NumParams, 1);
  EXPECT_EQ(Find.Params[0].Cls, ArgClass::CString);
  EXPECT_TRUE(Find.ReturnsRef);
  EXPECT_EQ(Find.ReturnConstraint, RefConstraint::Class);

  const FnTraits &CallA = fnTraits(FnId::CallStaticVoidMethodA);
  EXPECT_EQ(CallA.NumParams, 3);
  EXPECT_EQ(CallA.Params[0].Constraint, RefConstraint::Class);
  EXPECT_EQ(CallA.Params[1].Cls, ArgClass::MethodId);
  EXPECT_EQ(CallA.Params[2].Cls, ArgClass::JvalueArray);
  EXPECT_EQ(CallA.Call, CallKind::Static);
  EXPECT_EQ(CallA.CallRet, jvm::JType::Void);
  EXPECT_EQ(CallA.Form, CallForm::ArrayForm);

  const FnTraits &CallVar = fnTraits(FnId::CallIntMethod);
  EXPECT_EQ(CallVar.Form, CallForm::Variadic);
  EXPECT_EQ(CallVar.CallRet, jvm::JType::Int);
  EXPECT_EQ(fnTraits(FnId::CallIntMethodV).Form, CallForm::VaListForm);

  const FnTraits &SetD = fnTraits(FnId::SetDoubleField);
  EXPECT_TRUE(SetD.IsFieldSet);
  EXPECT_FALSE(SetD.IsStaticFieldOp);
  EXPECT_EQ(SetD.FieldKind, jvm::JType::Double);
  EXPECT_TRUE(fnTraits(FnId::SetStaticDoubleField).IsStaticFieldOp);

  EXPECT_EQ(fnTraits(FnId::GetIntArrayElements).Pin,
            PinFamily::ArrayElements);
  EXPECT_EQ(fnTraits(FnId::GetStringCritical).Pin,
            PinFamily::CriticalString);
  EXPECT_EQ(fnTraits(FnId::NewGlobalRef).Resource,
            ResourceRole::GlobalAcquire);
  EXPECT_EQ(fnTraits(FnId::MonitorEnter).Resource,
            ResourceRole::MonitorEnter);
  EXPECT_EQ(fnTraits(FnId::ExceptionClear).Resource,
            ResourceRole::ExceptionClearFn);
}

TEST(JniTraits, FixedTypeConstraintsFromStaticTypes) {
  EXPECT_EQ(fnTraits(FnId::Throw).Params[0].Constraint,
            RefConstraint::Throwable);
  EXPECT_EQ(fnTraits(FnId::GetStringLength).Params[0].Constraint,
            RefConstraint::String);
  EXPECT_EQ(fnTraits(FnId::GetIntArrayElements).Params[0].Constraint,
            RefConstraint::IntArray);
  EXPECT_EQ(fnTraits(FnId::GetArrayLength).Params[0].Constraint,
            RefConstraint::AnyArray);
  EXPECT_EQ(fnTraits(FnId::GetObjectArrayElement).Params[0].Constraint,
            RefConstraint::ObjectArray);
  // Plain jobject parameters carry no fixed constraint.
  EXPECT_EQ(fnTraits(FnId::GetObjectClass).Params[0].Constraint,
            RefConstraint::None);
}

TEST(JniTraits, NullabilityRefinements) {
  EXPECT_FALSE(fnTraits(FnId::IsSameObject).Params[0].NonNull);
  EXPECT_FALSE(fnTraits(FnId::IsSameObject).Params[1].NonNull);
  EXPECT_FALSE(fnTraits(FnId::NewGlobalRef).Params[0].NonNull);
  EXPECT_FALSE(fnTraits(FnId::SetObjectField).Params[2].NonNull);
  EXPECT_FALSE(fnTraits(FnId::NewObjectArray).Params[2].NonNull);
  EXPECT_TRUE(fnTraits(FnId::Throw).Params[0].NonNull);
  EXPECT_TRUE(fnTraits(FnId::GetStringUTFChars).Params[0].NonNull);
  EXPECT_TRUE(fnTraits(FnId::FindClass).Params[0].NonNull);
}

TEST(JniTraits, ProducersAreMarked) {
  for (FnId Id : {FnId::GetMethodID, FnId::GetStaticMethodID,
                  FnId::FromReflectedMethod})
    EXPECT_TRUE(fnTraits(Id).ProducesMethodId) << fnName(Id);
  for (FnId Id : {FnId::GetFieldID, FnId::GetStaticFieldID,
                  FnId::FromReflectedField})
    EXPECT_TRUE(fnTraits(Id).ProducesFieldId) << fnName(Id);
  EXPECT_FALSE(fnTraits(FnId::CallIntMethodA).ProducesMethodId);
}

TEST(JniTraits, EveryFunctionHasAtMostFiveParams) {
  for (const FnTraits &T : allFnTraits())
    EXPECT_LE(T.NumParams, 5) << fnName(T.Id);
}

TEST(JniTraits, ObliviousFunctionsAreExactlyThePaperSet) {
  // 4 exception queries + 12 release functions + 3 deletes + MonitorExit.
  for (const char *Name :
       {"ExceptionOccurred", "ExceptionDescribe", "ExceptionClear",
        "ExceptionCheck", "ReleaseStringChars", "ReleaseStringUTFChars",
        "ReleaseStringCritical", "ReleasePrimitiveArrayCritical",
        "DeleteLocalRef", "DeleteGlobalRef", "DeleteWeakGlobalRef",
        "MonitorExit", "ReleaseIntArrayElements",
        "ReleaseDoubleArrayElements"})
    EXPECT_TRUE(fnTraits(fnIdByName(Name)).ExceptionOblivious) << Name;
  for (const char *Name : {"FindClass", "GetMethodID", "MonitorEnter",
                           "GetStringChars", "NewGlobalRef"})
    EXPECT_FALSE(fnTraits(fnIdByName(Name)).ExceptionOblivious) << Name;
}

} // namespace
