//===- tests/workloads_test.cpp - Table 3 workload tests -----------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace jinn;
using namespace jinn::scenarios;
using namespace jinn::workloads;

namespace {

TEST(Workloads, TableHasAllNineteenBenchmarks) {
  EXPECT_EQ(allWorkloads().size(), 19u);
  EXPECT_NE(workloadByName("jython"), nullptr);
  EXPECT_EQ(workloadByName("jython")->PaperTransitions, 56318101u);
  EXPECT_EQ(workloadByName("nosuch"), nullptr);
}

TEST(Workloads, RunsCleanlyInProduction) {
  WorldConfig Config;
  ScenarioWorld World(Config);
  WorkloadRun Run = runWorkload(*workloadByName("compress"), World, 10);
  EXPECT_EQ(Run.NativeTransitions, 1487u);
  EXPECT_GT(Run.JniCalls, Run.NativeTransitions);
  EXPECT_FALSE(World.Vm.diags().has(IncidentKind::SimulatedCrash));
  EXPECT_FALSE(World.Vm.diags().has(IncidentKind::UndefinedState));
}

TEST(Workloads, NoFalsePositivesUnderJinn) {
  // Paper §2.2: "Jinn never generates false positives" — a correct
  // workload must produce zero reports under full checking.
  WorldConfig Config;
  Config.Checker = CheckerKind::Jinn;
  ScenarioWorld World(Config);
  for (const WorkloadInfo &Info : allWorkloads())
    runWorkload(Info, World, 2048);
  World.shutdown();
  EXPECT_TRUE(World.Jinn->reporter().reports().empty());
}

TEST(Workloads, NoFalsePositivesUnderXcheck) {
  for (auto Flavor : {jvm::VmFlavor::HotSpotLike, jvm::VmFlavor::J9Like}) {
    WorldConfig Config;
    Config.Flavor = Flavor;
    Config.Checker = CheckerKind::Xcheck;
    ScenarioWorld World(Config);
    runWorkload(*workloadByName("jess"), World, 64);
    World.shutdown();
    EXPECT_TRUE(World.Xcheck->reporter().detections().empty());
  }
}

TEST(Workloads, ChecksumIsDeterministicAcrossCheckerConfigs) {
  auto Checksum = [](CheckerKind Checker) {
    WorldConfig Config;
    Config.Checker = Checker;
    ScenarioWorld World(Config);
    return runWorkload(*workloadByName("db"), World, 64).Checksum;
  };
  uint64_t Production = Checksum(CheckerKind::None);
  EXPECT_EQ(Production, Checksum(CheckerKind::InterposeOnly));
  EXPECT_EQ(Production, Checksum(CheckerKind::Jinn));
  EXPECT_EQ(Production, Checksum(CheckerKind::Xcheck));
}

} // namespace
