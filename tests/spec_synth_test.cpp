//===- tests/spec_synth_test.cpp - Spec framework & synthesizer tests ----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestHarness.h"
#include "synth/Emitter.h"
#include "synth/Synthesizer.h"

#include <algorithm>
#include <fstream>

using namespace jinn;
using namespace jinn::testing;
using jinn::jni::FnId;
using jinn::spec::Direction;
using jinn::spec::FunctionSelector;

namespace {

TEST(FunctionSelector, AllMatchesEverything) {
  FunctionSelector S = FunctionSelector::all("any");
  EXPECT_TRUE(S.matches(FnId::GetVersion));
  EXPECT_TRUE(S.matches(FnId::DeleteLocalRef));
}

TEST(FunctionSelector, OneMatchesExactly) {
  FunctionSelector S = FunctionSelector::one(FnId::MonitorEnter);
  EXPECT_TRUE(S.matches(FnId::MonitorEnter));
  EXPECT_FALSE(S.matches(FnId::MonitorExit));
  EXPECT_EQ(S.Description, "MonitorEnter");
}

TEST(FunctionSelector, PredicateMatchesByTraits) {
  FunctionSelector S = FunctionSelector::matching(
      "ref-returning", [](const jni::FnTraits &T) { return T.ReturnsRef; });
  EXPECT_TRUE(S.matches(FnId::FindClass));
  EXPECT_FALSE(S.matches(FnId::GetVersion));
}

TEST(FunctionSelector, NativeMethodsNeverMatchJniFunctions) {
  FunctionSelector S = FunctionSelector::nativeMethods("native");
  EXPECT_FALSE(S.matches(FnId::FindClass));
}

TEST(FunctionSelector, CountSentinelNeverMatches) {
  // FnId::Count is the "no function" sentinel; no selector kind may treat
  // it as a real function, including the blanket all-selector.
  EXPECT_FALSE(FunctionSelector::all("any").matches(FnId::Count));
  EXPECT_FALSE(FunctionSelector::one(FnId::MonitorEnter).matches(FnId::Count));
  EXPECT_FALSE(FunctionSelector::matching(
                   "always", [](const jni::FnTraits &) { return true; })
                   .matches(FnId::Count));
  EXPECT_FALSE(FunctionSelector::nativeMethods("native").matches(FnId::Count));
}

TEST(FunctionSelector, MalformedSelectorsMatchNothing) {
  // A predicate selector whose predicate was never set, and a one-function
  // selector pinned to the sentinel, degrade to empty match sets instead
  // of crashing — jinn-speclint reports them as zero-match errors.
  FunctionSelector NoPred;
  NoPred.K = FunctionSelector::Kind::JniPredicate;
  EXPECT_FALSE(NoPred.matches(FnId::GetVersion));
  EXPECT_TRUE(spec::matchedFunctions(NoPred).empty());

  FunctionSelector BadOne;
  BadOne.K = FunctionSelector::Kind::OneJniFunction;
  BadOne.Fn = FnId::Count;
  EXPECT_FALSE(BadOne.matches(FnId::GetVersion));
  EXPECT_TRUE(spec::matchedFunctions(BadOne).empty());
}

TEST(FunctionSelector, MatchedFunctionsAgreesWithMatches) {
  FunctionSelector S = FunctionSelector::matching(
      "ref-returning", [](const jni::FnTraits &T) { return T.ReturnsRef; });
  std::vector<FnId> Fns = spec::matchedFunctions(S);
  EXPECT_FALSE(Fns.empty());
  EXPECT_TRUE(std::is_sorted(Fns.begin(), Fns.end()));
  size_t Expected = 0;
  for (size_t I = 0; I < jni::NumJniFunctions; ++I)
    Expected += S.matches(static_cast<FnId>(I));
  EXPECT_EQ(Fns.size(), Expected);
  for (FnId Id : Fns)
    EXPECT_TRUE(S.matches(Id));
}

TEST(Direction, Names) {
  EXPECT_STREQ(spec::directionName(Direction::CallJavaToC), "Call:Java->C");
  EXPECT_STREQ(spec::directionName(Direction::CallCToJava), "Call:C->Java");
  EXPECT_STREQ(spec::directionName(Direction::ReturnJavaToC),
               "Return:Java->C");
  EXPECT_STREQ(spec::directionName(Direction::ReturnCToJava),
               "Return:C->Java");
}

//===----------------------------------------------------------------------===
// A tiny two-machine spec to drive Algorithm 1 end to end.
//===----------------------------------------------------------------------===

struct CountingReporter : spec::Reporter {
  std::vector<std::string> Messages;
  void violation(spec::TransitionContext &Ctx,
                 const spec::StateMachineSpec &Machine,
                 const std::string &Message) override {
    Messages.push_back(Machine.Name + ": " + Message);
    Ctx.abortCall();
  }
  void endOfRun(const spec::StateMachineSpec &Machine,
                const std::string &Message) override {
    Messages.push_back("end:" + Machine.Name + ": " + Message);
  }
};

/// Counts FindClass calls and flags class names containing "forbidden".
class ToyMachine : public spec::MachineBase {
public:
  int Calls = 0;
  ToyMachine() {
    Spec.Name = "Toy";
    Spec.ObservedEntity = "a class name";
    Spec.Errors = "forbidden class";
    spec::StateTransition T;
    T.From = "Watching";
    T.To = "Watching";
    T.At = {{FunctionSelector::one(FnId::FindClass),
             Direction::CallCToJava}};
    T.Action = [this](spec::TransitionContext &Ctx) {
      ++Calls;
      const char *Name =
          static_cast<const char *>(Ctx.call().arg(0).Ptr);
      if (Name && std::string(Name).find("forbidden") != std::string::npos)
        Ctx.reporter().violation(Ctx, Spec, "forbidden class loaded");
    };
    Spec.Transitions.push_back(std::move(T));
  }
};

/// Counts native entries/exits.
class ToyNativeMachine : public spec::MachineBase {
public:
  int Entries = 0, Exits = 0;
  ToyNativeMachine() {
    Spec.Name = "ToyNative";
    spec::StateTransition Enter;
    Enter.From = "Out";
    Enter.To = "In";
    Enter.At = {{FunctionSelector::nativeMethods("any native"),
                 Direction::CallJavaToC}};
    Enter.Action = [this](spec::TransitionContext &Ctx) {
      ++Entries;
      EXPECT_FALSE(Ctx.isJniSite());
      EXPECT_FALSE(Ctx.method().Name.empty());
    };
    Spec.Transitions.push_back(std::move(Enter));
    spec::StateTransition Exit;
    Exit.From = "In";
    Exit.To = "Out";
    Exit.At = {{FunctionSelector::nativeMethods("any native"),
                Direction::ReturnCToJava}};
    Exit.Action = [this](spec::TransitionContext &) { ++Exits; };
    Spec.Transitions.push_back(std::move(Exit));
  }
};

struct SynthTest : ::testing::Test {
  VmWorld W;
  jvmti::JvmtiEnv Jvmti{W.Rt};
  CountingReporter Reporter;
  ToyMachine Toy;
  ToyNativeMachine ToyNative;
};

TEST_F(SynthTest, Algorithm1InstallsJniHooks) {
  synth::Synthesizer Synth({&Toy}, Reporter);
  synth::SynthesisStats Stats = Synth.installInto(Jvmti.dispatcher());
  EXPECT_EQ(Stats.MachineCount, 1u);
  EXPECT_EQ(Stats.StateTransitionCount, 1u);
  EXPECT_EQ(Stats.JniPreHooks, 1u);
  EXPECT_EQ(Stats.JniPostHooks, 0u);

  JNIEnv *Env = W.env();
  Env->functions->FindClass(Env, "java/lang/String");
  EXPECT_EQ(Toy.Calls, 1);
  EXPECT_TRUE(Reporter.Messages.empty());

  jclass Out = Env->functions->FindClass(Env, "very/forbidden/Class");
  EXPECT_EQ(Out, nullptr); // the violation aborted the call
  ASSERT_EQ(Reporter.Messages.size(), 1u);
  EXPECT_EQ(Reporter.Messages[0], "Toy: forbidden class loaded");
}

TEST_F(SynthTest, Algorithm1WrapsNativeMethods) {
  synth::Synthesizer Synth({&ToyNative}, Reporter);
  synth::SynthesisStats Stats = Synth.installInto(Jvmti.dispatcher());
  EXPECT_EQ(Stats.NativeEntryActions, 1u);
  EXPECT_EQ(Stats.NativeExitActions, 1u);

  jvmti::EventCallbacks Cb;
  Cb.NativeMethodBind = Synth.makeNativeBindHandler();
  Jvmti.setEventCallbacks(std::move(Cb));

  jvm::ClassDef Def;
  Def.Name = "t/N";
  Def.nativeMethod("n", "()V", true);
  W.define(Def);
  W.bindNative("t/N", "n", "()V",
               [](JNIEnv *, jobject, const jvalue *) -> jvalue {
                 jvalue R;
                 R.j = 0;
                 return R;
               });
  W.call("t/N", "n", "()V");
  W.call("t/N", "n", "()V");
  EXPECT_EQ(ToyNative.Entries, 2);
  EXPECT_EQ(ToyNative.Exits, 2);
}

TEST_F(SynthTest, BroadSelectorsFanOutAcrossTheRegistry) {
  // A transition attached to "all JNI functions" yields 229 hooks.
  class WideMachine : public spec::MachineBase {
  public:
    WideMachine() {
      Spec.Name = "Wide";
      spec::StateTransition T;
      T.From = "S";
      T.To = "S";
      T.At = {{FunctionSelector::all("any"), Direction::CallCToJava}};
      T.Action = [](spec::TransitionContext &) {};
      Spec.Transitions.push_back(std::move(T));
    }
  } Wide;
  synth::Synthesizer Synth({&Wide}, Reporter);
  synth::SynthesisStats Stats = Synth.installInto(Jvmti.dispatcher());
  EXPECT_EQ(Stats.JniPreHooks, jni::NumJniFunctions);
}

//===----------------------------------------------------------------------===
// Emitter
//===----------------------------------------------------------------------===

TEST_F(SynthTest, EmitterGeneratesWrappersAndChecks) {
  synth::CodeEmitter Emitter({&Toy});
  std::string Code = Emitter.emit();
  EXPECT_EQ(Emitter.stats().WrapperFunctions, 1u);
  EXPECT_EQ(Emitter.stats().CheckFunctions, 1u);
  EXPECT_NE(Code.find("wrapped_FindClass"), std::string::npos);
  EXPECT_NE(Code.find("check_FindClass_Toy_Watching_to_Watching"),
            std::string::npos);
  EXPECT_NE(Code.find("jinn_real_table()->FindClass(env, name)"),
            std::string::npos);
  EXPECT_GT(Emitter.stats().TotalLines, 20u);
}

TEST_F(SynthTest, EmitterGeneratesNativeWrapperAndDriver) {
  synth::CodeEmitter Emitter({&ToyNative});
  std::string Code = Emitter.emit();
  EXPECT_NE(Code.find("wrapped_native_method"), std::string::npos);
  EXPECT_NE(Code.find("native_entry_ToyNative_Out_to_In"),
            std::string::npos);
  EXPECT_NE(Code.find("native_exit_ToyNative_In_to_Out"),
            std::string::npos);
  EXPECT_NE(Code.find("Agent_OnLoad"), std::string::npos);
  EXPECT_NE(Code.find("jinn/JNIAssertionFailure"), std::string::npos);
}

TEST(Emitter, CountSourceLinesSkipsBlanksAndComments) {
  std::string Path = ::testing::TempDir() + "/loc_sample.cpp";
  {
    std::ofstream Out(Path);
    Out << "// comment only\n\n  // indented comment\nint X = 1;\n"
        << "int Y = 2; // trailing comment counts\n   \n";
  }
  EXPECT_EQ(synth::countSourceLines({Path}), 2u);
}

TEST(Emitter, SourceFilesUnderFindsTheMachineSpecs) {
  std::vector<std::string> Files =
      synth::sourceFilesUnder(JINN_SOURCE_DIR "/src/jinn/machines");
  EXPECT_GE(Files.size(), 15u); // 14 machines + the shared header
}

} // namespace
