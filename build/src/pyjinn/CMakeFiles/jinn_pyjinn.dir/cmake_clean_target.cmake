file(REMOVE_RECURSE
  "libjinn_pyjinn.a"
)
