# Empty dependencies file for jinn_pyjinn.
# This may be replaced when dependencies are built.
