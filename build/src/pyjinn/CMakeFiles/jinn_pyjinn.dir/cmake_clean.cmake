file(REMOVE_RECURSE
  "CMakeFiles/jinn_pyjinn.dir/PyChecker.cpp.o"
  "CMakeFiles/jinn_pyjinn.dir/PyChecker.cpp.o.d"
  "libjinn_pyjinn.a"
  "libjinn_pyjinn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinn_pyjinn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
