file(REMOVE_RECURSE
  "CMakeFiles/jinn_jvmti.dir/Interpose.cpp.o"
  "CMakeFiles/jinn_jvmti.dir/Interpose.cpp.o.d"
  "CMakeFiles/jinn_jvmti.dir/Jvmti.cpp.o"
  "CMakeFiles/jinn_jvmti.dir/Jvmti.cpp.o.d"
  "libjinn_jvmti.a"
  "libjinn_jvmti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinn_jvmti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
