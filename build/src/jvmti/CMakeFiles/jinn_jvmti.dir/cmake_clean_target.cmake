file(REMOVE_RECURSE
  "libjinn_jvmti.a"
)
