# Empty compiler generated dependencies file for jinn_jvmti.
# This may be replaced when dependencies are built.
