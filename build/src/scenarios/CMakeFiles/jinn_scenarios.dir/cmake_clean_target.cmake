file(REMOVE_RECURSE
  "libjinn_scenarios.a"
)
