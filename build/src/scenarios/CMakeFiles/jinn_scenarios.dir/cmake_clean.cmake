file(REMOVE_RECURSE
  "CMakeFiles/jinn_scenarios.dir/CaseStudies.cpp.o"
  "CMakeFiles/jinn_scenarios.dir/CaseStudies.cpp.o.d"
  "CMakeFiles/jinn_scenarios.dir/Micros.cpp.o"
  "CMakeFiles/jinn_scenarios.dir/Micros.cpp.o.d"
  "CMakeFiles/jinn_scenarios.dir/PythonScenarios.cpp.o"
  "CMakeFiles/jinn_scenarios.dir/PythonScenarios.cpp.o.d"
  "CMakeFiles/jinn_scenarios.dir/Scenarios.cpp.o"
  "CMakeFiles/jinn_scenarios.dir/Scenarios.cpp.o.d"
  "libjinn_scenarios.a"
  "libjinn_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinn_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
