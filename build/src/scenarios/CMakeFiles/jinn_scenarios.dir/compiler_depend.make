# Empty compiler generated dependencies file for jinn_scenarios.
# This may be replaced when dependencies are built.
