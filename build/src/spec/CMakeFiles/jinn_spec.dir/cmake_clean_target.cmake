file(REMOVE_RECURSE
  "libjinn_spec.a"
)
