file(REMOVE_RECURSE
  "CMakeFiles/jinn_spec.dir/StateMachine.cpp.o"
  "CMakeFiles/jinn_spec.dir/StateMachine.cpp.o.d"
  "libjinn_spec.a"
  "libjinn_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinn_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
