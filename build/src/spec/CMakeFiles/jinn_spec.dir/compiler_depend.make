# Empty compiler generated dependencies file for jinn_spec.
# This may be replaced when dependencies are built.
