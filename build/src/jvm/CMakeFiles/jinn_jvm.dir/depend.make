# Empty dependencies file for jinn_jvm.
# This may be replaced when dependencies are built.
