file(REMOVE_RECURSE
  "CMakeFiles/jinn_jvm.dir/Descriptor.cpp.o"
  "CMakeFiles/jinn_jvm.dir/Descriptor.cpp.o.d"
  "CMakeFiles/jinn_jvm.dir/Heap.cpp.o"
  "CMakeFiles/jinn_jvm.dir/Heap.cpp.o.d"
  "CMakeFiles/jinn_jvm.dir/JThread.cpp.o"
  "CMakeFiles/jinn_jvm.dir/JThread.cpp.o.d"
  "CMakeFiles/jinn_jvm.dir/Klass.cpp.o"
  "CMakeFiles/jinn_jvm.dir/Klass.cpp.o.d"
  "CMakeFiles/jinn_jvm.dir/Policy.cpp.o"
  "CMakeFiles/jinn_jvm.dir/Policy.cpp.o.d"
  "CMakeFiles/jinn_jvm.dir/Vm.cpp.o"
  "CMakeFiles/jinn_jvm.dir/Vm.cpp.o.d"
  "libjinn_jvm.a"
  "libjinn_jvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinn_jvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
