
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jvm/Descriptor.cpp" "src/jvm/CMakeFiles/jinn_jvm.dir/Descriptor.cpp.o" "gcc" "src/jvm/CMakeFiles/jinn_jvm.dir/Descriptor.cpp.o.d"
  "/root/repo/src/jvm/Heap.cpp" "src/jvm/CMakeFiles/jinn_jvm.dir/Heap.cpp.o" "gcc" "src/jvm/CMakeFiles/jinn_jvm.dir/Heap.cpp.o.d"
  "/root/repo/src/jvm/JThread.cpp" "src/jvm/CMakeFiles/jinn_jvm.dir/JThread.cpp.o" "gcc" "src/jvm/CMakeFiles/jinn_jvm.dir/JThread.cpp.o.d"
  "/root/repo/src/jvm/Klass.cpp" "src/jvm/CMakeFiles/jinn_jvm.dir/Klass.cpp.o" "gcc" "src/jvm/CMakeFiles/jinn_jvm.dir/Klass.cpp.o.d"
  "/root/repo/src/jvm/Policy.cpp" "src/jvm/CMakeFiles/jinn_jvm.dir/Policy.cpp.o" "gcc" "src/jvm/CMakeFiles/jinn_jvm.dir/Policy.cpp.o.d"
  "/root/repo/src/jvm/Vm.cpp" "src/jvm/CMakeFiles/jinn_jvm.dir/Vm.cpp.o" "gcc" "src/jvm/CMakeFiles/jinn_jvm.dir/Vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/jinn_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
