file(REMOVE_RECURSE
  "libjinn_jvm.a"
)
