file(REMOVE_RECURSE
  "libjinn_jni.a"
)
