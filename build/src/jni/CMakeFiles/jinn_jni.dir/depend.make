# Empty dependencies file for jinn_jni.
# This may be replaced when dependencies are built.
