file(REMOVE_RECURSE
  "CMakeFiles/jinn_jni.dir/JniEnvArrays.cpp.o"
  "CMakeFiles/jinn_jni.dir/JniEnvArrays.cpp.o.d"
  "CMakeFiles/jinn_jni.dir/JniEnvCalls.cpp.o"
  "CMakeFiles/jinn_jni.dir/JniEnvCalls.cpp.o.d"
  "CMakeFiles/jinn_jni.dir/JniEnvCore.cpp.o"
  "CMakeFiles/jinn_jni.dir/JniEnvCore.cpp.o.d"
  "CMakeFiles/jinn_jni.dir/JniEnvMembers.cpp.o"
  "CMakeFiles/jinn_jni.dir/JniEnvMembers.cpp.o.d"
  "CMakeFiles/jinn_jni.dir/JniFunctionId.cpp.o"
  "CMakeFiles/jinn_jni.dir/JniFunctionId.cpp.o.d"
  "CMakeFiles/jinn_jni.dir/JniRuntime.cpp.o"
  "CMakeFiles/jinn_jni.dir/JniRuntime.cpp.o.d"
  "CMakeFiles/jinn_jni.dir/JniTraits.cpp.o"
  "CMakeFiles/jinn_jni.dir/JniTraits.cpp.o.d"
  "CMakeFiles/jinn_jni.dir/Marshal.cpp.o"
  "CMakeFiles/jinn_jni.dir/Marshal.cpp.o.d"
  "libjinn_jni.a"
  "libjinn_jni.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinn_jni.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
