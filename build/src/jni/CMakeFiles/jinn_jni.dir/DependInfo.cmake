
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jni/JniEnvArrays.cpp" "src/jni/CMakeFiles/jinn_jni.dir/JniEnvArrays.cpp.o" "gcc" "src/jni/CMakeFiles/jinn_jni.dir/JniEnvArrays.cpp.o.d"
  "/root/repo/src/jni/JniEnvCalls.cpp" "src/jni/CMakeFiles/jinn_jni.dir/JniEnvCalls.cpp.o" "gcc" "src/jni/CMakeFiles/jinn_jni.dir/JniEnvCalls.cpp.o.d"
  "/root/repo/src/jni/JniEnvCore.cpp" "src/jni/CMakeFiles/jinn_jni.dir/JniEnvCore.cpp.o" "gcc" "src/jni/CMakeFiles/jinn_jni.dir/JniEnvCore.cpp.o.d"
  "/root/repo/src/jni/JniEnvMembers.cpp" "src/jni/CMakeFiles/jinn_jni.dir/JniEnvMembers.cpp.o" "gcc" "src/jni/CMakeFiles/jinn_jni.dir/JniEnvMembers.cpp.o.d"
  "/root/repo/src/jni/JniFunctionId.cpp" "src/jni/CMakeFiles/jinn_jni.dir/JniFunctionId.cpp.o" "gcc" "src/jni/CMakeFiles/jinn_jni.dir/JniFunctionId.cpp.o.d"
  "/root/repo/src/jni/JniRuntime.cpp" "src/jni/CMakeFiles/jinn_jni.dir/JniRuntime.cpp.o" "gcc" "src/jni/CMakeFiles/jinn_jni.dir/JniRuntime.cpp.o.d"
  "/root/repo/src/jni/JniTraits.cpp" "src/jni/CMakeFiles/jinn_jni.dir/JniTraits.cpp.o" "gcc" "src/jni/CMakeFiles/jinn_jni.dir/JniTraits.cpp.o.d"
  "/root/repo/src/jni/Marshal.cpp" "src/jni/CMakeFiles/jinn_jni.dir/Marshal.cpp.o" "gcc" "src/jni/CMakeFiles/jinn_jni.dir/Marshal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jvm/CMakeFiles/jinn_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jinn_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
