# CMake generated Testfile for 
# Source directory: /root/repo/src/jinn
# Build directory: /root/repo/build/src/jinn
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
