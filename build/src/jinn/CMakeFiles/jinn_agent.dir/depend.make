# Empty dependencies file for jinn_agent.
# This may be replaced when dependencies are built.
