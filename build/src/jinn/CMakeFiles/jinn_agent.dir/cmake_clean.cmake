file(REMOVE_RECURSE
  "CMakeFiles/jinn_agent.dir/Census.cpp.o"
  "CMakeFiles/jinn_agent.dir/Census.cpp.o.d"
  "CMakeFiles/jinn_agent.dir/JinnAgent.cpp.o"
  "CMakeFiles/jinn_agent.dir/JinnAgent.cpp.o.d"
  "CMakeFiles/jinn_agent.dir/Machines.cpp.o"
  "CMakeFiles/jinn_agent.dir/Machines.cpp.o.d"
  "CMakeFiles/jinn_agent.dir/Report.cpp.o"
  "CMakeFiles/jinn_agent.dir/Report.cpp.o.d"
  "CMakeFiles/jinn_agent.dir/machines/AccessControl.cpp.o"
  "CMakeFiles/jinn_agent.dir/machines/AccessControl.cpp.o.d"
  "CMakeFiles/jinn_agent.dir/machines/CriticalState.cpp.o"
  "CMakeFiles/jinn_agent.dir/machines/CriticalState.cpp.o.d"
  "CMakeFiles/jinn_agent.dir/machines/EntityTyping.cpp.o"
  "CMakeFiles/jinn_agent.dir/machines/EntityTyping.cpp.o.d"
  "CMakeFiles/jinn_agent.dir/machines/EnvState.cpp.o"
  "CMakeFiles/jinn_agent.dir/machines/EnvState.cpp.o.d"
  "CMakeFiles/jinn_agent.dir/machines/ExceptionState.cpp.o"
  "CMakeFiles/jinn_agent.dir/machines/ExceptionState.cpp.o.d"
  "CMakeFiles/jinn_agent.dir/machines/FixedTyping.cpp.o"
  "CMakeFiles/jinn_agent.dir/machines/FixedTyping.cpp.o.d"
  "CMakeFiles/jinn_agent.dir/machines/GlobalRef.cpp.o"
  "CMakeFiles/jinn_agent.dir/machines/GlobalRef.cpp.o.d"
  "CMakeFiles/jinn_agent.dir/machines/LocalRef.cpp.o"
  "CMakeFiles/jinn_agent.dir/machines/LocalRef.cpp.o.d"
  "CMakeFiles/jinn_agent.dir/machines/Monitor.cpp.o"
  "CMakeFiles/jinn_agent.dir/machines/Monitor.cpp.o.d"
  "CMakeFiles/jinn_agent.dir/machines/Nullness.cpp.o"
  "CMakeFiles/jinn_agent.dir/machines/Nullness.cpp.o.d"
  "CMakeFiles/jinn_agent.dir/machines/PinnedResource.cpp.o"
  "CMakeFiles/jinn_agent.dir/machines/PinnedResource.cpp.o.d"
  "libjinn_agent.a"
  "libjinn_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinn_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
