file(REMOVE_RECURSE
  "libjinn_agent.a"
)
