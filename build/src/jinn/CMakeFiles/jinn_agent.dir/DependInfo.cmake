
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jinn/Census.cpp" "src/jinn/CMakeFiles/jinn_agent.dir/Census.cpp.o" "gcc" "src/jinn/CMakeFiles/jinn_agent.dir/Census.cpp.o.d"
  "/root/repo/src/jinn/JinnAgent.cpp" "src/jinn/CMakeFiles/jinn_agent.dir/JinnAgent.cpp.o" "gcc" "src/jinn/CMakeFiles/jinn_agent.dir/JinnAgent.cpp.o.d"
  "/root/repo/src/jinn/Machines.cpp" "src/jinn/CMakeFiles/jinn_agent.dir/Machines.cpp.o" "gcc" "src/jinn/CMakeFiles/jinn_agent.dir/Machines.cpp.o.d"
  "/root/repo/src/jinn/Report.cpp" "src/jinn/CMakeFiles/jinn_agent.dir/Report.cpp.o" "gcc" "src/jinn/CMakeFiles/jinn_agent.dir/Report.cpp.o.d"
  "/root/repo/src/jinn/machines/AccessControl.cpp" "src/jinn/CMakeFiles/jinn_agent.dir/machines/AccessControl.cpp.o" "gcc" "src/jinn/CMakeFiles/jinn_agent.dir/machines/AccessControl.cpp.o.d"
  "/root/repo/src/jinn/machines/CriticalState.cpp" "src/jinn/CMakeFiles/jinn_agent.dir/machines/CriticalState.cpp.o" "gcc" "src/jinn/CMakeFiles/jinn_agent.dir/machines/CriticalState.cpp.o.d"
  "/root/repo/src/jinn/machines/EntityTyping.cpp" "src/jinn/CMakeFiles/jinn_agent.dir/machines/EntityTyping.cpp.o" "gcc" "src/jinn/CMakeFiles/jinn_agent.dir/machines/EntityTyping.cpp.o.d"
  "/root/repo/src/jinn/machines/EnvState.cpp" "src/jinn/CMakeFiles/jinn_agent.dir/machines/EnvState.cpp.o" "gcc" "src/jinn/CMakeFiles/jinn_agent.dir/machines/EnvState.cpp.o.d"
  "/root/repo/src/jinn/machines/ExceptionState.cpp" "src/jinn/CMakeFiles/jinn_agent.dir/machines/ExceptionState.cpp.o" "gcc" "src/jinn/CMakeFiles/jinn_agent.dir/machines/ExceptionState.cpp.o.d"
  "/root/repo/src/jinn/machines/FixedTyping.cpp" "src/jinn/CMakeFiles/jinn_agent.dir/machines/FixedTyping.cpp.o" "gcc" "src/jinn/CMakeFiles/jinn_agent.dir/machines/FixedTyping.cpp.o.d"
  "/root/repo/src/jinn/machines/GlobalRef.cpp" "src/jinn/CMakeFiles/jinn_agent.dir/machines/GlobalRef.cpp.o" "gcc" "src/jinn/CMakeFiles/jinn_agent.dir/machines/GlobalRef.cpp.o.d"
  "/root/repo/src/jinn/machines/LocalRef.cpp" "src/jinn/CMakeFiles/jinn_agent.dir/machines/LocalRef.cpp.o" "gcc" "src/jinn/CMakeFiles/jinn_agent.dir/machines/LocalRef.cpp.o.d"
  "/root/repo/src/jinn/machines/Monitor.cpp" "src/jinn/CMakeFiles/jinn_agent.dir/machines/Monitor.cpp.o" "gcc" "src/jinn/CMakeFiles/jinn_agent.dir/machines/Monitor.cpp.o.d"
  "/root/repo/src/jinn/machines/Nullness.cpp" "src/jinn/CMakeFiles/jinn_agent.dir/machines/Nullness.cpp.o" "gcc" "src/jinn/CMakeFiles/jinn_agent.dir/machines/Nullness.cpp.o.d"
  "/root/repo/src/jinn/machines/PinnedResource.cpp" "src/jinn/CMakeFiles/jinn_agent.dir/machines/PinnedResource.cpp.o" "gcc" "src/jinn/CMakeFiles/jinn_agent.dir/machines/PinnedResource.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/jinn_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/jinn_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/jvmti/CMakeFiles/jinn_jvmti.dir/DependInfo.cmake"
  "/root/repo/build/src/jni/CMakeFiles/jinn_jni.dir/DependInfo.cmake"
  "/root/repo/build/src/jvm/CMakeFiles/jinn_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jinn_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
