file(REMOVE_RECURSE
  "libjinn_support.a"
)
