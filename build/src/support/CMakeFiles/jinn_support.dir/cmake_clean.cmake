file(REMOVE_RECURSE
  "CMakeFiles/jinn_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/jinn_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/jinn_support.dir/Format.cpp.o"
  "CMakeFiles/jinn_support.dir/Format.cpp.o.d"
  "libjinn_support.a"
  "libjinn_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinn_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
