# Empty compiler generated dependencies file for jinn_support.
# This may be replaced when dependencies are built.
