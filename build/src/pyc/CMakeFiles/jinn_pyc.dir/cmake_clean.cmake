file(REMOVE_RECURSE
  "CMakeFiles/jinn_pyc.dir/PyRuntime.cpp.o"
  "CMakeFiles/jinn_pyc.dir/PyRuntime.cpp.o.d"
  "libjinn_pyc.a"
  "libjinn_pyc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinn_pyc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
