file(REMOVE_RECURSE
  "libjinn_pyc.a"
)
