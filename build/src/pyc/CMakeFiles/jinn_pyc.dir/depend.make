# Empty dependencies file for jinn_pyc.
# This may be replaced when dependencies are built.
