# Empty compiler generated dependencies file for jinn_synth.
# This may be replaced when dependencies are built.
