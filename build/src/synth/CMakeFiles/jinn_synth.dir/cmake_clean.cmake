file(REMOVE_RECURSE
  "CMakeFiles/jinn_synth.dir/Emitter.cpp.o"
  "CMakeFiles/jinn_synth.dir/Emitter.cpp.o.d"
  "CMakeFiles/jinn_synth.dir/Synthesizer.cpp.o"
  "CMakeFiles/jinn_synth.dir/Synthesizer.cpp.o.d"
  "libjinn_synth.a"
  "libjinn_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinn_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
