file(REMOVE_RECURSE
  "libjinn_synth.a"
)
