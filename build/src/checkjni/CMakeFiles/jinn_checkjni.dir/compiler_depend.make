# Empty compiler generated dependencies file for jinn_checkjni.
# This may be replaced when dependencies are built.
