file(REMOVE_RECURSE
  "CMakeFiles/jinn_checkjni.dir/XcheckAgent.cpp.o"
  "CMakeFiles/jinn_checkjni.dir/XcheckAgent.cpp.o.d"
  "libjinn_checkjni.a"
  "libjinn_checkjni.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinn_checkjni.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
