file(REMOVE_RECURSE
  "libjinn_checkjni.a"
)
