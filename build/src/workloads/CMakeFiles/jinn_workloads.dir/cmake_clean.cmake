file(REMOVE_RECURSE
  "CMakeFiles/jinn_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/jinn_workloads.dir/Workloads.cpp.o.d"
  "libjinn_workloads.a"
  "libjinn_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinn_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
