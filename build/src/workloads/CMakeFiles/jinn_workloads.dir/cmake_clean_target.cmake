file(REMOVE_RECURSE
  "libjinn_workloads.a"
)
