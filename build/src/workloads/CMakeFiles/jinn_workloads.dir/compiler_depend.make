# Empty compiler generated dependencies file for jinn_workloads.
# This may be replaced when dependencies are built.
