file(REMOVE_RECURSE
  "CMakeFiles/python_dangling.dir/python_dangling.cpp.o"
  "CMakeFiles/python_dangling.dir/python_dangling.cpp.o.d"
  "python_dangling"
  "python_dangling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/python_dangling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
