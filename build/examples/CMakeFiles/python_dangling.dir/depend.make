# Empty dependencies file for python_dangling.
# This may be replaced when dependencies are built.
