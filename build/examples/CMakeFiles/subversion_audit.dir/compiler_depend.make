# Empty compiler generated dependencies file for subversion_audit.
# This may be replaced when dependencies are built.
