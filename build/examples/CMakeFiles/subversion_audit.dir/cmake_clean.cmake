file(REMOVE_RECURSE
  "CMakeFiles/subversion_audit.dir/subversion_audit.cpp.o"
  "CMakeFiles/subversion_audit.dir/subversion_audit.cpp.o.d"
  "subversion_audit"
  "subversion_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subversion_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
