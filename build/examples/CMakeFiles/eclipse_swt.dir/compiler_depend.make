# Empty compiler generated dependencies file for eclipse_swt.
# This may be replaced when dependencies are built.
