file(REMOVE_RECURSE
  "CMakeFiles/eclipse_swt.dir/eclipse_swt.cpp.o"
  "CMakeFiles/eclipse_swt.dir/eclipse_swt.cpp.o.d"
  "eclipse_swt"
  "eclipse_swt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eclipse_swt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
