# Empty dependencies file for gnome_callback.
# This may be replaced when dependencies are built.
