file(REMOVE_RECURSE
  "CMakeFiles/gnome_callback.dir/gnome_callback.cpp.o"
  "CMakeFiles/gnome_callback.dir/gnome_callback.cpp.o.d"
  "gnome_callback"
  "gnome_callback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnome_callback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
