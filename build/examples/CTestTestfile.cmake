# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gnome_callback "/root/repo/build/examples/gnome_callback")
set_tests_properties(example_gnome_callback PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_subversion_audit "/root/repo/build/examples/subversion_audit")
set_tests_properties(example_subversion_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_python_dangling "/root/repo/build/examples/python_dangling")
set_tests_properties(example_python_dangling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_eclipse_swt "/root/repo/build/examples/eclipse_swt")
set_tests_properties(example_eclipse_swt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
