# Empty compiler generated dependencies file for bench_ablation_machines.
# This may be replaced when dependencies are built.
