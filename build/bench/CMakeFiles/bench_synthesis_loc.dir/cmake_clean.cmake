file(REMOVE_RECURSE
  "CMakeFiles/bench_synthesis_loc.dir/bench_synthesis_loc.cpp.o"
  "CMakeFiles/bench_synthesis_loc.dir/bench_synthesis_loc.cpp.o.d"
  "bench_synthesis_loc"
  "bench_synthesis_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synthesis_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
