# Empty dependencies file for bench_synthesis_loc.
# This may be replaced when dependencies are built.
