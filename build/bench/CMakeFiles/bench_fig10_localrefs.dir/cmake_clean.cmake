file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_localrefs.dir/bench_fig10_localrefs.cpp.o"
  "CMakeFiles/bench_fig10_localrefs.dir/bench_fig10_localrefs.cpp.o.d"
  "bench_fig10_localrefs"
  "bench_fig10_localrefs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_localrefs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
