file(REMOVE_RECURSE
  "CMakeFiles/bench_pyc_checker.dir/bench_pyc_checker.cpp.o"
  "CMakeFiles/bench_pyc_checker.dir/bench_pyc_checker.cpp.o.d"
  "bench_pyc_checker"
  "bench_pyc_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pyc_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
