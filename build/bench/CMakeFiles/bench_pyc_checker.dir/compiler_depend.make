# Empty compiler generated dependencies file for bench_pyc_checker.
# This may be replaced when dependencies are built.
