file(REMOVE_RECURSE
  "CMakeFiles/jinn-synth.dir/jinn_synth_main.cpp.o"
  "CMakeFiles/jinn-synth.dir/jinn_synth_main.cpp.o.d"
  "jinn-synth"
  "jinn-synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinn-synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
