# Empty dependencies file for jinn-synth.
# This may be replaced when dependencies are built.
