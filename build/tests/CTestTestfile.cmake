# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/jinn_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/scenarios_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/pyc_test[1]_include.cmake")
include("/root/repo/build/tests/pyjinn_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/descriptor_test[1]_include.cmake")
include("/root/repo/build/tests/handle_test[1]_include.cmake")
include("/root/repo/build/tests/heap_test[1]_include.cmake")
include("/root/repo/build/tests/jthread_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/jni_core_test[1]_include.cmake")
include("/root/repo/build/tests/jni_call_test[1]_include.cmake")
include("/root/repo/build/tests/jni_field_test[1]_include.cmake")
include("/root/repo/build/tests/jni_string_array_test[1]_include.cmake")
include("/root/repo/build/tests/jni_traits_test[1]_include.cmake")
include("/root/repo/build/tests/jvmti_test[1]_include.cmake")
include("/root/repo/build/tests/spec_synth_test[1]_include.cmake")
include("/root/repo/build/tests/jinn_machines_test[1]_include.cmake")
include("/root/repo/build/tests/property_localref_test[1]_include.cmake")
include("/root/repo/build/tests/property_pyc_test[1]_include.cmake")
include("/root/repo/build/tests/fig9_census_test[1]_include.cmake")
include("/root/repo/build/tests/checkjni_test[1]_include.cmake")
include("/root/repo/build/tests/invoke_interface_test[1]_include.cmake")
include("/root/repo/build/tests/jinn_agent_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_classify_test[1]_include.cmake")
