file(REMOVE_RECURSE
  "CMakeFiles/fig9_census_test.dir/fig9_census_test.cpp.o"
  "CMakeFiles/fig9_census_test.dir/fig9_census_test.cpp.o.d"
  "fig9_census_test"
  "fig9_census_test.pdb"
  "fig9_census_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_census_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
