# Empty compiler generated dependencies file for pyjinn_test.
# This may be replaced when dependencies are built.
