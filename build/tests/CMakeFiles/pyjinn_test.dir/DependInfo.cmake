
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pyjinn_test.cpp" "tests/CMakeFiles/pyjinn_test.dir/pyjinn_test.cpp.o" "gcc" "tests/CMakeFiles/pyjinn_test.dir/pyjinn_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jinn/CMakeFiles/jinn_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/jinn_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/jinn_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/jvmti/CMakeFiles/jinn_jvmti.dir/DependInfo.cmake"
  "/root/repo/build/src/jni/CMakeFiles/jinn_jni.dir/DependInfo.cmake"
  "/root/repo/build/src/jvm/CMakeFiles/jinn_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jinn_support.dir/DependInfo.cmake"
  "/root/repo/build/src/pyjinn/CMakeFiles/jinn_pyjinn.dir/DependInfo.cmake"
  "/root/repo/build/src/pyc/CMakeFiles/jinn_pyc.dir/DependInfo.cmake"
  "/root/repo/build/src/scenarios/CMakeFiles/jinn_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/checkjni/CMakeFiles/jinn_checkjni.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
