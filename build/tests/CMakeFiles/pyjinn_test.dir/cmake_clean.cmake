file(REMOVE_RECURSE
  "CMakeFiles/pyjinn_test.dir/pyjinn_test.cpp.o"
  "CMakeFiles/pyjinn_test.dir/pyjinn_test.cpp.o.d"
  "pyjinn_test"
  "pyjinn_test.pdb"
  "pyjinn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyjinn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
