file(REMOVE_RECURSE
  "CMakeFiles/jni_call_test.dir/jni_call_test.cpp.o"
  "CMakeFiles/jni_call_test.dir/jni_call_test.cpp.o.d"
  "jni_call_test"
  "jni_call_test.pdb"
  "jni_call_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jni_call_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
