# Empty compiler generated dependencies file for jni_call_test.
# This may be replaced when dependencies are built.
