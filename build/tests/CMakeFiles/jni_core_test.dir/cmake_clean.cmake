file(REMOVE_RECURSE
  "CMakeFiles/jni_core_test.dir/jni_core_test.cpp.o"
  "CMakeFiles/jni_core_test.dir/jni_core_test.cpp.o.d"
  "jni_core_test"
  "jni_core_test.pdb"
  "jni_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jni_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
