# Empty dependencies file for jni_core_test.
# This may be replaced when dependencies are built.
