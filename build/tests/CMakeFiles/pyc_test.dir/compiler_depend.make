# Empty compiler generated dependencies file for pyc_test.
# This may be replaced when dependencies are built.
