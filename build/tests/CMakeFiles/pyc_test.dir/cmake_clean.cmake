file(REMOVE_RECURSE
  "CMakeFiles/pyc_test.dir/pyc_test.cpp.o"
  "CMakeFiles/pyc_test.dir/pyc_test.cpp.o.d"
  "pyc_test"
  "pyc_test.pdb"
  "pyc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
