file(REMOVE_RECURSE
  "CMakeFiles/jinn_agent_test.dir/jinn_agent_test.cpp.o"
  "CMakeFiles/jinn_agent_test.dir/jinn_agent_test.cpp.o.d"
  "jinn_agent_test"
  "jinn_agent_test.pdb"
  "jinn_agent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinn_agent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
