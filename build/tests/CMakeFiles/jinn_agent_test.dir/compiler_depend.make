# Empty compiler generated dependencies file for jinn_agent_test.
# This may be replaced when dependencies are built.
