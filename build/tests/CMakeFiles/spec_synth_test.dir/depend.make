# Empty dependencies file for spec_synth_test.
# This may be replaced when dependencies are built.
