file(REMOVE_RECURSE
  "CMakeFiles/spec_synth_test.dir/spec_synth_test.cpp.o"
  "CMakeFiles/spec_synth_test.dir/spec_synth_test.cpp.o.d"
  "spec_synth_test"
  "spec_synth_test.pdb"
  "spec_synth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_synth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
