file(REMOVE_RECURSE
  "CMakeFiles/jinn_machines_test.dir/jinn_machines_test.cpp.o"
  "CMakeFiles/jinn_machines_test.dir/jinn_machines_test.cpp.o.d"
  "jinn_machines_test"
  "jinn_machines_test.pdb"
  "jinn_machines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinn_machines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
