# Empty compiler generated dependencies file for jinn_machines_test.
# This may be replaced when dependencies are built.
