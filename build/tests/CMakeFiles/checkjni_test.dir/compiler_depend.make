# Empty compiler generated dependencies file for checkjni_test.
# This may be replaced when dependencies are built.
