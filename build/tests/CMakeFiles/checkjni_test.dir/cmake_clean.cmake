file(REMOVE_RECURSE
  "CMakeFiles/checkjni_test.dir/checkjni_test.cpp.o"
  "CMakeFiles/checkjni_test.dir/checkjni_test.cpp.o.d"
  "checkjni_test"
  "checkjni_test.pdb"
  "checkjni_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkjni_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
