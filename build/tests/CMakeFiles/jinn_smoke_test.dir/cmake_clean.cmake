file(REMOVE_RECURSE
  "CMakeFiles/jinn_smoke_test.dir/jinn_smoke_test.cpp.o"
  "CMakeFiles/jinn_smoke_test.dir/jinn_smoke_test.cpp.o.d"
  "jinn_smoke_test"
  "jinn_smoke_test.pdb"
  "jinn_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinn_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
