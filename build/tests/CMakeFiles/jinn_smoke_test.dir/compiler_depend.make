# Empty compiler generated dependencies file for jinn_smoke_test.
# This may be replaced when dependencies are built.
