file(REMOVE_RECURSE
  "CMakeFiles/jni_field_test.dir/jni_field_test.cpp.o"
  "CMakeFiles/jni_field_test.dir/jni_field_test.cpp.o.d"
  "jni_field_test"
  "jni_field_test.pdb"
  "jni_field_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jni_field_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
