# Empty dependencies file for jni_field_test.
# This may be replaced when dependencies are built.
