# Empty dependencies file for jvmti_test.
# This may be replaced when dependencies are built.
