file(REMOVE_RECURSE
  "CMakeFiles/jvmti_test.dir/jvmti_test.cpp.o"
  "CMakeFiles/jvmti_test.dir/jvmti_test.cpp.o.d"
  "jvmti_test"
  "jvmti_test.pdb"
  "jvmti_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvmti_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
