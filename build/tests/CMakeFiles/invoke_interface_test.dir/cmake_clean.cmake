file(REMOVE_RECURSE
  "CMakeFiles/invoke_interface_test.dir/invoke_interface_test.cpp.o"
  "CMakeFiles/invoke_interface_test.dir/invoke_interface_test.cpp.o.d"
  "invoke_interface_test"
  "invoke_interface_test.pdb"
  "invoke_interface_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invoke_interface_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
