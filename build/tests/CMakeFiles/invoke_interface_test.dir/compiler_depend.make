# Empty compiler generated dependencies file for invoke_interface_test.
# This may be replaced when dependencies are built.
