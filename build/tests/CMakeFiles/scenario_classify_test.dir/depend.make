# Empty dependencies file for scenario_classify_test.
# This may be replaced when dependencies are built.
