file(REMOVE_RECURSE
  "CMakeFiles/scenario_classify_test.dir/scenario_classify_test.cpp.o"
  "CMakeFiles/scenario_classify_test.dir/scenario_classify_test.cpp.o.d"
  "scenario_classify_test"
  "scenario_classify_test.pdb"
  "scenario_classify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_classify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
