file(REMOVE_RECURSE
  "CMakeFiles/property_pyc_test.dir/property_pyc_test.cpp.o"
  "CMakeFiles/property_pyc_test.dir/property_pyc_test.cpp.o.d"
  "property_pyc_test"
  "property_pyc_test.pdb"
  "property_pyc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_pyc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
