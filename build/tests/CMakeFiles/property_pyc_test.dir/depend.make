# Empty dependencies file for property_pyc_test.
# This may be replaced when dependencies are built.
