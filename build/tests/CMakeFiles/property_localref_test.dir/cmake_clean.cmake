file(REMOVE_RECURSE
  "CMakeFiles/property_localref_test.dir/property_localref_test.cpp.o"
  "CMakeFiles/property_localref_test.dir/property_localref_test.cpp.o.d"
  "property_localref_test"
  "property_localref_test.pdb"
  "property_localref_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_localref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
