# Empty dependencies file for property_localref_test.
# This may be replaced when dependencies are built.
