file(REMOVE_RECURSE
  "CMakeFiles/jni_traits_test.dir/jni_traits_test.cpp.o"
  "CMakeFiles/jni_traits_test.dir/jni_traits_test.cpp.o.d"
  "jni_traits_test"
  "jni_traits_test.pdb"
  "jni_traits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jni_traits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
