# Empty dependencies file for jni_traits_test.
# This may be replaced when dependencies are built.
