file(REMOVE_RECURSE
  "CMakeFiles/scenarios_matrix_test.dir/scenarios_matrix_test.cpp.o"
  "CMakeFiles/scenarios_matrix_test.dir/scenarios_matrix_test.cpp.o.d"
  "scenarios_matrix_test"
  "scenarios_matrix_test.pdb"
  "scenarios_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenarios_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
