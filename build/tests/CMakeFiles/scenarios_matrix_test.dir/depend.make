# Empty dependencies file for scenarios_matrix_test.
# This may be replaced when dependencies are built.
