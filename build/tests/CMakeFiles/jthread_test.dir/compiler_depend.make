# Empty compiler generated dependencies file for jthread_test.
# This may be replaced when dependencies are built.
