file(REMOVE_RECURSE
  "CMakeFiles/jthread_test.dir/jthread_test.cpp.o"
  "CMakeFiles/jthread_test.dir/jthread_test.cpp.o.d"
  "jthread_test"
  "jthread_test.pdb"
  "jthread_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jthread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
