file(REMOVE_RECURSE
  "CMakeFiles/jni_string_array_test.dir/jni_string_array_test.cpp.o"
  "CMakeFiles/jni_string_array_test.dir/jni_string_array_test.cpp.o.d"
  "jni_string_array_test"
  "jni_string_array_test.pdb"
  "jni_string_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jni_string_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
