# Empty dependencies file for jni_string_array_test.
# This may be replaced when dependencies are built.
